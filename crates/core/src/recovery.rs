//! Post-crash recovery: undo and redo log replay.
//!
//! After a crash, the durable state consists of the persistent image
//! and the log region. Recovery depends on the logging discipline:
//!
//! * **Undo** — apply the records of every transaction *without* a
//!   durable commit marker, newest first, restoring each logged
//!   word's pre-image. That cancels all logged updates of interrupted
//!   transactions.
//! * **Redo** — apply the records of every transaction *with* a
//!   durable commit marker, oldest first, installing each logged
//!   word's final value (in-place data never reached the image before
//!   the marker, so unmarked transactions need nothing).
//!
//! Log-free updates are then repaired by the application-specific
//! recovery (garbage-collecting leaked allocations, rebuilding
//! lazily-persistent data) that the workloads provide — exactly the
//! split of §IV.
//!
//! Replay is preceded by a **validate phase**: every durable record
//! and commit marker carries a CRC32 + sequence tag (see
//! `slpmt_pmem::log_region`), so recovery classifies records as
//! intact / torn-tail / corrupt before trusting them. Torn tail
//! records are truncated (their persist never logically completed), a
//! torn commit marker counts as absent (the transaction rolls back),
//! and poisoned image lines are re-materialised from log pre/post
//! images when their words are fully covered — otherwise the line is
//! reported lost in the [`RecoveryReport`] instead of recovery
//! panicking or replaying garbage.

use crate::machine::Machine;
use crate::scheme::Discipline;
use slpmt_pmem::addr::{LINE_BYTES, WORD_BYTES};
use slpmt_pmem::{PersistedRecord, PmAddr};
use slpmt_trace::{Event as TraceEvent, RecoveryStage};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What log replay did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Undo records applied (pre-images restored).
    pub undo_applied: usize,
    /// Sequence numbers of transactions rolled back (undo).
    pub rolled_back: Vec<u64>,
    /// Data lines restored from applied undo pre-images, in address
    /// order. These were re-persisted during recovery from log records
    /// that just survived a crash, so a conservative deployment
    /// verifies them (background scrub) before accepting new writes —
    /// the degraded-window suspect set.
    pub rolled_back_lines: Vec<u64>,
    /// Redo records applied (final values installed).
    pub redo_applied: usize,
    /// Sequence numbers of committed transactions replayed (redo).
    pub replayed: Vec<u64>,
    /// Data lines persisted while replaying records. Replay goes
    /// through the device's persist path, so these appear in the
    /// device's write-traffic counters and persist-event trace.
    pub lines_persisted: usize,
    /// Log records whose persist tore at the crash boundary (the
    /// torn tail is truncated before replay).
    pub torn_records: usize,
    /// Commit markers whose persist tore — their transactions were
    /// treated as uncommitted.
    pub torn_markers: usize,
    /// Records whose checksum disagreed with their content (media bit
    /// flips); skipped by replay, their lines degraded.
    pub corrupt_records: usize,
    /// Poisoned lines fully re-materialised from intact log records,
    /// in address order.
    pub salvaged_lines: Vec<u64>,
    /// Lines whose contents could not be reconstructed (poisoned
    /// beyond salvage, or covered only by corrupt records), in address
    /// order. Unsalvageable poisoned lines are scrubbed to zeros so
    /// the image stays deterministic and readable.
    pub lost_lines: Vec<u64>,
}

impl fmt::Display for RecoveryReport {
    /// One line, e.g. `undo 3 (2 txns), redo 0 (0 txns), persisted 5,
    /// torn 1r/0m, corrupt 0, salvaged 0, lost 0` — the format the
    /// sweep logs share instead of hand-formatting the counters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "undo {} ({} txns), redo {} ({} txns), persisted {}, \
             torn {}r/{}m, corrupt {}, salvaged {}, lost {}",
            self.undo_applied,
            self.rolled_back.len(),
            self.redo_applied,
            self.replayed.len(),
            self.lines_persisted,
            self.torn_records,
            self.torn_markers,
            self.corrupt_records,
            self.salvaged_lines.len(),
            self.lost_lines.len()
        )
    }
}

impl Machine {
    /// Replays the log after a [`crash`](Machine::crash) according to
    /// the machine's logging discipline, then truncates the log
    /// region. Structure-specific recovery (leak GC, lazy rebuild) is
    /// the caller's next step.
    ///
    /// # Panics
    ///
    /// Panics if called while a transaction is open — recovery runs on
    /// a freshly restarted machine.
    pub fn recover(&mut self) -> RecoveryReport {
        assert!(!self.in_txn(), "recovery runs outside any transaction");
        let mut report = RecoveryReport::default();
        // Validate phase: classify every durable record and marker
        // before anything is replayed. Torn tail records are dropped
        // here (persist ordering makes the drop sound); corrupt
        // records stay but must never be applied.
        let v = self.device_mut().log_mut().validate();
        report.torn_records = v.torn_records;
        report.corrupt_records = v.corrupt_records;
        report.torn_markers = v.torn_markers;
        let n_records = self.device().log().records().len();
        self.trace(|t| {
            t.emit(TraceEvent::Recovery {
                stage: RecoveryStage::Validate,
                n: n_records as u64,
            });
            t.emit(TraceEvent::Recovery {
                stage: RecoveryStage::Truncate,
                n: v.torn_records as u64,
            });
            t.emit(TraceEvent::Recovery {
                stage: RecoveryStage::Skip,
                n: v.corrupt_records as u64,
            });
        });
        // Poisoned lines re-materialise word-by-word from replayed
        // records; track per-line coverage to tell salvage from loss.
        let mut poison_cov: BTreeMap<u64, u8> = self
            .device()
            .poisoned_line_addrs()
            .into_iter()
            .map(|la| (la, 0u8))
            .collect();
        let mut lost: BTreeSet<u64> = BTreeSet::new();
        match self.config().features.discipline {
            Discipline::Undo => {
                // Torn markers never entered the committed set, so
                // their transactions are rolled back here like any
                // other unfinished transaction.
                let records: Vec<PersistedRecord> =
                    self.device().log().uncommitted_rev().cloned().collect();
                let mut rolled: BTreeSet<u64> = BTreeSet::new();
                let mut rolled_lines: BTreeSet<u64> = BTreeSet::new();
                for rec in &records {
                    if !rec.is_intact() {
                        // The pre-image itself is unreadable: the
                        // covered lines cannot be rolled back.
                        lost.extend(covered_lines(rec));
                        continue;
                    }
                    report.undo_applied += 1;
                    rolled.insert(rec.txn);
                    rolled_lines.extend(covered_lines(rec));
                    report.lines_persisted += self.replay_record(rec, &mut poison_cov);
                }
                report.rolled_back = rolled.into_iter().collect();
                report.rolled_back_lines = rolled_lines.into_iter().collect();
            }
            Discipline::Redo => {
                let committed: BTreeSet<u64> = self.device().log().committed_txns().collect();
                let records: Vec<PersistedRecord> = self
                    .device()
                    .log()
                    .records()
                    .iter()
                    .filter(|r| committed.contains(&r.txn))
                    .cloned()
                    .collect();
                let mut replayed: BTreeSet<u64> = BTreeSet::new();
                // Forward order: later records carry newer values.
                for rec in &records {
                    if !rec.is_intact() {
                        // A committed transaction's new value is
                        // unreadable; the write-back never happened,
                        // so the covered lines are degraded.
                        lost.extend(covered_lines(rec));
                        continue;
                    }
                    report.redo_applied += 1;
                    replayed.insert(rec.txn);
                    report.lines_persisted += self.replay_record(rec, &mut poison_cov);
                }
                report.replayed = replayed.into_iter().collect();
            }
        }
        self.trace(|t| {
            t.emit(TraceEvent::Recovery {
                stage: RecoveryStage::Replay,
                n: (report.undo_applied + report.redo_applied) as u64,
            });
        });
        // Classify every poisoned line: full word coverage by intact
        // records = salvaged; anything else is lost. Lines replay
        // never touched are still poisoned — scrub them to zeros so
        // post-recovery reads are deterministic instead of faulting.
        let mut scrubbed = 0u64;
        for (&la, &mask) in &poison_cov {
            if mask == u8::MAX {
                continue; // fully re-materialised
            }
            lost.insert(la);
            let addr = PmAddr::new(la);
            if self.device().line_poisoned(addr) {
                let now = self.now();
                self.device_mut()
                    .persist_line(now, addr, &[0u8; LINE_BYTES]);
                report.lines_persisted += 1;
                scrubbed += 1;
            }
        }
        report.salvaged_lines = poison_cov
            .iter()
            .filter(|(la, &mask)| mask == u8::MAX && !lost.contains(la))
            .map(|(&la, _)| la)
            .collect();
        report.lost_lines = lost.into_iter().collect();
        self.trace(|t| {
            t.emit(TraceEvent::Recovery {
                stage: RecoveryStage::Salvage,
                n: report.salvaged_lines.len() as u64,
            });
            t.emit(TraceEvent::Recovery {
                stage: RecoveryStage::Scrub,
                n: scrubbed,
            });
        });
        // The log's job is done; the new epoch starts empty. The reset
        // is itself a persist event, so an injected crash mid-recovery
        // leaves the log intact for the next attempt.
        self.device_mut().reset_log();
        report
    }

    /// Applies one log record to the durable image through the device's
    /// persist path (read-modify-write of each covered line), so the
    /// replay is counted in write traffic and numbered in the
    /// persist-event trace. A poisoned base line reads as zeros (the
    /// loss is detectable, not silent) and the words the record
    /// overlays accumulate in `poison_cov`. Returns the number of
    /// lines persisted.
    fn replay_record(
        &mut self,
        rec: &PersistedRecord,
        poison_cov: &mut BTreeMap<u64, u8>,
    ) -> usize {
        let line_bytes = LINE_BYTES as u64;
        let start = rec.addr.line().raw();
        let end = rec.addr.raw() + rec.payload.len() as u64;
        let mut line = start;
        let mut persisted = 0;
        while line < end {
            let la = PmAddr::new(line);
            let mut data = if self.device().line_poisoned(la) {
                [0u8; LINE_BYTES]
            } else {
                self.device().image().read_line(la)
            };
            // Intersect [line, line+64) with the record's byte range.
            let lo = line.max(rec.addr.raw());
            let hi = (line + line_bytes).min(end);
            let dst = (lo - line) as usize;
            let src = (lo - rec.addr.raw()) as usize;
            let n = (hi - lo) as usize;
            data[dst..dst + n].copy_from_slice(&rec.payload[src..src + n]);
            if let Some(mask) = poison_cov.get_mut(&line) {
                // Records are word-aligned whole-word spans, so the
                // intersection covers whole words of the line.
                for w in (dst / WORD_BYTES)..((dst + n) / WORD_BYTES) {
                    *mask |= 1 << w;
                }
            }
            let now = self.now();
            self.device_mut().persist_line(now, la, &data);
            persisted += 1;
            line += line_bytes;
        }
        persisted
    }
}

/// Line addresses a record's payload covers.
fn covered_lines(rec: &PersistedRecord) -> impl Iterator<Item = u64> {
    let first = rec.addr.line().raw();
    let last = PmAddr::new(rec.addr.raw() + rec.payload.len() as u64 - 1)
        .line()
        .raw();
    (first..=last).step_by(LINE_BYTES)
}

#[cfg(test)]
mod tests {
    use crate::machine::CommitPhase;
    use crate::{Machine, MachineConfig, Scheme, StoreKind};
    use slpmt_pmem::PmAddr;

    const A: PmAddr = PmAddr::new(0x10000);

    fn tiny() -> Machine {
        Machine::new(MachineConfig::for_scheme(Scheme::Fg).with_tiny_caches())
    }

    #[test]
    fn committed_transactions_are_not_rolled_back() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::Store);
        m.tx_commit();
        m.crash();
        let report = m.recover();
        assert_eq!(report.undo_applied, 0);
        assert_eq!(m.device().image().read_u64(A), 7);
    }

    #[test]
    fn interrupted_transaction_rolls_back_stolen_data() {
        let mut m = tiny();
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        // Thrash caches so the dirty line (and its log record) overflow
        // to the persistence domain mid-transaction.
        for i in 0..512u64 {
            m.store_u64(PmAddr::new(0x40000 + i * 64), i, StoreKind::Store);
        }
        // The stolen update reached PM:
        assert_eq!(m.device().image().read_u64(A), 99);
        m.crash(); // no commit marker
        let report = m.recover();
        assert!(report.undo_applied > 0);
        assert_eq!(m.device().image().read_u64(A), 5, "pre-image restored");
    }

    #[test]
    fn crash_without_steal_needs_no_undo() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Fg));
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        m.crash(); // dirty line and its record both still volatile
        let report = m.recover();
        assert_eq!(report.undo_applied, 0);
        assert_eq!(m.device().image().read_u64(A), 5);
    }

    #[test]
    fn undo_crash_before_marker_rolls_back() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Fg));
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        // Crash after data persisted but before the marker: the
        // transaction must roll back.
        m.set_commit_crash_point(Some(CommitPhase::AfterData));
        m.tx_commit();
        assert_eq!(m.device().image().read_u64(A), 99, "data persisted");
        let report = m.recover();
        assert!(report.undo_applied > 0);
        assert_eq!(m.device().image().read_u64(A), 5, "rolled back");
    }

    #[test]
    fn undo_crash_after_marker_is_durable() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Fg));
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        m.set_commit_crash_point(Some(CommitPhase::AfterMarker));
        m.tx_commit();
        let report = m.recover();
        assert_eq!(report.undo_applied, 0);
        assert_eq!(m.device().image().read_u64(A), 99);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut m = tiny();
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        for i in 0..512u64 {
            m.store_u64(PmAddr::new(0x40000 + i * 64), i, StoreKind::Store);
        }
        m.crash();
        m.recover();
        let second = m.recover();
        assert_eq!(second.undo_applied, 0);
        assert_eq!(m.device().image().read_u64(A), 5);
    }

    #[test]
    #[should_panic(expected = "outside any transaction")]
    fn recovery_inside_txn_rejected() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        m.tx_begin();
        m.recover();
    }

    // ---------------------------------------------------------------
    // Redo discipline

    #[test]
    fn redo_commit_is_durable_without_crash() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgRedo));
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        m.tx_commit();
        assert_eq!(m.device().image().read_u64(A), 99);
    }

    #[test]
    fn redo_crash_mid_txn_leaves_image_untouched() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgRedo).with_tiny_caches());
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        // Thrash: under redo, the logged line spills to the volatile
        // shadow instead of stealing into the image.
        for i in 0..512u64 {
            m.load_u64(PmAddr::new(0x40000 + i * 64));
        }
        assert_eq!(m.device().image().read_u64(A), 5, "no in-place steal");
        assert_eq!(m.peek_u64(A), 99, "logical value intact via shadow");
        m.crash();
        let report = m.recover();
        assert_eq!(report.redo_applied, 0, "unmarked txn needs nothing");
        assert_eq!(m.device().image().read_u64(A), 5);
    }

    #[test]
    fn redo_crash_after_marker_replays_records() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgRedo));
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        m.store_u64(A.add(8), 100, StoreKind::Store);
        // Crash after the marker but before the in-place write-back:
        // the redo-replay window.
        m.set_commit_crash_point(Some(CommitPhase::AfterMarker));
        m.tx_commit();
        assert_eq!(m.device().image().read_u64(A), 5, "write-back not done");
        let report = m.recover();
        // The two adjacent words buddy-coalesced into one record.
        assert!(report.redo_applied >= 1);
        assert_eq!(report.replayed, vec![1]);
        assert_eq!(m.device().image().read_u64(A), 99);
        assert_eq!(m.device().image().read_u64(A.add(8)), 100);
    }

    #[test]
    fn redo_crash_before_marker_discards_records() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgRedo));
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        m.set_commit_crash_point(Some(CommitPhase::AfterRecords));
        m.tx_commit();
        let report = m.recover();
        assert_eq!(report.redo_applied, 0);
        assert_eq!(m.device().image().read_u64(A), 5);
    }

    #[test]
    fn redo_records_carry_final_values() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgRedo));
        m.tx_begin();
        m.store_u64(A, 1, StoreKind::Store);
        m.store_u64(A, 2, StoreKind::Store); // overwrites the record
        m.store_u64(A, 3, StoreKind::Store);
        m.set_commit_crash_point(Some(CommitPhase::AfterMarker));
        m.tx_commit();
        m.recover();
        assert_eq!(m.device().image().read_u64(A), 3, "final value replayed");
    }

    #[test]
    fn redo_log_free_lines_persist_before_records() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::SlpmtRedo));
        m.tx_begin();
        m.store_u64(A, 1, StoreKind::Store); // logged
        m.store_u64(A.add(64), 2, StoreKind::log_free());
        m.set_commit_crash_point(Some(CommitPhase::AfterLogFree));
        m.tx_commit();
        // Crash right after the log-free lines persisted: the logged
        // data never reached PM and no record is durable.
        assert_eq!(m.device().image().read_u64(A.add(64)), 2);
        assert_eq!(m.device().image().read_u64(A), 0);
        let report = m.recover();
        assert_eq!(report.redo_applied, 0);
    }

    #[test]
    fn redo_abort_needs_no_image_repair() {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgRedo).with_tiny_caches());
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        for i in 0..512u64 {
            m.load_u64(PmAddr::new(0x40000 + i * 64));
        }
        m.tx_abort();
        assert_eq!(m.peek_u64(A), 5, "logical state restored");
        assert_eq!(m.device().image().read_u64(A), 5);
    }

    #[test]
    fn redo_shadow_round_trip_preserves_values() {
        // Evict a logged line to the shadow mid-transaction, refetch
        // it, store again, and commit normally.
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgRedo).with_tiny_caches());
        m.tx_begin();
        m.store_u64(A, 1, StoreKind::Store);
        for i in 0..512u64 {
            m.load_u64(PmAddr::new(0x40000 + i * 64));
        }
        assert_eq!(m.peek_u64(A), 1, "value visible from the shadow");
        m.store_u64(A.add(8), 2, StoreKind::Store); // refetch + re-log
        m.tx_commit();
        assert_eq!(m.device().image().read_u64(A), 1);
        assert_eq!(m.device().image().read_u64(A.add(8)), 2);
    }
}
