//! Deterministic multi-core SLPMT execution (§V-C across cores).
//!
//! The paper evaluates a single core; its conflict story for *other*
//! threads (LogTM-SE-style read/write-set checks, requester wins) is
//! specified for switched-out transactions. This module scales that to
//! N simulated cores sharing one persistence domain:
//!
//! * **Private per core** — L1 cache, tiered log buffer, the open
//!   transaction's read/write sets, and the redo spill area.
//! * **Shared** — L2, L3, the write-pending queue, the persistent
//!   image and log region, the circular transaction-ID register
//!   (§III-C2) and the working-set signatures (§III-C3). A conflicting
//!   access from another core therefore hits the *same* signature path
//!   as any other persist: dependent lazily-persistent lines are
//!   forced durable before the access's update can reach the
//!   persistence domain, wherever they are cached.
//!
//! [`MultiMachine`] multiplexes the cores onto one [`Machine`]: the
//! active core's private state lives in the machine's own fields and
//! the rest sit parked; scheduling a core swaps contexts (pure
//! bookkeeping — the cores run concurrently in reality, the wrapper
//! serialises them onto one deterministic timeline). Because every
//! instruction, conflict and persist is driven by a seeded
//! [`Schedule`], any run — including its persist-event trace and final
//! image — is replayable from `(program seed, schedule)`.
//!
//! [`run_programs`] executes per-core [`TraceOp`] programs under a
//! schedule and returns an [`McOutcome`] with the commit order, every
//! executed store, the conflict events, and a digest of the final
//! image, which [`check_serialized_oracle`] compares against a
//! serialized `BTreeMap` reference. The `mc_*` functions extend the
//! persist-event crash sweep (PR 2) to multi-core traces.

use crate::instr::StoreKind;
use crate::machine::{Machine, MachineConfig};
use crate::scheme::Scheme;
use crate::stats::MachineStats;
use slpmt_pmem::{PersistEvent, PmAddr};
use slpmt_prng::{splitmix64, SimRng, Zipf};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One step of a per-core trace program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Open a durable transaction.
    Begin,
    /// Load the word at `addr`.
    Load {
        /// Word-aligned address.
        addr: u64,
    },
    /// Store `value` to the word at `addr` with the given flavour.
    Store {
        /// Word-aligned address.
        addr: u64,
        /// Value written (the generators make every value unique, so
        /// oracles can identify a word's writer from its contents).
        value: u64,
        /// `store` / `storeT` operand combination (Table I).
        kind: StoreKind,
    },
    /// Commit the open transaction.
    Commit,
}

/// How the scheduler picks the next core to step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Cores step one trace operation each, in cyclic order.
    RoundRobin,
    /// Each core draws a weight in `1..=4` from the schedule seed; each
    /// step picks a runnable core with probability proportional to its
    /// weight, skewing the interleaving so one core can race far ahead.
    Weighted,
}

/// A seeded, deterministic interleaving: `(policy, seed)` fully
/// determines the execution, so failures reproduce from this value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Core-selection policy.
    pub policy: SchedPolicy,
    /// Seed for the scheduler's [`SimRng`] stream.
    pub seed: u64,
}

impl Schedule {
    /// A round-robin schedule (the seed is still consumed so weighted
    /// and round-robin schedules with equal seeds stay distinct runs).
    pub fn round_robin(seed: u64) -> Self {
        Schedule {
            policy: SchedPolicy::RoundRobin,
            seed,
        }
    }

    /// A weighted-random schedule.
    pub fn weighted(seed: u64) -> Self {
        Schedule {
            policy: SchedPolicy::Weighted,
            seed,
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = match self.policy {
            SchedPolicy::RoundRobin => "rr",
            SchedPolicy::Weighted => "weighted",
        };
        write!(f, "{p}:{}", self.seed)
    }
}

/// A cross-core event observed during a run, in occurrence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McEvent {
    /// A core committed a transaction.
    Committed {
        /// Committing core.
        core: usize,
        /// Global transaction sequence number.
        seq: u64,
    },
    /// A core's open transaction was aborted by a conflicting access
    /// from another core (requester wins, §V-C).
    ConflictAborted {
        /// Victim core.
        core: usize,
        /// The aborted transaction's sequence number.
        seq: u64,
        /// The core whose access won.
        by_core: usize,
        /// Line address of the conflicting access.
        line: u64,
        /// Whether the winning access was a write.
        is_write: bool,
    },
}

/// N simulated SLPMT cores over one shared persistence domain.
///
/// Every public operation takes the issuing core's index; the wrapper
/// activates that core (context swap), resolves cross-core conflicts
/// (aborting parked owners — the requester wins), stamps the device's
/// persist-event origin, and then executes the operation on the
/// underlying [`Machine`].
#[derive(Debug)]
pub struct MultiMachine {
    m: Machine,
    cores: usize,
    active: usize,
    /// `slot_of[core]` is the parked-context slot holding that core's
    /// state; [`ACTIVE_SLOT`](Self) marks the active core.
    slot_of: Vec<usize>,
    events: Vec<McEvent>,
}

/// Sentinel slot index marking the active core in `slot_of`.
const ACTIVE_SLOT: usize = usize::MAX;

impl MultiMachine {
    /// Builds an `n`-core machine for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= cores <= 4` (one 2-bit transaction context
    /// per core), or if `cfg` is battery-backed.
    pub fn new(cfg: MachineConfig, cores: usize) -> Self {
        let mut m = Machine::new(cfg);
        m.enable_multi(cores);
        debug_assert_eq!(m.parked_count(), cores - 1);
        let mut slot_of = vec![ACTIVE_SLOT; cores];
        for (core, slot) in slot_of.iter_mut().enumerate().skip(1) {
            *slot = core - 1;
        }
        MultiMachine {
            m,
            cores,
            active: 0,
            slot_of,
            events: Vec::new(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The currently active core.
    pub fn active_core(&self) -> usize {
        self.active
    }

    /// The underlying machine (device, stats, config, peeks).
    pub fn machine(&self) -> &Machine {
        &self.m
    }

    /// Cross-core events observed so far, in occurrence order.
    pub fn events(&self) -> &[McEvent] {
        &self.events
    }

    /// Drains and returns the recorded events.
    pub fn take_events(&mut self) -> Vec<McEvent> {
        std::mem::take(&mut self.events)
    }

    /// Enables event tracing on the underlying machine (see
    /// [`Machine::enable_tracing`]); events are attributed to the
    /// issuing core.
    pub fn enable_tracing(&mut self, capacity_per_core: usize) -> slpmt_trace::TraceHandle {
        self.m.enable_tracing(capacity_per_core)
    }

    /// Drains and returns the trace captured so far.
    pub fn take_trace(&mut self) -> Vec<slpmt_trace::TraceRecord> {
        self.m.take_trace()
    }

    /// Makes `core` the active context (no-op when it already is).
    fn activate(&mut self, core: usize) {
        assert!(core < self.cores, "core {core} out of range");
        if core == self.active {
            return;
        }
        let slot = self.slot_of[core];
        self.m.switch_core(slot);
        self.slot_of[self.active] = slot;
        self.slot_of[core] = ACTIVE_SLOT;
        self.active = core;
        self.m.device_mut().set_event_origin(core as u8);
        self.m.trace_set_core(core as u8);
    }

    /// The core whose context is parked in `slot`.
    fn core_of_slot(&self, slot: usize) -> usize {
        self.slot_of
            .iter()
            .position(|&s| s == slot)
            .expect("every parked slot belongs to a core")
    }

    /// Aborts every *parked* transaction conflicting with the active
    /// core's access (requester wins). A write conflicts with both
    /// sets, a read only with the write set.
    fn resolve_conflicts(&mut self, addr: PmAddr, is_write: bool) {
        while let Some(slot) = self.m.parked_conflict(addr, is_write) {
            let core = self.core_of_slot(slot);
            let seq = self.m.abort_parked(slot);
            self.events.push(McEvent::ConflictAborted {
                core,
                seq,
                by_core: self.active,
                line: addr.line().raw(),
                is_write,
            });
        }
    }

    /// Whether `core` has an open transaction. A transaction that was
    /// open from the core's point of view but has vanished was aborted
    /// by a cross-core conflict.
    pub fn in_txn(&self, core: usize) -> bool {
        if core == self.active {
            self.m.in_txn()
        } else {
            self.m.parked_cur_seq(self.slot_of[core]).is_some()
        }
    }

    /// Opens a transaction on `core`, returning its sequence number.
    pub fn tx_begin(&mut self, core: usize) -> u64 {
        self.activate(core);
        self.m.tx_begin();
        self.m.cur_seq().expect("transaction just opened")
    }

    /// Commits `core`'s open transaction, returning its sequence
    /// number.
    pub fn tx_commit(&mut self, core: usize) -> u64 {
        self.activate(core);
        let seq = self.m.cur_seq().expect("commit without open transaction");
        self.m.tx_commit();
        self.events.push(McEvent::Committed { core, seq });
        seq
    }

    /// Aborts `core`'s open transaction.
    pub fn tx_abort(&mut self, core: usize) {
        self.activate(core);
        self.m.tx_abort();
    }

    /// Executes a load on `core`.
    pub fn load_u64(&mut self, core: usize, addr: PmAddr) -> u64 {
        self.activate(core);
        self.resolve_conflicts(addr, false);
        self.m.load_u64(addr)
    }

    /// Executes a store on `core`.
    pub fn store_u64(&mut self, core: usize, addr: PmAddr, value: u64, kind: StoreKind) {
        self.activate(core);
        self.resolve_conflicts(addr, true);
        self.m.store_u64(addr, value, kind)
    }

    /// Forces every outstanding lazily-persistent line durable
    /// (machine-wide; the ID register and signatures are shared).
    pub fn drain_lazy(&mut self) {
        self.m.drain_lazy();
    }

    /// Arms the shared device's persist-event crash scheduler.
    pub fn arm_crash_at_event(&mut self, k: u64) {
        self.m.arm_crash_at_event(k);
    }

    /// Whether an armed crash point has tripped.
    pub fn crash_tripped(&self) -> bool {
        self.m.crash_tripped()
    }

    /// Simulates a power failure: every core's volatile state is lost.
    pub fn crash(&mut self) {
        self.m.crash();
    }

    /// Post-crash log replay (shared log, one recovery pass).
    pub fn recover(&mut self) -> crate::recovery::RecoveryReport {
        self.m.recover()
    }

    /// Coherent view of the word at `addr` (caches, then image).
    pub fn peek_u64(&self, addr: PmAddr) -> u64 {
        self.m.peek_u64(addr)
    }
}

// ---------------------------------------------------------------------
// Program generation

/// Shape of a generated multi-core workload: each core runs
/// `txns_per_core` transactions of `stores_per_txn` stores (plus
/// interleaved loads) against a shared line pool (cross-core
/// conflicts, logged kinds only — keeps the serialized oracle exact)
/// and a per-core private pool (the full Table I kind mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Number of cores (1–4).
    pub cores: usize,
    /// Transactions per core.
    pub txns_per_core: usize,
    /// Stores per transaction.
    pub stores_per_txn: usize,
    /// Lines in the shared, conflict-inducing pool.
    pub shared_lines: usize,
    /// Lines in each core's private pool.
    pub private_lines: usize,
    /// Restrict all stores to logged kinds (`store` / `storeT
    /// lazy=1,log-free=0`). The crash sweep uses this: log-free
    /// updates of aborted transactions are indeterminate by design
    /// (they model freshly-allocated memory), which a word-exact crash
    /// oracle cannot admit.
    pub logged_only: bool,
    /// Zipfian skew of shared-pool word picks, θ in thousandths
    /// (`990` = the YCSB default θ = 0.99); `0` keeps the historical
    /// uniform draw. Skew concentrates cross-core conflicts on a few
    /// hot words — the adversarial shape for ownership hand-off and
    /// abort/rollback paths.
    pub shared_skew_milli: u16,
    /// Program-generation seed (independent of the schedule seed).
    pub seed: u64,
}

impl ProgramSpec {
    /// A small spec suitable for PR-gate tests.
    pub fn small(cores: usize, seed: u64) -> Self {
        ProgramSpec {
            cores,
            txns_per_core: 6,
            stores_per_txn: 4,
            shared_lines: 8,
            private_lines: 6,
            logged_only: false,
            shared_skew_milli: 0,
            seed,
        }
    }
}

/// Base address of the shared line pool.
pub const SHARED_BASE: u64 = 0x1_0000;
/// Base address of the private pools (core `c`'s pool follows core
/// `c - 1`'s contiguously).
pub const PRIVATE_BASE: u64 = 0x8_0000;
/// Base address of the fresh-allocation region: log-free stores write
/// lines no other transaction ever touched, modelling the paper's
/// freshly-allocated-memory use case (§II-B). Each core bump-allocates
/// from its own disjoint slice.
pub const FRESH_BASE: u64 = 0x40_0000;
/// Bytes of fresh-allocation address space per core.
pub const FRESH_STRIDE: u64 = 0x4_0000;

/// Generates the per-core trace programs for `spec`. Every store
/// carries a globally unique non-zero value; every access sits inside
/// a transaction.
pub fn gen_programs(spec: &ProgramSpec) -> Vec<Vec<TraceOp>> {
    assert!(spec.cores >= 1 && spec.shared_lines >= 1 && spec.private_lines >= 1);
    let mut rng = SimRng::seed_from_u64(spec.seed ^ 0x6d63_7072_6f67);
    let mut value = 0u64;
    // Skewed shared-word picks: a zipfian over word ranks, rank 0 the
    // hottest. `Zipf` needs n ≥ 2 ranks; a 1-line pool has 8 words, so
    // the invariant holds whenever shared_lines ≥ 1. Exactly one RNG
    // draw per pick in both arms keeps the rest of the program stream
    // aligned between skewed and uniform specs.
    let zipf = (spec.shared_skew_milli > 0)
        .then(|| Zipf::new(spec.shared_lines as u64 * 8, spec.shared_skew_milli as u32));
    let mut programs = Vec::with_capacity(spec.cores);
    for core in 0..spec.cores {
        let priv_base = PRIVATE_BASE + (core * spec.private_lines * 64) as u64;
        let fresh_base = FRESH_BASE + core as u64 * FRESH_STRIDE;
        // Words handed out so far from this core's fresh region.
        let mut fresh_words = 0u64;
        let shared_word = |rng: &mut SimRng| {
            let word = match &zipf {
                Some(z) => z.sample(rng),
                None => rng.gen_range(0..spec.shared_lines as u64 * 8),
            };
            SHARED_BASE + word * 8
        };
        let private_word =
            |rng: &mut SimRng| priv_base + rng.gen_range(0..spec.private_lines as u64 * 8) * 8;
        let mut prog = Vec::new();
        for _ in 0..spec.txns_per_core {
            prog.push(TraceOp::Begin);
            // A transaction never writes log-free into another
            // transaction's allocation: round up to a line boundary.
            fresh_words = fresh_words.div_ceil(8) * 8;
            for _ in 0..spec.stores_per_txn {
                if rng.gen_bool(0.4) {
                    let addr = if rng.gen_bool(0.7) {
                        shared_word(&mut rng)
                    } else {
                        private_word(&mut rng)
                    };
                    prog.push(TraceOp::Load { addr });
                }
                let shared = rng.gen_bool(0.5);
                let (addr, kind) = if shared {
                    // Shared pool: logged kinds only, so aborted
                    // cross-core writers always roll back exactly.
                    let kind = if rng.gen_bool(0.5) {
                        StoreKind::Store
                    } else {
                        StoreKind::lazy_logged()
                    };
                    (shared_word(&mut rng), kind)
                } else if spec.logged_only {
                    let kind = if rng.gen_bool(0.5) {
                        StoreKind::Store
                    } else {
                        StoreKind::lazy_logged()
                    };
                    (private_word(&mut rng), kind)
                } else {
                    // Log-free kinds write fresh lines only (that is
                    // what makes skipping the log sound): each store
                    // takes the next word of the core's private
                    // bump-allocated region.
                    match rng.gen_range(0..4) {
                        0 => (private_word(&mut rng), StoreKind::Store),
                        1 | 2 => {
                            let addr = fresh_base + fresh_words * 8;
                            fresh_words += 1;
                            let kind = if rng.gen_bool(0.5) {
                                StoreKind::log_free()
                            } else {
                                StoreKind::lazy_log_free()
                            };
                            (addr, kind)
                        }
                        _ => (private_word(&mut rng), StoreKind::lazy_logged()),
                    }
                };
                value += 1;
                prog.push(TraceOp::Store { addr, value, kind });
            }
            prog.push(TraceOp::Commit);
        }
        programs.push(prog);
    }
    programs
}

/// Every line address a program set touches (digest / oracle domain).
pub fn program_lines(programs: &[Vec<TraceOp>]) -> BTreeSet<u64> {
    let mut lines = BTreeSet::new();
    for prog in programs {
        for op in prog {
            match *op {
                TraceOp::Load { addr } | TraceOp::Store { addr, .. } => {
                    lines.insert(PmAddr::new(addr).line().raw());
                }
                _ => {}
            }
        }
    }
    lines
}

// ---------------------------------------------------------------------
// The driver

/// One committed transaction, in commit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn {
    /// Committing core.
    pub core: usize,
    /// Global sequence number.
    pub seq: u64,
    /// The transaction's stores, in program order.
    pub stores: Vec<ExecStore>,
}

/// One executed store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStore {
    /// Word address.
    pub addr: u64,
    /// Stored value.
    pub value: u64,
    /// Instruction flavour.
    pub kind: StoreKind,
    /// Issuing core.
    pub core: usize,
    /// Owning transaction's sequence number.
    pub seq: u64,
}

/// Everything a deterministic multi-core run produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McOutcome {
    /// Committed transactions, in commit order.
    pub committed: Vec<CommittedTxn>,
    /// Every executed store, in execution order (committed or not).
    pub exec_stores: Vec<ExecStore>,
    /// Cross-core events, in occurrence order.
    pub events: Vec<McEvent>,
    /// Final machine counters.
    pub stats: MachineStats,
    /// `splitmix64` fold over the final persistent image restricted to
    /// the program's line universe — byte-identical runs fold equal.
    pub image_digest: u64,
    /// Final simulated cycle.
    pub now: u64,
    /// Whether an armed persist-event crash tripped mid-run.
    pub crashed: bool,
}

/// Runs per-core `programs` under `sched` on a fresh
/// `programs.len()`-core machine. When `crash_at` is armed, execution
/// stops at the first scheduling step after the trip (lazy data is
/// *not* drained; the crash sweep takes over).
fn run_programs_inner(
    cfg: MachineConfig,
    programs: &[Vec<TraceOp>],
    sched: Schedule,
    crash_at: Option<u64>,
) -> (MultiMachine, McOutcome) {
    run_programs_opts(cfg, programs, sched, crash_at, None)
}

fn run_programs_opts(
    cfg: MachineConfig,
    programs: &[Vec<TraceOp>],
    sched: Schedule,
    crash_at: Option<u64>,
    trace_capacity: Option<usize>,
) -> (MultiMachine, McOutcome) {
    let n = programs.len();
    let mut mm = MultiMachine::new(cfg, n);
    if let Some(cap) = trace_capacity {
        mm.enable_tracing(cap);
    }
    if let Some(k) = crash_at {
        mm.arm_crash_at_event(k);
    }
    let mut rng = SimRng::seed_from_u64(sched.seed ^ 0x006d_6373_6368_6564);
    let weights: Vec<u64> = match sched.policy {
        SchedPolicy::RoundRobin => vec![1; n],
        SchedPolicy::Weighted => (0..n).map(|_| 1 + rng.gen_range(0..4)).collect(),
    };
    let mut pc = vec![0usize; n];
    let mut open = vec![false; n];
    let mut cur_seq = vec![0u64; n];
    let mut cur_stores: Vec<Vec<ExecStore>> = vec![Vec::new(); n];
    let mut committed = Vec::new();
    let mut exec_stores = Vec::new();
    let mut rr = 0usize;
    let mut crashed = false;
    loop {
        if mm.crash_tripped() {
            crashed = true;
            break;
        }
        let live: Vec<usize> = (0..n).filter(|&c| pc[c] < programs[c].len()).collect();
        if live.is_empty() {
            break;
        }
        let core = match sched.policy {
            SchedPolicy::RoundRobin => {
                let c = *live.iter().find(|&&c| c >= rr).unwrap_or(&live[0]);
                rr = c + 1;
                c
            }
            SchedPolicy::Weighted => {
                let total: u64 = live.iter().map(|&c| weights[c]).sum();
                let mut pick = rng.gen_range(0..total);
                let mut chosen = live[0];
                for &c in &live {
                    if pick < weights[c] {
                        chosen = c;
                        break;
                    }
                    pick -= weights[c];
                }
                chosen
            }
        };
        // A transaction this core believes open but the machine no
        // longer tracks was conflict-aborted: skip to just past the
        // program's matching Commit (the thread observes the abort and
        // gives up on the transaction).
        if open[core] && !mm.in_txn(core) {
            while pc[core] < programs[core].len() {
                let was_commit = matches!(programs[core][pc[core]], TraceOp::Commit);
                pc[core] += 1;
                if was_commit {
                    break;
                }
            }
            open[core] = false;
            cur_stores[core].clear();
            continue;
        }
        let op = programs[core][pc[core]];
        pc[core] += 1;
        match op {
            TraceOp::Begin => {
                cur_seq[core] = mm.tx_begin(core);
                open[core] = true;
            }
            TraceOp::Load { addr } => {
                mm.load_u64(core, PmAddr::new(addr));
            }
            TraceOp::Store { addr, value, kind } => {
                mm.store_u64(core, PmAddr::new(addr), value, kind);
                let s = ExecStore {
                    addr,
                    value,
                    kind,
                    core,
                    seq: cur_seq[core],
                };
                cur_stores[core].push(s);
                exec_stores.push(s);
            }
            TraceOp::Commit => {
                let seq = mm.tx_commit(core);
                open[core] = false;
                committed.push(CommittedTxn {
                    core,
                    seq,
                    stores: std::mem::take(&mut cur_stores[core]),
                });
            }
        }
    }
    if !crashed {
        // Close the run: outstanding lazily-persistent lines become
        // durable, so the image oracle sees the committed state.
        mm.drain_lazy();
    }
    let digest = image_digest(&mm, programs);
    let outcome = McOutcome {
        committed,
        exec_stores,
        events: mm.take_events(),
        stats: *mm.machine().stats(),
        image_digest: digest,
        now: mm.machine().now(),
        crashed,
    };
    (mm, outcome)
}

/// Runs per-core `programs` under `sched`, draining lazy data at the
/// end. See [`McOutcome`] for what comes back.
pub fn run_programs(
    cfg: MachineConfig,
    programs: &[Vec<TraceOp>],
    sched: Schedule,
) -> (MultiMachine, McOutcome) {
    run_programs_inner(cfg, programs, sched, None)
}

/// [`run_programs`] with event tracing on from the first instruction
/// (per-core ring capacity `trace_capacity`) and an optionally armed
/// crash — the capture side of the interleaving sweeps. Drain the
/// records with [`MultiMachine::take_trace`].
pub fn run_programs_traced(
    cfg: MachineConfig,
    programs: &[Vec<TraceOp>],
    sched: Schedule,
    crash_at: Option<u64>,
    trace_capacity: usize,
) -> (MultiMachine, McOutcome) {
    run_programs_opts(cfg, programs, sched, crash_at, Some(trace_capacity))
}

/// `splitmix64` fold over the final image restricted to the program's
/// line universe.
fn image_digest(mm: &MultiMachine, programs: &[Vec<TraceOp>]) -> u64 {
    let mut h = 0x736c_706d_745f_6d63u64;
    for line in program_lines(programs) {
        h ^= line;
        splitmix64(&mut h);
        let data = mm.machine().device().image().read_line(PmAddr::new(line));
        for chunk in data.chunks_exact(8) {
            h ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            splitmix64(&mut h);
        }
    }
    h
}

// ---------------------------------------------------------------------
// The serialized-order oracle

/// Outcome of a serialized-oracle check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleReport {
    /// Words checked exactly against the serialized reference.
    pub words_checked: usize,
    /// Words skipped because their trailing writer was an aborted
    /// log-free store (freshly-allocated-memory semantics: the value
    /// is garbage by design and unreachable by the application).
    pub words_skipped: usize,
}

/// Serialized reference: every committed transaction's stores applied
/// in commit order. Conflict resolution guarantees per-word store
/// order agrees with commit order, so this is the linearised history.
pub fn serialized_reference(outcome: &McOutcome) -> BTreeMap<u64, u64> {
    let mut model = BTreeMap::new();
    for txn in &outcome.committed {
        for s in &txn.stores {
            model.insert(s.addr, s.value);
        }
    }
    model
}

/// Checks the machine's final state against the serialized reference:
/// for every word the programs wrote, both the coherent view
/// ([`MultiMachine::peek_u64`]) and the *durable image* must hold the
/// last committed writer's value (0 if every writer aborted). Words
/// whose trailing writer was an aborted log-free store are skipped —
/// see [`OracleReport::words_skipped`].
///
/// # Errors
///
/// Returns a description of the first mismatching word.
pub fn check_serialized_oracle(
    mm: &MultiMachine,
    outcome: &McOutcome,
) -> Result<OracleReport, String> {
    let committed: BTreeSet<u64> = outcome.committed.iter().map(|t| t.seq).collect();
    let f = mm.machine().config().features;
    let reference = serialized_reference(outcome);
    // Replay the execution order: per word, the last committed value
    // and whether an aborted log-free store trails it.
    let mut last_committed: BTreeMap<u64, u64> = BTreeMap::new();
    let mut tainted: BTreeSet<u64> = BTreeSet::new();
    for s in &outcome.exec_stores {
        if committed.contains(&s.seq) {
            last_committed.insert(s.addr, s.value);
            tainted.remove(&s.addr);
        } else if !s.kind.effects(f.log_free, f.lazy).set_log {
            tainted.insert(s.addr);
        }
    }
    // Per-word execution order must agree with commit order — this is
    // exactly what cross-core conflict resolution (§V-C) guarantees.
    for (addr, value) in &reference {
        if last_committed.get(addr) != Some(value) {
            return Err(format!(
                "word {addr:#x}: commit-order value {value:#x} != \
                 execution-order value {:?} — conflict serialisation broken",
                last_committed.get(addr)
            ));
        }
    }
    let mut report = OracleReport {
        words_checked: 0,
        words_skipped: 0,
    };
    let words: BTreeSet<u64> = outcome.exec_stores.iter().map(|s| s.addr).collect();
    for word in words {
        if tainted.contains(&word) {
            report.words_skipped += 1;
            continue;
        }
        let expect = last_committed.get(&word).copied().unwrap_or(0);
        let a = PmAddr::new(word);
        let peeked = mm.peek_u64(a);
        if peeked != expect {
            return Err(format!(
                "word {word:#x}: coherent view {peeked:#x}, serialized \
                 reference {expect:#x}"
            ));
        }
        let imaged = mm.machine().device().image().read_u64(a);
        if imaged != expect {
            return Err(format!(
                "word {word:#x}: durable image {imaged:#x}, serialized \
                 reference {expect:#x}"
            ));
        }
        report.words_checked += 1;
    }
    Ok(report)
}

// ---------------------------------------------------------------------
// Multi-core persist-event crash sweep

/// One cell of a multi-core crash sweep, reproducible from this value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McSweepCase {
    /// Hardware design to simulate.
    pub scheme: Scheme,
    /// Number of cores.
    pub cores: usize,
    /// Program seed (see [`ProgramSpec`]).
    pub seed: u64,
    /// Interleaving schedule.
    pub sched: Schedule,
    /// Transactions per core.
    pub txns_per_core: usize,
    /// Stores per transaction.
    pub stores_per_txn: usize,
    /// Zipfian θ (thousandths) of shared-word picks; `0` = uniform
    /// (the historical shape — `Display` omits it so archived failure
    /// tuples stay byte-stable).
    pub skew: u16,
}

impl McSweepCase {
    /// A case with the standard trace shape.
    pub fn new(scheme: Scheme, cores: usize, seed: u64, sched: Schedule) -> Self {
        McSweepCase {
            scheme,
            cores,
            seed,
            sched,
            txns_per_core: 6,
            stores_per_txn: 4,
            skew: 0,
        }
    }

    /// [`new`](Self::new) with zipfian shared-word skew — hot-word
    /// conflict traffic for the interleaving sweeps.
    pub fn skewed(scheme: Scheme, cores: usize, seed: u64, sched: Schedule, skew: u16) -> Self {
        let mut case = Self::new(scheme, cores, seed, sched);
        case.skew = skew;
        case
    }

    fn spec(&self) -> ProgramSpec {
        ProgramSpec {
            cores: self.cores,
            txns_per_core: self.txns_per_core,
            stores_per_txn: self.stores_per_txn,
            shared_lines: 8,
            private_lines: 6,
            // Word-exact crash oracles need every store rolled back
            // exactly; log-free kinds are excluded by design.
            logged_only: true,
            shared_skew_milli: self.skew,
            seed: self.seed,
        }
    }
}

impl fmt::Display for McSweepCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheme={} cores={} seed={} sched={}",
            self.scheme, self.cores, self.seed, self.sched
        )?;
        if self.skew != 0 {
            write!(f, " skew={}", self.skew)?;
        }
        Ok(())
    }
}

/// Runs the case crash-free, checks the serialized oracle, and returns
/// the persist-event count `N` — the sweep domain is `0..=N`.
///
/// # Panics
///
/// Panics if the crash-free run already violates the oracle (the sweep
/// would be meaningless).
pub fn mc_count_events(case: &McSweepCase) -> u64 {
    let programs = gen_programs(&case.spec());
    let (mm, outcome) = run_programs(
        MachineConfig::for_scheme(case.scheme),
        &programs,
        case.sched,
    );
    check_serialized_oracle(&mm, &outcome)
        .unwrap_or_else(|e| panic!("{case}: crash-free run disagrees with the oracle: {e}"));
    mm.machine().persist_event_count()
}

/// Replays the case with a crash armed at persist event `k`, recovers,
/// and checks every program word against its *admissible* value set:
///
/// * Writers are the durably-committed transactions' stores to the
///   word, in commit order (durable markers form a prefix of the
///   commit order).
/// * Admissible are the values from the last *eager* committed writer
///   onward: its commit persisted the word (undo: data before marker;
///   redo: a replayable record before marker), so nothing older can
///   survive recovery, while later lazily-persistent values may or may
///   not have been forced — and their records were discarded at commit
///   (§III-B2) in both disciplines, so redo replay cannot re-create
///   them either. The initial 0 joins the set when no committed writer
///   was eager.
///
/// Store values are globally unique, so membership also proves no
/// uncommitted or aborted transaction's value survived recovery.
///
/// # Errors
///
/// Returns a reproducible description of the first violating word.
pub fn mc_run_crash_at(case: &McSweepCase, k: u64) -> Result<(), String> {
    let programs = gen_programs(&case.spec());
    let cfg = MachineConfig::for_scheme(case.scheme);
    let lazy_enabled = cfg.features.lazy;
    let (mut mm, outcome) = run_programs_inner(cfg, &programs, case.sched, Some(k));
    mm.crash();
    // Durable markers decide what counts as committed. Walk the persist
    // trace rather than the live marker map: `truncate_committed`
    // retires fully-persisted markers into a watermark, and a marker
    // that landed torn at the crash boundary must not count.
    let log = mm.machine().device().log();
    let durable: BTreeSet<u64> = mm
        .machine()
        .device()
        .events()
        .iter()
        .filter_map(|e| match e {
            PersistEvent::CommitMarker { txn } if log.marker_usable(*txn) => Some(*txn),
            _ => None,
        })
        .collect();
    mm.recover();
    // Admissible values per word, from the durably committed prefix.
    let mut writers: BTreeMap<u64, Vec<(u64, bool)>> = BTreeMap::new();
    for txn in outcome
        .committed
        .iter()
        .filter(|t| durable.contains(&t.seq))
    {
        for s in &txn.stores {
            let eager = s.kind.effects(true, lazy_enabled).set_persist;
            writers.entry(s.addr).or_default().push((s.value, eager));
        }
    }
    let words: BTreeSet<u64> = outcome.exec_stores.iter().map(|s| s.addr).collect();
    for word in words {
        let got = mm.machine().device().image().read_u64(PmAddr::new(word));
        let empty = Vec::new();
        let w = writers.get(&word).unwrap_or(&empty);
        let last_eager = w.iter().rposition(|&(_, eager)| eager);
        let mut admissible: Vec<u64> = match last_eager {
            Some(i) => w[i..].iter().map(|&(v, _)| v).collect(),
            None => {
                let mut v = vec![0];
                v.extend(w.iter().map(|&(v, _)| v));
                v
            }
        };
        admissible.dedup();
        if !admissible.contains(&got) {
            return Err(format!(
                "{case} k={k}: word {word:#x} recovered as {got:#x}, \
                 admissible {admissible:x?} ({} durable txns)",
                durable.len()
            ));
        }
    }
    Ok(())
}

/// Replays the machine-level sequence of [`mc_run_crash_at`] — run
/// under the case's schedule, crash at persist event `k`, power
/// failure, log replay — with event tracing enabled, and returns the
/// captured records. Recovery panics are swallowed so the trace up to
/// the failure still comes back; the same `(case, k)` always yields
/// the same records.
pub fn mc_trace_crash_at(case: &McSweepCase, k: u64) -> Vec<slpmt_trace::TraceRecord> {
    let programs = gen_programs(&case.spec());
    let (mut mm, _) = run_programs_traced(
        MachineConfig::for_scheme(case.scheme),
        &programs,
        case.sched,
        Some(k),
        1 << 20,
    );
    mm.crash();
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mm.recover()));
    mm.take_trace()
}

/// [`mc_run_crash_at`] with panics converted into failure strings, so
/// a sweep reports the reproducible `(case, k)` instead of dying.
pub fn mc_check_point(case: &McSweepCase, k: u64) -> Result<(), String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mc_run_crash_at(case, k))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(format!("{case} k={k}: panic: {msg}"))
        }
    }
}

/// Sweeps every crash point of one case serially, returning all
/// failures (empty = crash-consistent at every persist event).
pub fn mc_sweep_serial(case: &McSweepCase) -> Vec<String> {
    let n = mc_count_events(case);
    (0..=n)
        .filter_map(|k| mc_check_point(case, k).err())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_are_deterministic() {
        let spec = ProgramSpec::small(3, 7);
        assert_eq!(gen_programs(&spec), gen_programs(&spec));
        let other = ProgramSpec::small(3, 8);
        assert_ne!(gen_programs(&spec), gen_programs(&other));
    }

    #[test]
    fn store_values_are_unique_and_nonzero() {
        let programs = gen_programs(&ProgramSpec::small(4, 11));
        let mut seen = BTreeSet::new();
        for op in programs.iter().flatten() {
            if let TraceOp::Store { value, .. } = op {
                assert!(*value != 0);
                assert!(seen.insert(*value), "duplicate store value {value}");
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn single_core_multimachine_matches_plain_machine() {
        // One core, no conflicts: the wrapper must be an identity
        // layer over Machine.
        let programs = gen_programs(&ProgramSpec::small(1, 3));
        let (mm, outcome) = run_programs(MachineConfig::for_scheme(Scheme::Slpmt), &programs, {
            Schedule::round_robin(0)
        });
        assert!(!outcome.crashed);
        assert_eq!(outcome.stats.cross_core_aborts, 0);
        check_serialized_oracle(&mm, &outcome).unwrap();

        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        for op in &programs[0] {
            match *op {
                TraceOp::Begin => m.tx_begin(),
                TraceOp::Load { addr } => {
                    m.load_u64(PmAddr::new(addr));
                }
                TraceOp::Store { addr, value, kind } => m.store_u64(PmAddr::new(addr), value, kind),
                TraceOp::Commit => m.tx_commit(),
            }
        }
        m.drain_lazy();
        assert_eq!(m.now(), outcome.now, "wrapper must not change timing");
        assert_eq!(*m.stats(), outcome.stats);
    }

    #[test]
    fn conflicts_abort_parked_owners() {
        // Two cores hammer one shared line: conflicts are inevitable
        // under round-robin interleaving.
        let spec = ProgramSpec {
            cores: 2,
            txns_per_core: 8,
            stores_per_txn: 4,
            shared_lines: 1,
            private_lines: 1,
            logged_only: true,
            shared_skew_milli: 0,
            seed: 5,
        };
        let programs = gen_programs(&spec);
        let (mm, outcome) = run_programs(
            MachineConfig::for_scheme(Scheme::Slpmt),
            &programs,
            Schedule::round_robin(1),
        );
        assert!(
            outcome.stats.cross_core_aborts > 0,
            "single shared line must conflict"
        );
        assert!(outcome
            .events
            .iter()
            .any(|e| matches!(e, McEvent::ConflictAborted { .. })));
        check_serialized_oracle(&mm, &outcome).unwrap();
    }

    #[test]
    fn weighted_and_round_robin_schedules_differ() {
        let programs = gen_programs(&ProgramSpec::small(3, 9));
        let cfg = || MachineConfig::for_scheme(Scheme::Slpmt);
        let (_, rr) = run_programs(cfg(), &programs, Schedule::round_robin(2));
        let (_, w) = run_programs(cfg(), &programs, Schedule::weighted(2));
        // Same programs, different interleaving: commit order differs
        // (overwhelmingly likely with 3 cores × 6 txns).
        let rr_order: Vec<u64> = rr.committed.iter().map(|t| t.seq).collect();
        let w_order: Vec<u64> = w.committed.iter().map(|t| t.seq).collect();
        assert_ne!(rr_order, w_order, "schedules must actually differ");
    }

    #[test]
    fn mc_crash_at_zero_recovers_to_initial_state() {
        let case = McSweepCase::new(Scheme::Slpmt, 2, 3, Schedule::round_robin(1));
        mc_run_crash_at(&case, 0).unwrap();
    }

    #[test]
    fn mc_crash_past_all_events_recovers_final_state() {
        let case = McSweepCase::new(Scheme::Slpmt, 2, 3, Schedule::round_robin(1));
        let n = mc_count_events(&case);
        mc_run_crash_at(&case, n).unwrap();
    }

    #[test]
    fn skewed_shared_picks_concentrate_on_hot_words() {
        // Under θ = 0.99 the hottest shared word must take a far
        // larger share of shared stores than the uniform 1/64.
        fn shared_store_counts(programs: &[Vec<TraceOp>]) -> std::collections::BTreeMap<u64, u32> {
            let mut counts = std::collections::BTreeMap::new();
            for prog in programs {
                for op in prog {
                    if let TraceOp::Store { addr, .. } = *op {
                        if (SHARED_BASE..PRIVATE_BASE).contains(&addr) {
                            *counts.entry(addr).or_insert(0u32) += 1;
                        }
                    }
                }
            }
            counts
        }
        let mut spec = ProgramSpec::small(4, 29);
        spec.txns_per_core = 32;
        spec.logged_only = true;
        let uniform = shared_store_counts(&gen_programs(&spec));
        spec.shared_skew_milli = 990;
        let skewed = shared_store_counts(&gen_programs(&spec));
        let peak = |m: &std::collections::BTreeMap<u64, u32>| {
            let total: u32 = m.values().sum();
            (*m.values().max().unwrap() as f64, total as f64)
        };
        let (u_max, u_total) = peak(&uniform);
        let (s_max, s_total) = peak(&skewed);
        assert!(
            s_max / s_total > 2.0 * u_max / u_total,
            "skewed peak {s_max}/{s_total} not hotter than uniform {u_max}/{u_total}"
        );
    }

    #[test]
    fn skewed_case_survives_crash_sweep_endpoints() {
        let case = McSweepCase::skewed(Scheme::Slpmt, 2, 3, Schedule::round_robin(1), 990);
        assert_eq!(
            case.to_string(),
            format!(
                "scheme={} cores=2 seed=3 sched=rr:1 skew=990",
                Scheme::Slpmt
            )
        );
        let n = mc_count_events(&case);
        mc_run_crash_at(&case, 0).unwrap();
        mc_run_crash_at(&case, n / 2).unwrap();
        mc_run_crash_at(&case, n).unwrap();
    }

    #[test]
    fn event_origins_attribute_cores() {
        let programs = gen_programs(&ProgramSpec::small(2, 13));
        let (mm, _) = run_programs(
            MachineConfig::for_scheme(Scheme::Fg),
            &programs,
            Schedule::round_robin(0),
        );
        let origins = mm.machine().device().event_origins();
        assert!(origins.contains(&0) && origins.contains(&1));
        assert_eq!(origins.len(), mm.machine().device().events().len());
    }
}
