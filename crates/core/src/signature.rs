//! Working-set signatures for lazy-persistency conflict tracking
//! (§III-C3).
//!
//! When a transaction with lazily-persistent data commits, SLPMT
//! records the addresses of its read- and write-set in a 2048-bit
//! signature (a Bloom filter, as in LogTM-SE / Bulk). Later stores are
//! checked against the live signatures; a hit forces the deferred data
//! of the matching transaction (and all earlier ones) to persist
//! before the store proceeds. Bloom filters may report *false
//! positives* — harmless, they only persist data early — but never
//! false negatives, which the property tests assert.

use slpmt_pmem::addr::PmAddr;

/// Signature width in bits: four 2048-bit signatures = 1 KB (§III-D).
pub const SIGNATURE_BITS: usize = 2048;

/// Number of hash functions. Two keeps the false-positive rate low for
/// the working-set sizes of the evaluated transactions while staying
/// cheap — the paper's "all the signatures share the same hash
/// functions".
const HASHES: usize = 2;

fn mix(mut x: u64, seed: u64) -> u64 {
    // SplitMix64 finaliser with a seed fold — deterministic, well
    // dispersed, and dependency-free.
    x = x.wrapping_add(seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A 2048-bit address-set signature.
///
/// Addresses are inserted and tested at cache-line granularity, since
/// conflicts are detected on coherence requests.
///
/// ```
/// use slpmt_core::Signature;
/// use slpmt_pmem::PmAddr;
/// let mut s = Signature::new();
/// s.insert(PmAddr::new(0x1000));
/// assert!(s.maybe_contains(PmAddr::new(0x1008))); // same line
/// assert!(!s.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    words: [u64; SIGNATURE_BITS / 64],
    inserted: u32,
}

impl Default for Signature {
    fn default() -> Self {
        Self::new()
    }
}

impl Signature {
    /// Creates an empty signature.
    pub fn new() -> Self {
        Signature {
            words: [0; SIGNATURE_BITS / 64],
            inserted: 0,
        }
    }

    fn bit_positions(line: u64) -> [usize; HASHES] {
        let mut out = [0; HASHES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (mix(line, i as u64) % SIGNATURE_BITS as u64) as usize;
        }
        out
    }

    /// Inserts the cache line containing `addr`.
    pub fn insert(&mut self, addr: PmAddr) {
        let line = addr.line().raw();
        for pos in Self::bit_positions(line) {
            self.words[pos / 64] |= 1 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Tests the cache line containing `addr`. May return a false
    /// positive; never a false negative.
    pub fn maybe_contains(&self, addr: PmAddr) -> bool {
        let line = addr.line().raw();
        Self::bit_positions(line)
            .iter()
            .all(|&pos| self.words[pos / 64] & (1 << (pos % 64)) != 0)
    }

    /// Number of insert operations performed.
    pub fn inserted(&self) -> u32 {
        self.inserted
    }

    /// `true` when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Clears the signature for reuse (ID reclamation).
    pub fn clear(&mut self) {
        self.words = [0; SIGNATURE_BITS / 64];
        self.inserted = 0;
    }

    /// Fraction of bits set — a saturation diagnostic.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        set as f64 / SIGNATURE_BITS as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut s = Signature::new();
        let addrs: Vec<PmAddr> = (0..100).map(|i| PmAddr::new(i * 64)).collect();
        for a in &addrs {
            s.insert(*a);
        }
        for a in &addrs {
            assert!(s.maybe_contains(*a));
        }
    }

    #[test]
    fn line_granularity() {
        let mut s = Signature::new();
        s.insert(PmAddr::new(0x1004));
        assert!(s.maybe_contains(PmAddr::new(0x1000)));
        assert!(s.maybe_contains(PmAddr::new(0x103F)));
    }

    #[test]
    fn empty_signature_matches_nothing() {
        let s = Signature::new();
        for i in 0..1000 {
            assert!(!s.maybe_contains(PmAddr::new(i * 64)));
        }
    }

    #[test]
    fn low_false_positive_rate_at_working_set_scale() {
        // A transaction touching ~64 lines (an 8 KB working set) should
        // leave the 2048-bit signature far from saturated.
        let mut s = Signature::new();
        for i in 0..64u64 {
            s.insert(PmAddr::new(i * 64));
        }
        assert!(s.fill_ratio() < 0.10);
        let fp = (1000..20_000u64)
            .map(|i| PmAddr::new(i * 64))
            .filter(|a| s.maybe_contains(*a))
            .count();
        // With k=2 and ~6% fill, the false-positive rate is ≲0.5%.
        assert!(fp < 150, "false positives too high: {fp}/19000");
    }

    #[test]
    fn clear_resets() {
        let mut s = Signature::new();
        s.insert(PmAddr::new(0));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.maybe_contains(PmAddr::new(0)));
        assert_eq!(s.fill_ratio(), 0.0);
    }

    #[test]
    fn size_matches_paper() {
        // Four signatures of 256 bytes each → 1 KB (§III-D, Table III).
        assert_eq!(SIGNATURE_BITS / 8, 256);
        assert_eq!(4 * SIGNATURE_BITS / 8, 1024);
    }
}
