//! The evaluated hardware designs (§VI-C).
//!
//! Each [`Scheme`] resolves to a [`SchemeFeatures`] bundle the machine
//! consults: logging granularity, which log buffer to use, whether the
//! `storeT` operand bits are honoured, and the logging discipline.
//!
//! * **FG** — the paper's baseline: fine-grain (word) logging with the
//!   four-tier coalescing buffer; `storeT` operands ignored.
//! * **FG+LG** / **FG+LZ** — baseline plus log-free / lazy persistence
//!   only (the Figure 8 breakdown).
//! * **SLPMT** — the full design.
//! * **ATOM** — line-granularity hardware undo logging with an
//!   eight-line coalescing buffer (Joshi et al., HPCA'17).
//! * **EDE** — any-granularity logging with no hardware buffer (Shull
//!   et al., ISCA'21).
//! * **FG-CL** / **SLPMT-CL** — the cache-line-granularity variants of
//!   the Figure 9 study.

use std::fmt;

/// Logging granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Word (8-byte) log records — fine-grain logging (§III-B).
    Word,
    /// Whole-cache-line log records.
    Line,
}

/// Undo vs redo logging (Figure 4 persist ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Discipline {
    /// Undo logging: log records persist before logged lines; log-free
    /// lines persist at any time.
    #[default]
    Undo,
    /// Redo logging: log-free lines persist before logged lines; data
    /// writes are buffered until commit.
    Redo,
}

/// Which on-core log path the machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// The four-tier buddy-coalescing buffer (SLPMT/FG).
    Tiered,
    /// ATOM's eight-entry line-record buffer.
    AtomLines,
    /// EDE's bufferless write-combining path.
    EdeDirect,
}

/// Feature bundle the machine executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeFeatures {
    /// Log record granularity.
    pub granularity: Granularity,
    /// Log path.
    pub buffer: BufferKind,
    /// Honour the `log-free` operand of `storeT`.
    pub log_free: bool,
    /// Honour the `lazy` operand of `storeT`.
    pub lazy: bool,
    /// Speculatively log clean words of partially-logged groups before
    /// L1 eviction so L2's coarse bits stay set (§III-B1).
    pub speculative_logging: bool,
    /// Logging discipline (undo/redo ordering).
    pub discipline: Discipline,
}

/// The named designs compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Baseline: fine-grain logging only.
    Fg,
    /// Baseline + log-free stores.
    FgLg,
    /// Baseline + lazy persistence.
    FgLz,
    /// The full design.
    Slpmt,
    /// ATOM (HPCA'17).
    Atom,
    /// EDE (ISCA'21).
    Ede,
    /// Baseline restricted to line-granularity logging (Figure 9).
    FgCl,
    /// Full design at line granularity (Figure 9).
    SlpmtCl,
    /// Baseline under the redo-logging discipline (Figure 4, right).
    FgRedo,
    /// Full design under the redo-logging discipline.
    SlpmtRedo,
}

impl Scheme {
    /// All schemes, in the order figures present them.
    pub const ALL: [Scheme; 8] = [
        Scheme::Fg,
        Scheme::FgLg,
        Scheme::FgLz,
        Scheme::Slpmt,
        Scheme::Atom,
        Scheme::Ede,
        Scheme::FgCl,
        Scheme::SlpmtCl,
    ];

    /// The redo-discipline variants (§II/Figure 4 right; not part of
    /// the paper's headline comparison, which evaluates undo).
    pub const REDO: [Scheme; 2] = [Scheme::FgRedo, Scheme::SlpmtRedo];

    /// The feature bundle for this scheme.
    pub fn features(self) -> SchemeFeatures {
        let base = SchemeFeatures {
            granularity: Granularity::Word,
            buffer: BufferKind::Tiered,
            log_free: false,
            lazy: false,
            speculative_logging: true,
            discipline: Discipline::Undo,
        };
        match self {
            Scheme::Fg => base,
            Scheme::FgLg => SchemeFeatures {
                log_free: true,
                ..base
            },
            Scheme::FgLz => SchemeFeatures { lazy: true, ..base },
            Scheme::Slpmt => SchemeFeatures {
                log_free: true,
                lazy: true,
                ..base
            },
            Scheme::Atom => SchemeFeatures {
                granularity: Granularity::Line,
                buffer: BufferKind::AtomLines,
                speculative_logging: false,
                ..base
            },
            Scheme::Ede => SchemeFeatures {
                buffer: BufferKind::EdeDirect,
                speculative_logging: false,
                ..base
            },
            Scheme::FgCl => SchemeFeatures {
                granularity: Granularity::Line,
                speculative_logging: false,
                ..base
            },
            Scheme::SlpmtCl => SchemeFeatures {
                granularity: Granularity::Line,
                log_free: true,
                lazy: true,
                speculative_logging: false,
                ..base
            },
            Scheme::FgRedo => SchemeFeatures {
                discipline: Discipline::Redo,
                ..base
            },
            Scheme::SlpmtRedo => SchemeFeatures {
                discipline: Discipline::Redo,
                log_free: true,
                lazy: true,
                ..base
            },
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scheme::Fg => "FG",
            Scheme::FgLg => "FG+LG",
            Scheme::FgLz => "FG+LZ",
            Scheme::Slpmt => "SLPMT",
            Scheme::Atom => "ATOM",
            Scheme::Ede => "EDE",
            Scheme::FgCl => "FG-CL",
            Scheme::SlpmtCl => "SLPMT-CL",
            Scheme::FgRedo => "FG-RD",
            Scheme::SlpmtRedo => "SLPMT-RD",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_disables_selective_features() {
        let f = Scheme::Fg.features();
        assert!(!f.log_free);
        assert!(!f.lazy);
        assert_eq!(f.granularity, Granularity::Word);
        assert_eq!(f.buffer, BufferKind::Tiered);
    }

    #[test]
    fn breakdown_configs() {
        assert!(Scheme::FgLg.features().log_free);
        assert!(!Scheme::FgLg.features().lazy);
        assert!(Scheme::FgLz.features().lazy);
        assert!(!Scheme::FgLz.features().log_free);
        let s = Scheme::Slpmt.features();
        assert!(s.log_free && s.lazy);
    }

    #[test]
    fn comparison_schemes() {
        let atom = Scheme::Atom.features();
        assert_eq!(atom.granularity, Granularity::Line);
        assert_eq!(atom.buffer, BufferKind::AtomLines);
        assert!(!atom.log_free && !atom.lazy);
        let ede = Scheme::Ede.features();
        assert_eq!(ede.granularity, Granularity::Word);
        assert_eq!(ede.buffer, BufferKind::EdeDirect);
    }

    #[test]
    fn figure9_line_variants() {
        let cl = Scheme::SlpmtCl.features();
        assert_eq!(cl.granularity, Granularity::Line);
        assert_eq!(cl.buffer, BufferKind::Tiered);
        assert!(cl.log_free && cl.lazy);
        let fgcl = Scheme::FgCl.features();
        assert_eq!(fgcl.granularity, Granularity::Line);
        assert!(!fgcl.log_free && !fgcl.lazy);
    }

    #[test]
    fn redo_variants() {
        let r = Scheme::SlpmtRedo.features();
        assert_eq!(r.discipline, Discipline::Redo);
        assert!(r.log_free && r.lazy);
        assert_eq!(r.buffer, BufferKind::Tiered);
        let f = Scheme::FgRedo.features();
        assert_eq!(f.discipline, Discipline::Redo);
        assert!(!f.log_free && !f.lazy);
    }

    #[test]
    fn display_names_match_figures() {
        let names: Vec<String> = Scheme::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            names,
            ["FG", "FG+LG", "FG+LZ", "SLPMT", "ATOM", "EDE", "FG-CL", "SLPMT-CL"]
        );
    }
}
