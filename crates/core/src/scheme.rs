//! The evaluated hardware designs (§VI-C).
//!
//! Each [`Scheme`] resolves to a [`SchemeFeatures`] bundle the machine
//! consults: logging granularity, which log buffer to use, whether the
//! `storeT` operand bits are honoured, and the logging discipline.
//!
//! * **FG** — the paper's baseline: fine-grain (word) logging with the
//!   four-tier coalescing buffer; `storeT` operands ignored.
//! * **FG+LG** / **FG+LZ** — baseline plus log-free / lazy persistence
//!   only (the Figure 8 breakdown).
//! * **SLPMT** — the full design.
//! * **ATOM** — line-granularity hardware undo logging with an
//!   eight-line coalescing buffer (Joshi et al., HPCA'17).
//! * **EDE** — any-granularity logging with no hardware buffer (Shull
//!   et al., ISCA'21).
//! * **FG-CL** / **SLPMT-CL** — the cache-line-granularity variants of
//!   the Figure 9 study.

use std::fmt;

/// Logging granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Word (8-byte) log records — fine-grain logging (§III-B).
    Word,
    /// Whole-cache-line log records.
    Line,
}

/// Undo vs redo logging (Figure 4 persist ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Discipline {
    /// Undo logging: log records persist before logged lines; log-free
    /// lines persist at any time.
    #[default]
    Undo,
    /// Redo logging: log-free lines persist before logged lines; data
    /// writes are buffered until commit.
    Redo,
}

/// Which on-core log path the machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// The four-tier buddy-coalescing buffer (SLPMT/FG).
    Tiered,
    /// ATOM's eight-entry line-record buffer.
    AtomLines,
    /// EDE's bufferless write-combining path.
    EdeDirect,
}

/// Feature bundle the machine executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeFeatures {
    /// Log record granularity.
    pub granularity: Granularity,
    /// Log path.
    pub buffer: BufferKind,
    /// Honour the `log-free` operand of `storeT`.
    pub log_free: bool,
    /// Honour the `lazy` operand of `storeT`.
    pub lazy: bool,
    /// Speculatively log clean words of partially-logged groups before
    /// L1 eviction so L2's coarse bits stay set (§III-B1).
    pub speculative_logging: bool,
    /// Logging discipline (undo/redo ordering).
    pub discipline: Discipline,
}

/// The named designs compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Baseline: fine-grain logging only.
    Fg,
    /// Baseline + log-free stores.
    FgLg,
    /// Baseline + lazy persistence.
    FgLz,
    /// The full design.
    Slpmt,
    /// ATOM (HPCA'17).
    Atom,
    /// EDE (ISCA'21).
    Ede,
    /// Baseline restricted to line-granularity logging (Figure 9).
    FgCl,
    /// Full design at line granularity (Figure 9).
    SlpmtCl,
    /// Baseline under the redo-logging discipline (Figure 4, right).
    FgRedo,
    /// Full design under the redo-logging discipline.
    SlpmtRedo,
}

impl Scheme {
    /// All schemes, in the order figures present them.
    pub const ALL: [Scheme; 8] = [
        Scheme::Fg,
        Scheme::FgLg,
        Scheme::FgLz,
        Scheme::Slpmt,
        Scheme::Atom,
        Scheme::Ede,
        Scheme::FgCl,
        Scheme::SlpmtCl,
    ];

    /// The redo-discipline variants (§II/Figure 4 right; not part of
    /// the paper's headline comparison, which evaluates undo).
    pub const REDO: [Scheme; 2] = [Scheme::FgRedo, Scheme::SlpmtRedo];

    /// The feature bundle for this scheme.
    pub fn features(self) -> SchemeFeatures {
        let base = SchemeFeatures {
            granularity: Granularity::Word,
            buffer: BufferKind::Tiered,
            log_free: false,
            lazy: false,
            speculative_logging: true,
            discipline: Discipline::Undo,
        };
        match self {
            Scheme::Fg => base,
            Scheme::FgLg => SchemeFeatures {
                log_free: true,
                ..base
            },
            Scheme::FgLz => SchemeFeatures { lazy: true, ..base },
            Scheme::Slpmt => SchemeFeatures {
                log_free: true,
                lazy: true,
                ..base
            },
            Scheme::Atom => SchemeFeatures {
                granularity: Granularity::Line,
                buffer: BufferKind::AtomLines,
                speculative_logging: false,
                ..base
            },
            Scheme::Ede => SchemeFeatures {
                buffer: BufferKind::EdeDirect,
                speculative_logging: false,
                ..base
            },
            Scheme::FgCl => SchemeFeatures {
                granularity: Granularity::Line,
                speculative_logging: false,
                ..base
            },
            Scheme::SlpmtCl => SchemeFeatures {
                granularity: Granularity::Line,
                log_free: true,
                lazy: true,
                speculative_logging: false,
                ..base
            },
            Scheme::FgRedo => SchemeFeatures {
                discipline: Discipline::Redo,
                ..base
            },
            Scheme::SlpmtRedo => SchemeFeatures {
                discipline: Discipline::Redo,
                log_free: true,
                lazy: true,
                ..base
            },
        }
    }
}

/// The software persistent-transaction baselines (durabletx family):
/// log protocols executed as explicit store/flush/fence streams over
/// the same cache hierarchy and WPQ, with no hardware logging features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtmFlavor {
    /// Classic software undo logging: each pre-image record is flushed
    /// and fenced before the in-place store it covers.
    UndoLog,
    /// Software redo logging: 4-fence commit (records, marker, apply,
    /// truncate) with log-then-apply write traffic.
    RedoLog,
    /// Romulus-style redo logging: the 4-fence redo protocol plus a
    /// back-strip copy of every applied line (main/back replication).
    RomulusLog,
    /// Trinity: 2-fence commit — per-record fences elided because
    /// flush acceptance is already ordered, one fence to seal the log
    /// and one to seal the in-place apply.
    Trinity,
    /// Quadra: 1-fence commit via a self-validating (CRC-tagged)
    /// commit record persisted in the same drain as the log body.
    Quadra,
}

impl PtmFlavor {
    /// All software flavors, in fence-count order (cheap to costly).
    pub const ALL: [PtmFlavor; 5] = [
        PtmFlavor::Quadra,
        PtmFlavor::Trinity,
        PtmFlavor::RedoLog,
        PtmFlavor::RomulusLog,
        PtmFlavor::UndoLog,
    ];

    /// The number of sfences the commit protocol issues per
    /// transaction (UndoLog additionally fences once per fresh word).
    pub fn commit_fences(self) -> u64 {
        match self {
            PtmFlavor::Quadra => 1,
            PtmFlavor::Trinity => 2,
            PtmFlavor::RedoLog | PtmFlavor::RomulusLog => 4,
            PtmFlavor::UndoLog => 2,
        }
    }

    /// Whether the flavor buffers writes in a volatile redo overlay
    /// until commit (log-then-apply) rather than writing in place.
    pub fn is_redo(self) -> bool {
        matches!(
            self,
            PtmFlavor::RedoLog | PtmFlavor::RomulusLog | PtmFlavor::Quadra
        )
    }
}

impl fmt::Display for PtmFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PtmFlavor::UndoLog => "UNDOLOG",
            PtmFlavor::RedoLog => "REDOLOG",
            PtmFlavor::RomulusLog => "ROMULUS",
            PtmFlavor::Trinity => "TRINITY",
            PtmFlavor::Quadra => "QUADRA",
        };
        f.write_str(name)
    }
}

/// A scheme column of the comparison matrix: either one of the
/// hardware designs or a software PTM baseline. This is the single
/// shared registry every `--scheme all` sweep iterates, so adding a
/// flavor here adds it to every driver at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// A hardware scheme (FG/SLPMT/ATOM/EDE families).
    Hardware(Scheme),
    /// A software PTM baseline run with hardware logging disabled.
    Software(PtmFlavor),
}

impl SchemeKind {
    /// Every scheme column, hardware first (figure order, then the
    /// redo-discipline variants), then the software flavors.
    pub const REGISTRY: [SchemeKind; 15] = [
        SchemeKind::Hardware(Scheme::Fg),
        SchemeKind::Hardware(Scheme::FgLg),
        SchemeKind::Hardware(Scheme::FgLz),
        SchemeKind::Hardware(Scheme::Slpmt),
        SchemeKind::Hardware(Scheme::Atom),
        SchemeKind::Hardware(Scheme::Ede),
        SchemeKind::Hardware(Scheme::FgCl),
        SchemeKind::Hardware(Scheme::SlpmtCl),
        SchemeKind::Hardware(Scheme::FgRedo),
        SchemeKind::Hardware(Scheme::SlpmtRedo),
        SchemeKind::Software(PtmFlavor::Quadra),
        SchemeKind::Software(PtmFlavor::Trinity),
        SchemeKind::Software(PtmFlavor::RedoLog),
        SchemeKind::Software(PtmFlavor::RomulusLog),
        SchemeKind::Software(PtmFlavor::UndoLog),
    ];

    /// The software columns only.
    pub const SOFTWARE: [SchemeKind; 5] = [
        SchemeKind::Software(PtmFlavor::Quadra),
        SchemeKind::Software(PtmFlavor::Trinity),
        SchemeKind::Software(PtmFlavor::RedoLog),
        SchemeKind::Software(PtmFlavor::RomulusLog),
        SchemeKind::Software(PtmFlavor::UndoLog),
    ];

    /// The hardware scheme, when this is a hardware column.
    pub fn hardware(self) -> Option<Scheme> {
        match self {
            SchemeKind::Hardware(s) => Some(s),
            SchemeKind::Software(_) => None,
        }
    }

    /// The software flavor, when this is a software column.
    pub fn software(self) -> Option<PtmFlavor> {
        match self {
            SchemeKind::Hardware(_) => None,
            SchemeKind::Software(f) => Some(f),
        }
    }

    /// Parses a scheme name (case-insensitive Display form) against
    /// the shared registry.
    pub fn parse(name: &str) -> Option<SchemeKind> {
        SchemeKind::REGISTRY
            .into_iter()
            .find(|k| k.to_string().eq_ignore_ascii_case(name))
    }
}

impl From<Scheme> for SchemeKind {
    fn from(s: Scheme) -> Self {
        SchemeKind::Hardware(s)
    }
}

impl From<PtmFlavor> for SchemeKind {
    fn from(f: PtmFlavor) -> Self {
        SchemeKind::Software(f)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeKind::Hardware(s) => s.fmt(f),
            SchemeKind::Software(p) => p.fmt(f),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scheme::Fg => "FG",
            Scheme::FgLg => "FG+LG",
            Scheme::FgLz => "FG+LZ",
            Scheme::Slpmt => "SLPMT",
            Scheme::Atom => "ATOM",
            Scheme::Ede => "EDE",
            Scheme::FgCl => "FG-CL",
            Scheme::SlpmtCl => "SLPMT-CL",
            Scheme::FgRedo => "FG-RD",
            Scheme::SlpmtRedo => "SLPMT-RD",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_disables_selective_features() {
        let f = Scheme::Fg.features();
        assert!(!f.log_free);
        assert!(!f.lazy);
        assert_eq!(f.granularity, Granularity::Word);
        assert_eq!(f.buffer, BufferKind::Tiered);
    }

    #[test]
    fn breakdown_configs() {
        assert!(Scheme::FgLg.features().log_free);
        assert!(!Scheme::FgLg.features().lazy);
        assert!(Scheme::FgLz.features().lazy);
        assert!(!Scheme::FgLz.features().log_free);
        let s = Scheme::Slpmt.features();
        assert!(s.log_free && s.lazy);
    }

    #[test]
    fn comparison_schemes() {
        let atom = Scheme::Atom.features();
        assert_eq!(atom.granularity, Granularity::Line);
        assert_eq!(atom.buffer, BufferKind::AtomLines);
        assert!(!atom.log_free && !atom.lazy);
        let ede = Scheme::Ede.features();
        assert_eq!(ede.granularity, Granularity::Word);
        assert_eq!(ede.buffer, BufferKind::EdeDirect);
    }

    #[test]
    fn figure9_line_variants() {
        let cl = Scheme::SlpmtCl.features();
        assert_eq!(cl.granularity, Granularity::Line);
        assert_eq!(cl.buffer, BufferKind::Tiered);
        assert!(cl.log_free && cl.lazy);
        let fgcl = Scheme::FgCl.features();
        assert_eq!(fgcl.granularity, Granularity::Line);
        assert!(!fgcl.log_free && !fgcl.lazy);
    }

    #[test]
    fn redo_variants() {
        let r = Scheme::SlpmtRedo.features();
        assert_eq!(r.discipline, Discipline::Redo);
        assert!(r.log_free && r.lazy);
        assert_eq!(r.buffer, BufferKind::Tiered);
        let f = Scheme::FgRedo.features();
        assert_eq!(f.discipline, Discipline::Redo);
        assert!(!f.log_free && !f.lazy);
    }

    #[test]
    fn display_names_match_figures() {
        let names: Vec<String> = Scheme::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            names,
            ["FG", "FG+LG", "FG+LZ", "SLPMT", "ATOM", "EDE", "FG-CL", "SLPMT-CL"]
        );
    }

    #[test]
    fn registry_covers_hardware_and_software() {
        // Every hardware scheme (figure order + redo variants) and
        // every software flavor appears exactly once in the registry.
        let hw: Vec<Scheme> = SchemeKind::REGISTRY
            .iter()
            .filter_map(|k| k.hardware())
            .collect();
        let expect: Vec<Scheme> = Scheme::ALL.into_iter().chain(Scheme::REDO).collect();
        assert_eq!(hw, expect);
        let sw: Vec<PtmFlavor> = SchemeKind::REGISTRY
            .iter()
            .filter_map(|k| k.software())
            .collect();
        assert_eq!(sw.len(), PtmFlavor::ALL.len());
        for f in PtmFlavor::ALL {
            assert!(sw.contains(&f), "{f} missing from registry");
        }
    }

    #[test]
    fn registry_parse_round_trips() {
        for k in SchemeKind::REGISTRY {
            let name = k.to_string();
            assert_eq!(SchemeKind::parse(&name), Some(k));
            assert_eq!(SchemeKind::parse(&name.to_lowercase()), Some(k));
        }
        assert_eq!(SchemeKind::parse("nope"), None);
    }

    #[test]
    fn flavor_fence_budgets() {
        assert_eq!(PtmFlavor::Quadra.commit_fences(), 1);
        assert_eq!(PtmFlavor::Trinity.commit_fences(), 2);
        assert_eq!(PtmFlavor::RedoLog.commit_fences(), 4);
        assert_eq!(PtmFlavor::RomulusLog.commit_fences(), 4);
        assert!(PtmFlavor::UndoLog.commit_fences() >= 2);
        assert!(!PtmFlavor::UndoLog.is_redo());
        assert!(!PtmFlavor::Trinity.is_redo());
        assert!(PtmFlavor::Quadra.is_redo());
    }
}
