//! Cycle and event accounting for the simulated machine.

use std::fmt;

/// Counters accumulated by [`Machine`](crate::Machine) during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Load instructions executed.
    pub loads: u64,
    /// Store-family instructions executed (plain and `storeT`).
    pub stores: u64,
    /// Stores that executed with `storeT` semantics honoured.
    pub store_ts: u64,
    /// Transactions begun.
    pub tx_begins: u64,
    /// Transactions committed.
    pub tx_commits: u64,
    /// Transactions aborted.
    pub tx_aborts: u64,
    /// Suspended (switched-out) transactions aborted by conflicts.
    pub suspended_aborts: u64,
    /// Open transactions of *other cores* aborted by a conflicting
    /// access (multi-core execution; requester wins, as in §V-C).
    pub cross_core_aborts: u64,
    /// Cross-core abort repairs skipped because a victim's durable
    /// record failed validation (torn/corrupt) — the roll-back is left
    /// to post-crash recovery instead of replaying garbage.
    pub cross_core_repair_aborts: u64,
    /// Undo/redo log records created (before coalescing).
    pub log_records_created: u64,
    /// Log records discarded at commit because their line was lazy.
    pub log_records_discarded: u64,
    /// Data lines persisted eagerly at commit.
    pub commit_line_persists: u64,
    /// Lines whose persistence was deferred past commit (lazy).
    pub lazy_lines_deferred: u64,
    /// Deferred lines later forced to persist by a conflict or ID
    /// recycling.
    pub lazy_lines_forced: u64,
    /// Deferred lines that persisted as a side effect of cache overflow.
    pub lazy_lines_overflowed: u64,
    /// Signature hits that triggered forced persistence.
    pub signature_hits: u64,
    /// Cycles spent stalled at commit (log drain + data persists).
    pub commit_stall_cycles: u64,
    /// Cycles charged as pure compute by the workload.
    pub compute_cycles: u64,
    /// Explicit `sfence` instructions executed (software PTM paths;
    /// hardware schemes order persists in the commit engine instead).
    pub fences: u64,
    /// Explicit `clwb` flush instructions executed (software PTM
    /// paths).
    pub flushes: u64,
    /// Cycles spent stalled in `sfence` waiting for the WPQ to drain.
    pub fence_stall_cycles: u64,
}

impl MachineStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// One-line summary for sweep logs, e.g.
    /// `ld 100 st 80 (storeT 20) tx 10/9/1 rec 30 (disc 4) persists 12
    /// lazy 3/1/0 sig 2 stall 4000` — the shared compact form the
    /// sweep runners print instead of hand-formatting counters.
    pub fn summary(&self) -> String {
        format!(
            "ld {} st {} (storeT {}) tx {}/{}/{} rec {} (disc {}) \
             persists {} lazy {}/{}/{} sig {} stall {}",
            self.loads,
            self.stores,
            self.store_ts,
            self.tx_begins,
            self.tx_commits,
            self.tx_aborts,
            self.log_records_created,
            self.log_records_discarded,
            self.commit_line_persists,
            self.lazy_lines_deferred,
            self.lazy_lines_forced,
            self.lazy_lines_overflowed,
            self.signature_hits,
            self.commit_stall_cycles
        )
    }

    /// Adds `other`'s counters into `self` (merging per-shard or
    /// per-worker runs; field-wise, order-independent).
    pub fn accumulate(&mut self, other: &MachineStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.store_ts += other.store_ts;
        self.tx_begins += other.tx_begins;
        self.tx_commits += other.tx_commits;
        self.tx_aborts += other.tx_aborts;
        self.suspended_aborts += other.suspended_aborts;
        self.cross_core_aborts += other.cross_core_aborts;
        self.cross_core_repair_aborts += other.cross_core_repair_aborts;
        self.log_records_created += other.log_records_created;
        self.log_records_discarded += other.log_records_discarded;
        self.commit_line_persists += other.commit_line_persists;
        self.lazy_lines_deferred += other.lazy_lines_deferred;
        self.lazy_lines_forced += other.lazy_lines_forced;
        self.lazy_lines_overflowed += other.lazy_lines_overflowed;
        self.signature_hits += other.signature_hits;
        self.commit_stall_cycles += other.commit_stall_cycles;
        self.compute_cycles += other.compute_cycles;
        self.fences += other.fences;
        self.flushes += other.flushes;
        self.fence_stall_cycles += other.fence_stall_cycles;
    }
}

impl fmt::Display for MachineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "loads                  {:>12}", self.loads)?;
        writeln!(f, "stores                 {:>12}", self.stores)?;
        writeln!(f, "  storeT (honoured)    {:>12}", self.store_ts)?;
        writeln!(
            f,
            "tx begin/commit/abort  {:>6}/{:>6}/{:>6}",
            self.tx_begins, self.tx_commits, self.tx_aborts
        )?;
        writeln!(f, "suspended aborts       {:>12}", self.suspended_aborts)?;
        writeln!(f, "cross-core aborts      {:>12}", self.cross_core_aborts)?;
        writeln!(
            f,
            "cross-core repair skip {:>12}",
            self.cross_core_repair_aborts
        )?;
        writeln!(f, "log records created    {:>12}", self.log_records_created)?;
        writeln!(
            f,
            "log records discarded  {:>12}",
            self.log_records_discarded
        )?;
        writeln!(
            f,
            "commit line persists   {:>12}",
            self.commit_line_persists
        )?;
        writeln!(
            f,
            "lazy deferred/forced   {:>6}/{:>6}",
            self.lazy_lines_deferred, self.lazy_lines_forced
        )?;
        writeln!(
            f,
            "lazy overflowed        {:>12}",
            self.lazy_lines_overflowed
        )?;
        writeln!(f, "signature hits         {:>12}", self.signature_hits)?;
        writeln!(f, "commit stall cycles    {:>12}", self.commit_stall_cycles)?;
        writeln!(
            f,
            "fences/flushes         {:>6}/{:>6}",
            self.fences, self.flushes
        )?;
        write!(f, "fence stall cycles     {:>12}", self.fence_stall_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = MachineStats::new();
        assert_eq!(s.loads, 0);
        assert_eq!(s.tx_commits, 0);
    }

    #[test]
    fn display_nonempty() {
        assert!(format!("{}", MachineStats::new()).contains("loads"));
    }
}
