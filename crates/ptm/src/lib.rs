//! Software persistent-transaction baselines (the durabletx family).
//!
//! Each [`PtmFlavor`] is executed as an explicit store/flush/fence
//! instruction stream over the unmodified `pmem` cache hierarchy, WPQ
//! and device — no hardware logging features fire, so these models
//! answer the comparison the hardware matrix alone cannot: is the
//! hardware worth it versus good software?
//!
//! * **UndoLog** — classic software undo logging: every first write to
//!   a word logs its pre-image, `clwb`s the record line and fences
//!   before the in-place store; commit flushes the write set and seals
//!   the header (≥2 fences per transaction plus one per fresh word).
//! * **Trinity** — the same in-place write path, but the per-record
//!   fence is elided: `clwb` acceptance is synchronous (ADR puts the
//!   durability point at WPQ acceptance), so record/data ordering is
//!   already program order. 2 fences per transaction.
//! * **RedoLog** — writes buffer in a volatile overlay; commit logs the
//!   new values, seals a commit marker, applies in place and advances
//!   the header: the classic 4-fence log-then-apply protocol.
//! * **RomulusLog** — RedoLog plus a back-strip copy of every applied
//!   line (main/back replication write traffic). 4 fences.
//! * **Quadra** — a self-validating (CRC-tagged) commit record rides
//!   the same WPQ drain as the log body, collapsing commit to a single
//!   fence.
//!
//! ### Durable layout
//!
//! The software log lives in plain `PmSpace` lines in a reserved arena
//! at the top of the PM address range — there is nothing special about
//! these lines; crash, tear and poison semantics are exactly those of
//! any data line. Recovery therefore validates them with the same
//! CRC-tagged record rules the hardware log region uses
//! ([`slpmt_pmem::log_region::record_crc`] /
//! [`slpmt_pmem::log_region::marker_crc`]):
//!
//! ```text
//! arena+0    header line:  word0 = committed txn seq, word1 = marker_crc(seq)
//! arena+64   marker line:  word0 = txn seq, word1 = marker_crc(seq)
//! arena+128  Romulus back strip (rotating line slots)
//! arena+4096 record slots: 32 B each, two per line, never line-spanning
//!            word0 tag  = kind<<56 | txn seq
//!            word1 addr = target word address
//!            word2 data = payload word (pre-image for undo, new value for redo)
//!            word3 crc  = record_crc(slot, txn, addr, payload)
//! ```
//!
//! Records are written with four back-to-back stores, so no partial
//! record can reach the medium without an injected tear: the line
//! cannot be evicted between consecutive stores to it, and `clwb`
//! persists whole lines atomically. The per-transaction record area
//! head resets at `tx_begin`; stale slots are rejected by their
//! transaction tag.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use slpmt_core::{Machine, PtmFlavor, RecoveryReport, StoreKind};
use slpmt_pmem::log_region::{marker_crc, record_crc};
use slpmt_pmem::{PmAddr, LINE_BYTES, WORD_BYTES};
use std::collections::{BTreeMap, BTreeSet};

/// Bytes reserved at the top of the PM range for the software log
/// arena (header + marker + back strip + record slots).
pub const ARENA_BYTES: u64 = 4 << 20;

/// Byte offset of the record slots within the arena.
const RECORDS_OFF: u64 = 4096;

/// Byte offset of the commit-marker line within the arena.
const MARKER_OFF: u64 = 64;

/// Byte offset and extent of the Romulus back strip.
const BACK_OFF: u64 = 128;
const BACK_LINES: u64 = 32;

/// On-media record size: tag, address, payload, CRC — four words.
const RECORD_BYTES: u64 = 32;

/// Record-kind tags (top byte of the tag word).
const KIND_DATA: u64 = 1;
const KIND_COMMIT: u64 = 2;

/// Low 56 bits of the tag word carry the transaction sequence.
const TAG_SEQ_MASK: u64 = (1 << 56) - 1;

/// The open software transaction.
#[derive(Debug, Clone, Default)]
struct SoftTx {
    /// Global sequence number (shared numbering with the oracle).
    seq: u64,
    /// Record slots written so far (the per-transaction log head).
    records: u64,
    /// Undo family: word addresses already logged this transaction.
    logged: BTreeSet<u64>,
    /// Undo family: volatile pre-images in log order, for `tx_abort`.
    undo: Vec<(u64, u64)>,
    /// Undo family: data lines the transaction dirtied in place.
    data_lines: BTreeSet<u64>,
    /// Redo family: the volatile write-set overlay (word addr → value),
    /// applied in address order at commit.
    overlay: BTreeMap<u64, u64>,
}

/// Cumulative accounting of a software backend's log traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PtmTraffic {
    /// Log records written (data + commit records).
    pub log_records: u64,
    /// Media bytes written to the arena (line persists × 64).
    pub log_media_bytes: u64,
}

/// The software-PTM execution state layered over a [`Machine`]. The
/// owner routes every transactional operation through this state; the
/// machine itself never opens a hardware transaction.
#[derive(Debug, Clone)]
pub struct SoftState {
    flavor: PtmFlavor,
    arena: PmAddr,
    cur: Option<SoftTx>,
    /// Sequence the next `tx_begin` takes; monotone across crashes.
    next_seq: u64,
    /// Sequence of the most recently begun transaction.
    last_seq: u64,
    /// Romulus back-strip rotation cursor.
    back_slot: u64,
    /// Cumulative log-traffic accounting.
    pub traffic: PtmTraffic,
}

impl SoftState {
    /// Carves the log arena out of the top of the machine's PM range
    /// and seals an initial (seq 0) header so recovery always finds a
    /// valid-or-torn header pair.
    pub fn new(flavor: PtmFlavor, machine: &mut Machine) -> Self {
        let capacity = machine.config().pm.pm_capacity;
        assert!(
            capacity > ARENA_BYTES + RECORDS_OFF,
            "PM capacity {capacity} too small for the software log arena"
        );
        let arena = PmAddr::new(capacity - ARENA_BYTES);
        assert!(arena.is_line_aligned(), "arena base must be line-aligned");
        let state = SoftState {
            flavor,
            arena,
            cur: None,
            next_seq: 1,
            last_seq: 0,
            back_slot: 0,
            traffic: PtmTraffic::default(),
        };
        let mut line = [0u8; LINE_BYTES];
        line[..8].copy_from_slice(&0u64.to_le_bytes());
        line[8..16].copy_from_slice(&(marker_crc(0) as u64).to_le_bytes());
        machine.setup_write(arena, &line);
        machine.setup_write(arena.add(MARKER_OFF), &line);
        state
    }

    /// The flavor this state executes.
    pub fn flavor(&self) -> PtmFlavor {
        self.flavor
    }

    /// Sequence number of the most recently begun transaction (the
    /// oracle's per-op stamp).
    pub fn txn_seq(&self) -> u64 {
        self.last_seq
    }

    /// `true` while a software transaction is open.
    pub fn in_txn(&self) -> bool {
        self.cur.is_some()
    }

    fn records_base(&self) -> PmAddr {
        self.arena.add(RECORDS_OFF)
    }

    fn record_capacity(&self) -> u64 {
        (ARENA_BYTES - RECORDS_OFF) / RECORD_BYTES
    }

    // ------------------------------------------------------------------
    // Transactional API

    /// Opens a software transaction.
    pub fn tx_begin(&mut self, m: &mut Machine) {
        assert!(self.cur.is_none(), "software transactions do not nest");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.last_seq = seq;
        m.compute(m.config().tx_begin_cycles);
        m.stats_mut().tx_begins += 1;
        self.cur = Some(SoftTx {
            seq,
            ..SoftTx::default()
        });
    }

    /// Stores one word under the flavor's protocol.
    pub fn store(&mut self, m: &mut Machine, addr: PmAddr, value: u64) {
        assert!(
            self.cur.is_some(),
            "software stores run inside transactions"
        );
        if self.flavor.is_redo() {
            // Redo family: buffer in the volatile overlay; the store
            // itself costs only the write-set insert.
            m.compute(m.config().store_issue_cycles);
            self.cur
                .as_mut()
                .expect("open txn")
                .overlay
                .insert(addr.raw(), value);
            return;
        }
        // Undo family: log the pre-image on first write, then store in
        // place.
        let fresh = !self
            .cur
            .as_ref()
            .expect("open txn")
            .logged
            .contains(&addr.raw());
        if fresh {
            let pre = m.load_u64(addr);
            self.write_record(m, KIND_DATA, addr, pre);
            if self.flavor == PtmFlavor::UndoLog {
                m.sfence();
            }
            let t = self.cur.as_mut().expect("open txn");
            t.logged.insert(addr.raw());
            t.undo.push((addr.raw(), pre));
        }
        m.store_u64(addr, value, StoreKind::Store);
        self.cur
            .as_mut()
            .expect("open txn")
            .data_lines
            .insert(addr.line().raw());
    }

    /// Stores a word-aligned byte buffer word-by-word.
    pub fn store_bytes(&mut self, m: &mut Machine, addr: PmAddr, data: &[u8]) {
        assert!(
            data.len().is_multiple_of(WORD_BYTES),
            "software store_bytes length must be whole words"
        );
        for (i, chunk) in data.chunks_exact(WORD_BYTES).enumerate() {
            let mut w = [0u8; WORD_BYTES];
            w.copy_from_slice(chunk);
            self.store(m, addr.add((i * WORD_BYTES) as u64), u64::from_le_bytes(w));
        }
    }

    /// Loads one word: timed machine load, patched with the redo
    /// overlay for read-your-writes.
    pub fn load(&mut self, m: &mut Machine, addr: PmAddr) -> u64 {
        let v = m.load_u64(addr);
        match &self.cur {
            Some(t) => *t.overlay.get(&addr.raw()).unwrap_or(&v),
            None => v,
        }
    }

    /// Loads a word-aligned byte buffer, overlay-patched.
    pub fn load_bytes(&mut self, m: &mut Machine, addr: PmAddr, buf: &mut [u8]) {
        m.load_bytes(addr, buf);
        self.patch_overlay(addr, buf);
    }

    /// Untimed logical read of one word, overlay-patched.
    pub fn peek(&self, m: &Machine, addr: PmAddr) -> u64 {
        let v = m.peek_u64(addr);
        match &self.cur {
            Some(t) => *t.overlay.get(&addr.raw()).unwrap_or(&v),
            None => v,
        }
    }

    /// Untimed logical read of a byte buffer, overlay-patched.
    pub fn peek_bytes(&self, m: &Machine, addr: PmAddr, buf: &mut [u8]) {
        m.peek_bytes(addr, buf);
        self.patch_overlay(addr, buf);
    }

    fn patch_overlay(&self, addr: PmAddr, buf: &mut [u8]) {
        let t = match &self.cur {
            Some(t) if !t.overlay.is_empty() => t,
            _ => return,
        };
        let start = addr.raw();
        let end = start + buf.len() as u64;
        for (&wa, &v) in t
            .overlay
            .range(start.saturating_sub(WORD_BYTES as u64 - 1)..end)
        {
            // Words are aligned; a word overlaps iff it starts in
            // [start - 7, end). Clip to the buffer.
            let bytes = v.to_le_bytes();
            for (i, b) in bytes.iter().enumerate() {
                let pos = wa + i as u64;
                if pos >= start && pos < end {
                    buf[(pos - start) as usize] = *b;
                }
            }
        }
    }

    /// Commits the open transaction under the flavor's fence protocol.
    pub fn tx_commit(&mut self, m: &mut Machine) {
        let t = self.cur.take().expect("commit without open transaction");
        let read_only = if self.flavor.is_redo() {
            t.overlay.is_empty()
        } else {
            t.undo.is_empty() && t.data_lines.is_empty()
        };
        if read_only {
            // Read-only transactions skip the commit protocol: no log,
            // no header advance (the durable header only names write
            // transactions; excluded read ops change no oracle state).
            m.stats_mut().tx_commits += 1;
            return;
        }
        if self.flavor.is_redo() {
            self.commit_redo(m, t);
        } else {
            self.commit_undo(m, t);
        }
        m.stats_mut().tx_commits += 1;
    }

    /// Undo family (UndoLog / Trinity): records are already durable
    /// (each record's `clwb` acceptance precedes the in-place store it
    /// covers in program order); flush the write set, fence, seal the
    /// header, fence.
    fn commit_undo(&mut self, m: &mut Machine, t: SoftTx) {
        for &line in &t.data_lines {
            self.clwb_counted(m, PmAddr::new(line));
        }
        m.sfence();
        self.write_header(m, t.seq);
        m.sfence();
    }

    /// Redo family (RedoLog / RomulusLog / Quadra): log-then-apply.
    fn commit_redo(&mut self, m: &mut Machine, t: SoftTx) {
        let seq = t.seq;
        let writes: Vec<(u64, u64)> = t.overlay.iter().map(|(&a, &v)| (a, v)).collect();
        self.cur = Some(t); // write_record needs the open-txn log head
        for &(addr, value) in &writes {
            self.write_record(m, KIND_DATA, PmAddr::new(addr), value);
        }
        match self.flavor {
            PtmFlavor::Quadra => {
                // Self-validating commit record in the same drain as
                // the log body: one fence seals everything.
                self.write_record(m, KIND_COMMIT, self.arena, seq);
                m.sfence();
            }
            _ => {
                m.sfence(); // records durable
                self.write_marker(m, seq);
                m.sfence(); // marker durable: the commit point
            }
        }
        self.cur = None;
        // Apply in place, flush the touched lines.
        let mut lines: BTreeSet<u64> = BTreeSet::new();
        for &(addr, value) in &writes {
            m.store_u64(PmAddr::new(addr), value, StoreKind::Store);
            lines.insert(PmAddr::new(addr).line().raw());
        }
        for &line in &lines {
            self.clwb_counted(m, PmAddr::new(line));
            if self.flavor == PtmFlavor::RomulusLog {
                self.copy_to_back_strip(m, PmAddr::new(line));
            }
        }
        if self.flavor != PtmFlavor::Quadra {
            m.sfence(); // apply durable
        }
        self.write_header(m, seq);
        if self.flavor != PtmFlavor::Quadra {
            m.sfence(); // header durable: log reusable
        }
    }

    /// Aborts the open transaction: redo drops the overlay; undo rolls
    /// the in-place writes back from the volatile pre-images.
    pub fn tx_abort(&mut self, m: &mut Machine) {
        let t = self.cur.take().expect("abort without open transaction");
        if !self.flavor.is_redo() {
            for &(addr, pre) in t.undo.iter().rev() {
                m.store_u64(PmAddr::new(addr), pre, StoreKind::Store);
            }
            for &line in &t.data_lines {
                self.clwb_counted(m, PmAddr::new(line));
            }
            m.sfence();
        }
        m.stats_mut().tx_aborts += 1;
    }

    /// Discards the volatile half of the state at a simulated power
    /// failure (the open transaction and its overlay); durable
    /// sequencing survives.
    pub fn on_crash(&mut self) {
        self.cur = None;
    }

    // ------------------------------------------------------------------
    // Durable-layout writers

    /// Appends one 32-byte record with four back-to-back stores (the
    /// line cannot evict mid-record) and a counted `clwb`.
    fn write_record(&mut self, m: &mut Machine, kind: u64, target: PmAddr, payload: u64) {
        let (slot, txn) = {
            let t = self.cur.as_mut().expect("record outside transaction");
            let slot = t.records;
            t.records += 1;
            (slot, t.seq)
        };
        assert!(
            slot < self.record_capacity(),
            "software log arena exhausted ({} records)",
            slot
        );
        let rec = self.records_base().add(slot * RECORD_BYTES);
        let tag = (kind << 56) | (txn & TAG_SEQ_MASK);
        let crc = record_crc(slot, txn, target, &payload.to_le_bytes()) as u64;
        m.store_u64(rec, tag, StoreKind::Store);
        m.store_u64(rec.add(8), target.raw(), StoreKind::Store);
        m.store_u64(rec.add(16), payload, StoreKind::Store);
        m.store_u64(rec.add(24), crc, StoreKind::Store);
        m.stats_mut().log_records_created += 1;
        self.traffic.log_records += 1;
        self.clwb_counted(m, rec);
    }

    /// Seals the commit-marker line (redo non-Quadra commit point).
    fn write_marker(&mut self, m: &mut Machine, seq: u64) {
        let marker = self.arena.add(MARKER_OFF);
        m.store_u64(marker, seq, StoreKind::Store);
        m.store_u64(marker.add(8), marker_crc(seq) as u64, StoreKind::Store);
        self.clwb_counted(m, marker);
    }

    /// Advances the durable header to `seq` (the log-truncation point:
    /// records and markers of `seq` and older become stale).
    fn write_header(&mut self, m: &mut Machine, seq: u64) {
        m.store_u64(self.arena, seq, StoreKind::Store);
        m.store_u64(self.arena.add(8), marker_crc(seq) as u64, StoreKind::Store);
        self.clwb_counted(m, self.arena);
    }

    /// `clwb` that attributes arena write-backs to log traffic.
    fn clwb_counted(&mut self, m: &mut Machine, addr: PmAddr) {
        if m.clwb(addr) && addr.raw() >= self.arena.raw() {
            self.traffic.log_media_bytes += LINE_BYTES as u64;
        }
    }

    /// Romulus main/back replication: copy the applied line's content
    /// into the rotating back strip (write traffic of the second
    /// strip; contents are never read back — recovery uses the log).
    fn copy_to_back_strip(&mut self, m: &mut Machine, line: PmAddr) {
        let slot = self
            .arena
            .add(BACK_OFF + (self.back_slot % BACK_LINES) * LINE_BYTES as u64);
        self.back_slot += 1;
        let mut data = [0u8; LINE_BYTES];
        m.peek_bytes(line, &mut data);
        for (w, chunk) in data.chunks_exact(WORD_BYTES).enumerate() {
            let mut word = [0u8; WORD_BYTES];
            word.copy_from_slice(chunk);
            m.store_u64(
                slot.add((w * WORD_BYTES) as u64),
                u64::from_le_bytes(word),
                StoreKind::Store,
            );
        }
        self.clwb_counted(m, slot);
    }

    // ------------------------------------------------------------------
    // Durable-state readers (recovery + oracle)

    /// Resolves the committed sequence a header-format line encodes,
    /// tolerating a word-granularity tear of its last persist. Returns
    /// `(seq, torn)`; `None` when the pair matches neither the stored
    /// sequence nor its predecessor (possible only under media faults
    /// beyond a single tear).
    fn resolve_pair(w0: u64, w1: u64) -> Option<(u64, bool)> {
        if w1 == marker_crc(w0) as u64 {
            return Some((w0, false));
        }
        if w0 > 0 && w1 == marker_crc(w0 - 1) as u64 {
            return Some((w0 - 1, true));
        }
        None
    }

    /// The committed-transaction watermark recoverable from the
    /// durable image alone — the software analogue of the hardware
    /// log's `max_committed_seq`, used by the streaming oracle as its
    /// crash marker. Pure read; call after `crash()`, before
    /// `recover()`.
    pub fn durable_commit_seq(&self, m: &Machine) -> u64 {
        let img = m.device().image();
        let header =
            match Self::resolve_pair(img.read_u64(self.arena), img.read_u64(self.arena.add(8))) {
                Some((seq, _)) => seq,
                None => return 0,
            };
        let target = header + 1;
        match self.flavor {
            PtmFlavor::UndoLog | PtmFlavor::Trinity => header,
            PtmFlavor::RedoLog | PtmFlavor::RomulusLog => {
                let marker = self.arena.add(MARKER_OFF);
                match Self::resolve_pair(img.read_u64(marker), img.read_u64(marker.add(8))) {
                    Some((seq, false)) if seq == target => target,
                    _ => header,
                }
            }
            PtmFlavor::Quadra => {
                let (records, _, _) = self.scan_records(m, target);
                if records
                    .iter()
                    .any(|&(k, _, p)| k == KIND_COMMIT && p == target)
                {
                    target
                } else {
                    header
                }
            }
        }
    }

    /// Walks the record slots of transaction `target`: returns the
    /// valid records in slot order, the count of torn records at the
    /// frontier, and any poisoned log line that stopped the scan.
    fn scan_records(&self, m: &Machine, target: u64) -> (Vec<(u64, u64, u64)>, usize, Option<u64>) {
        let img = m.device().image();
        let mut out = Vec::new();
        let mut torn = 0usize;
        for slot in 0..self.record_capacity() {
            let rec = self.records_base().add(slot * RECORD_BYTES);
            if m.device().line_poisoned(rec) {
                return (out, torn, Some(rec.line().raw()));
            }
            let tag = img.read_u64(rec);
            let kind = tag >> 56;
            let txn = tag & TAG_SEQ_MASK;
            if txn != (target & TAG_SEQ_MASK) || (kind != KIND_DATA && kind != KIND_COMMIT) {
                break; // stale slot: the transaction's log ends here
            }
            let addr = img.read_u64(rec.add(8));
            let payload = img.read_u64(rec.add(16));
            let crc = img.read_u64(rec.add(24));
            if crc != record_crc(slot, target, PmAddr::new(addr), &payload.to_le_bytes()) as u64 {
                // A record prefix landed without its CRC: the persist
                // of this line tore at the crash boundary. Sound to
                // truncate — everything after it is younger.
                torn += 1;
                break;
            }
            out.push((kind, addr, payload));
        }
        (out, torn, None)
    }

    /// Post-crash recovery over the durable image: validates the
    /// CRC-tagged software log exactly as §8/§10 recovery checking
    /// validates the hardware log region, rolls back (undo family) or
    /// replays (redo family) the frontier transaction, and degrades —
    /// never panics — on poisoned lines, reporting them in the same
    /// [`RecoveryReport`] the hardware path fills.
    pub fn recover(&mut self, m: &mut Machine) -> RecoveryReport {
        assert!(self.cur.is_none(), "recovery runs outside any transaction");
        let mut report = RecoveryReport::default();
        let mut lost: BTreeSet<u64> = BTreeSet::new();
        let mut poison_cov: BTreeMap<u64, u8> = m
            .device()
            .poisoned_line_addrs()
            .into_iter()
            .map(|la| (la, 0u8))
            .collect();

        let img = m.device().image();
        let header_poisoned = m.device().line_poisoned(self.arena);
        let resolved = if header_poisoned {
            None
        } else {
            Self::resolve_pair(img.read_u64(self.arena), img.read_u64(self.arena.add(8)))
        };
        let mut committed = match resolved {
            Some((seq, torn)) => {
                if torn {
                    report.torn_markers += 1;
                }
                seq
            }
            None => {
                // Unreadable header: nothing can be trusted; scrub and
                // report the degradation below.
                lost.insert(self.arena.line().raw());
                self.finish(m, &mut report, &mut poison_cov, lost, 0);
                return report;
            }
        };
        let target = committed + 1;

        let (records, torn, stopped) = self.scan_records(m, target);
        report.torn_records += torn;
        if let Some(la) = stopped {
            lost.insert(la);
        }

        match self.flavor {
            PtmFlavor::UndoLog | PtmFlavor::Trinity => {
                // The frontier transaction is uncommitted by
                // definition (the header names its predecessor): roll
                // its pre-images back, newest first.
                let mut rolled_lines: BTreeSet<u64> = BTreeSet::new();
                for &(kind, addr, pre) in records.iter().rev() {
                    if kind != KIND_DATA {
                        continue;
                    }
                    let a = PmAddr::new(addr);
                    self.repair_word(m, a, pre, &mut poison_cov, &mut report);
                    report.undo_applied += 1;
                    rolled_lines.insert(a.line().raw());
                }
                if report.undo_applied > 0 {
                    report.rolled_back = vec![target];
                }
                report.rolled_back_lines = rolled_lines.into_iter().collect();
            }
            PtmFlavor::RedoLog | PtmFlavor::RomulusLog | PtmFlavor::Quadra => {
                let marker_ok = if self.flavor == PtmFlavor::Quadra {
                    records
                        .iter()
                        .any(|&(k, _, p)| k == KIND_COMMIT && p == target)
                } else {
                    let marker = self.arena.add(MARKER_OFF);
                    if m.device().line_poisoned(marker) {
                        lost.insert(marker.line().raw());
                        false
                    } else {
                        match Self::resolve_pair(img.read_u64(marker), img.read_u64(marker.add(8)))
                        {
                            Some((seq, false)) if seq == target => true,
                            Some((seq, true)) if seq == target => {
                                report.torn_markers += 1;
                                false
                            }
                            Some(_) => false, // stale marker: uncommitted
                            None => {
                                report.torn_markers += 1;
                                false
                            }
                        }
                    }
                };
                if marker_ok {
                    // The commit point is durable but the in-place
                    // apply may be partial: replay the new values
                    // forward and finalise the header.
                    for &(kind, addr, value) in &records {
                        if kind != KIND_DATA {
                            continue;
                        }
                        self.repair_word(m, PmAddr::new(addr), value, &mut poison_cov, &mut report);
                        report.redo_applied += 1;
                    }
                    report.replayed = vec![target];
                    committed = target;
                }
                // Uncommitted: the apply phase never ran (it is fenced
                // behind the commit point), so the image needs nothing.
            }
        }

        self.finish(m, &mut report, &mut poison_cov, lost, committed);
        report
    }

    /// Recovery tail shared by the degraded and normal paths: sweep
    /// poisoned lines (salvaged when replay fully re-materialised
    /// them, scrubbed to zeros and reported lost otherwise), reseal
    /// the header, and resynchronise volatile sequencing.
    fn finish(
        &mut self,
        m: &mut Machine,
        report: &mut RecoveryReport,
        poison_cov: &mut BTreeMap<u64, u8>,
        mut lost: BTreeSet<u64>,
        committed: u64,
    ) {
        for (&la, &mask) in poison_cov.iter() {
            if mask == u8::MAX {
                continue; // fully re-materialised by replay
            }
            lost.insert(la);
            let addr = PmAddr::new(la);
            if m.device().line_poisoned(addr) {
                m.persist_line_direct(addr, &[0u8; LINE_BYTES]);
                report.lines_persisted += 1;
            }
        }
        report.salvaged_lines = poison_cov
            .iter()
            .filter(|(la, &mask)| mask == u8::MAX && !lost.contains(la))
            .map(|(&la, _)| la)
            .collect();
        report.lost_lines = lost.into_iter().collect();
        // Reseal the header: repairs a torn/scrubbed header line and
        // finalises a replayed redo commit in one durable write.
        let mut line = [0u8; LINE_BYTES];
        line[..8].copy_from_slice(&committed.to_le_bytes());
        line[8..16].copy_from_slice(&(marker_crc(committed) as u64).to_le_bytes());
        m.persist_line_direct(self.arena, &line);
        report.lines_persisted += 1;
        self.next_seq = self.next_seq.max(committed + 1);
        self.cur = None;
    }

    /// Installs one word into the durable image through the device's
    /// persist path (read-modify-write of the covered line). A
    /// poisoned base line reads as zeros — the loss is detectable, not
    /// silent — and the repaired word accumulates in `poison_cov`.
    fn repair_word(
        &self,
        m: &mut Machine,
        addr: PmAddr,
        value: u64,
        poison_cov: &mut BTreeMap<u64, u8>,
        report: &mut RecoveryReport,
    ) {
        let la = addr.line();
        let mut data = if m.device().line_poisoned(la) {
            [0u8; LINE_BYTES]
        } else {
            m.device().image().read_line(la)
        };
        let off = addr.offset_in_line();
        data[off..off + WORD_BYTES].copy_from_slice(&value.to_le_bytes());
        if let Some(mask) = poison_cov.get_mut(&la.raw()) {
            *mask |= 1 << addr.word_in_line();
        }
        m.persist_line_direct(la, &data);
        report.lines_persisted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::{MachineConfig, PtmFlavor};

    const A: PmAddr = PmAddr::new(0x10000);

    fn machine(flavor: PtmFlavor) -> (Machine, SoftState) {
        let mut m = Machine::new(MachineConfig::for_kind(flavor));
        let s = SoftState::new(flavor, &mut m);
        (m, s)
    }

    fn commit_one(flavor: PtmFlavor) -> (Machine, SoftState) {
        let (mut m, mut s) = machine(flavor);
        s.tx_begin(&mut m);
        s.store(&mut m, A, 42);
        s.store(&mut m, A.add(8), 43);
        s.tx_commit(&mut m);
        (m, s)
    }

    #[test]
    fn commit_is_durable_for_every_flavor() {
        for flavor in PtmFlavor::ALL {
            let (m, s) = commit_one(flavor);
            assert_eq!(m.device().image().read_u64(A), 42, "{flavor}");
            assert_eq!(m.device().image().read_u64(A.add(8)), 43, "{flavor}");
            assert_eq!(s.durable_commit_seq(&m), 1, "{flavor}");
        }
    }

    #[test]
    fn golden_fence_counts_per_flavor() {
        for flavor in PtmFlavor::ALL {
            let (m, _) = commit_one(flavor);
            let expect = match flavor {
                PtmFlavor::Quadra => 1,
                PtmFlavor::Trinity => 2,
                PtmFlavor::RedoLog | PtmFlavor::RomulusLog => 4,
                // UndoLog: one per fresh word plus the two commit
                // fences.
                PtmFlavor::UndoLog => 2 + 2,
            };
            assert_eq!(m.stats().fences, expect, "{flavor}");
            assert!(m.stats().flushes > 0, "{flavor}");
        }
    }

    #[test]
    fn crash_mid_txn_rolls_back_or_discards() {
        for flavor in PtmFlavor::ALL {
            let (mut m, mut s) = machine(flavor);
            m.setup_write(A, &5u64.to_le_bytes());
            s.tx_begin(&mut m);
            s.store(&mut m, A, 99);
            // Undo family: force the in-place update durable so the
            // roll-back path has something to repair.
            if !flavor.is_redo() {
                m.clwb(A);
                assert_eq!(m.device().image().read_u64(A), 99, "{flavor}");
            }
            m.crash();
            s.on_crash();
            assert_eq!(s.durable_commit_seq(&m), 0, "{flavor}");
            let report = s.recover(&mut m);
            assert_eq!(m.device().image().read_u64(A), 5, "{flavor}");
            assert!(report.lost_lines.is_empty(), "{flavor}");
            if !flavor.is_redo() {
                assert!(report.undo_applied > 0, "{flavor}");
            }
        }
    }

    #[test]
    fn committed_txn_survives_crash_before_next() {
        for flavor in PtmFlavor::ALL {
            let (mut m, mut s) = commit_one(flavor);
            m.crash();
            s.on_crash();
            assert_eq!(s.durable_commit_seq(&m), 1, "{flavor}");
            let report = s.recover(&mut m);
            assert_eq!(m.device().image().read_u64(A), 42, "{flavor}");
            assert!(report.rolled_back.is_empty(), "{flavor}");
        }
    }

    #[test]
    fn read_your_writes_through_the_overlay() {
        for flavor in [PtmFlavor::RedoLog, PtmFlavor::Quadra] {
            let (mut m, mut s) = machine(flavor);
            m.setup_write(A, &5u64.to_le_bytes());
            s.tx_begin(&mut m);
            s.store(&mut m, A, 99);
            assert_eq!(s.load(&mut m, A), 99, "{flavor}");
            assert_eq!(s.peek(&m, A), 99, "{flavor}");
            let mut buf = [0u8; 16];
            s.peek_bytes(&m, A, &mut buf);
            assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), 99);
            // The image is untouched until commit.
            assert_eq!(m.device().image().read_u64(A), 5, "{flavor}");
            s.tx_commit(&mut m);
            assert_eq!(m.device().image().read_u64(A), 99, "{flavor}");
        }
    }

    #[test]
    fn abort_restores_pre_images() {
        for flavor in PtmFlavor::ALL {
            let (mut m, mut s) = machine(flavor);
            m.setup_write(A, &5u64.to_le_bytes());
            s.tx_begin(&mut m);
            s.store(&mut m, A, 99);
            s.tx_abort(&mut m);
            assert_eq!(s.peek(&m, A), 5, "{flavor}");
            // A later transaction still commits cleanly.
            s.tx_begin(&mut m);
            s.store(&mut m, A, 7);
            s.tx_commit(&mut m);
            assert_eq!(m.device().image().read_u64(A), 7, "{flavor}");
        }
    }

    #[test]
    fn read_only_txns_skip_the_commit_protocol() {
        for flavor in PtmFlavor::ALL {
            let (mut m, mut s) = machine(flavor);
            m.setup_write(A, &5u64.to_le_bytes());
            s.tx_begin(&mut m);
            assert_eq!(s.load(&mut m, A), 5);
            let fences = m.stats().fences;
            s.tx_commit(&mut m);
            assert_eq!(m.stats().fences, fences, "{flavor}: no commit fences");
        }
    }

    #[test]
    fn romulus_writes_back_strip_traffic() {
        let (m_redo, _) = commit_one(PtmFlavor::RedoLog);
        let (m_rom, s_rom) = commit_one(PtmFlavor::RomulusLog);
        assert!(
            m_rom.device().traffic().data_bytes > m_redo.device().traffic().data_bytes,
            "Romulus replication must amplify write traffic"
        );
        assert!(s_rom.traffic.log_media_bytes > 0);
    }

    #[test]
    fn sequencing_is_monotone_across_crashes() {
        let (mut m, mut s) = commit_one(PtmFlavor::Trinity);
        m.crash();
        s.on_crash();
        s.recover(&mut m);
        s.tx_begin(&mut m);
        assert_eq!(s.txn_seq(), 2, "sequence numbering survives the crash");
        s.store(&mut m, A, 1);
        s.tx_commit(&mut m);
        assert_eq!(s.durable_commit_seq(&m), 2);
    }
}
