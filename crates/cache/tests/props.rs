//! Randomized tests for the cache substrate (seeded loops replace
//! `proptest`, which is unavailable offline).

use slpmt_cache::{
    l1_logbits_to_l2, l2_logbits_to_l1, speculative_fill_words, CacheGeometry, Entry, LineMeta,
    SetAssocCache,
};
use slpmt_pmem::PmAddr;
use slpmt_prng::SimRng;
use std::collections::BTreeMap;

/// Replication inverts conjunction exactly on group-complete
/// bitmaps, and a round trip through L2 only ever *loses* bits.
#[test]
fn logbit_transforms() {
    // u8 is small enough to test exhaustively.
    for l1 in 0u8..=255 {
        let l2 = l1_logbits_to_l2(l1);
        let back = l2_logbits_to_l1(l2);
        assert_eq!(back & l1, back, "round trip never invents bits");
        assert_eq!(l1_logbits_to_l2(back), l2, "stable after one trip");
        // Speculative fill makes every partially-logged group complete.
        let mut filled = l1;
        for w in speculative_fill_words(l1) {
            assert_eq!(filled & (1 << w), 0, "fills only clean words");
            filled |= 1 << w;
        }
        for g in 0..2 {
            let bits = (l1 >> (g * 4)) & 0xF;
            if bits != 0 {
                assert!(l1_logbits_to_l2(filled) & (1 << g) != 0);
            }
        }
    }
}

/// The set-associative cache behaves like a bounded map: lookups
/// agree with a model restricted to resident lines, occupancy per
/// set never exceeds the ways, and every inserted line is either
/// resident or was explicitly evicted.
#[test]
fn cache_is_a_bounded_map() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0xCACE ^ case);
        let geo = CacheGeometry {
            capacity: 1024,
            ways: 2,
            hit_cycles: 1,
        };
        let mut cache = SetAssocCache::new(geo);
        let mut resident: BTreeMap<u64, u8> = BTreeMap::new();
        for i in 0..rng.gen_usize(1..200) {
            let addr = PmAddr::new(rng.gen_range(0..64) * 64);
            let tag = i as u8;
            if cache.lookup(addr).is_some() {
                let e = cache.peek_mut(addr).unwrap();
                e.data[0] = tag;
                resident.insert(addr.raw(), tag);
            } else {
                let mut data = [0u8; 64];
                data[0] = tag;
                if let Some(victim) = cache.insert(Entry::new(addr, data, LineMeta::clean())) {
                    let removed = resident.remove(&victim.addr.raw());
                    assert_eq!(
                        removed,
                        Some(victim.data[0]),
                        "case {case}: evicted data intact"
                    );
                }
                resident.insert(addr.raw(), tag);
            }
            assert!(cache.len() <= geo.lines(), "case {case}");
        }
        for (&a, &tag) in &resident {
            let e = cache.peek(PmAddr::new(a)).expect("model says resident");
            assert_eq!(e.data[0], tag, "case {case}");
        }
        assert_eq!(cache.len(), resident.len(), "case {case}");
    }
}
