//! Hit/miss/eviction counters for one cache level.

use std::fmt;

/// Access counters maintained by [`SetAssocCache`](crate::SetAssocCache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines displaced to make room for an insert.
    pub evictions: u64,
    /// Lines explicitly invalidated (e.g. transaction abort).
    pub invalidations: u64,
    /// Lines migrated out to another core's private cache
    /// (multi-core cache-to-cache transfers).
    pub migrations: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}%), {} evictions, {} invalidations, {} migrations",
            self.hits,
            self.misses,
            self.hit_ratio() * 100.0,
            self.evictions,
            self.invalidations,
            self.migrations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", CacheStats::default()).is_empty());
    }
}
