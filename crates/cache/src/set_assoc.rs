//! Generic set-associative cache container with LRU replacement.
//!
//! All three levels of the simulated hierarchy instantiate this
//! container; the hierarchy itself (exclusive placement, eviction
//! cascades, metadata transforms) is orchestrated by `slpmt-core`.

use crate::config::CacheGeometry;
use crate::meta::LineMeta;
use crate::stats::CacheStats;
use slpmt_pmem::addr::{PmAddr, LINE_BYTES};

/// One cached line: address tag, data, and SLPMT metadata.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Line-aligned address of the cached data.
    pub addr: PmAddr,
    /// Current (possibly newer-than-persistent) line contents.
    pub data: [u8; LINE_BYTES],
    /// SLPMT per-line metadata bits.
    pub meta: LineMeta,
    lru: u64,
}

impl Entry {
    /// Creates an entry for `addr` with the given data and metadata.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned.
    pub fn new(addr: PmAddr, data: [u8; LINE_BYTES], meta: LineMeta) -> Self {
        assert!(addr.is_line_aligned(), "cache entries are whole lines");
        Entry {
            addr,
            data,
            meta,
            lru: 0,
        }
    }
}

/// A set-associative, LRU-replacement cache of 64-byte lines.
///
/// ```
/// use slpmt_cache::{CacheGeometry, SetAssocCache, Entry, LineMeta};
/// use slpmt_pmem::PmAddr;
/// let geo = CacheGeometry { capacity: 256, ways: 2, hit_cycles: 4 };
/// let mut c = SetAssocCache::new(geo);
/// let e = Entry::new(PmAddr::new(0), [0; 64], LineMeta::clean());
/// assert!(c.insert(e).is_none());
/// assert!(c.lookup(PmAddr::new(0)).is_some());
/// assert!(c.lookup(PmAddr::new(64)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: Vec<Vec<Entry>>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = vec![Vec::with_capacity(geometry.ways); geometry.sets()];
        SetAssocCache {
            geometry,
            sets,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Access counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_index(&self, line: PmAddr) -> usize {
        ((line.raw() / LINE_BYTES as u64) % self.sets.len() as u64) as usize
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `addr`'s line, counting a hit or miss and refreshing
    /// LRU state on a hit.
    pub fn lookup(&mut self, addr: PmAddr) -> Option<&mut Entry> {
        let line = addr.line();
        let tick = self.bump();
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        match set.iter_mut().find(|e| e.addr == line) {
            Some(e) => {
                e.lru = tick;
                self.stats.hits += 1;
                Some(e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inspects `addr`'s line without touching LRU state or counters.
    pub fn peek(&self, addr: PmAddr) -> Option<&Entry> {
        let line = addr.line();
        self.sets[self.set_index(line)]
            .iter()
            .find(|e| e.addr == line)
    }

    /// Like [`peek`](Self::peek) but mutable; still statistics-neutral.
    /// Used by commit/flush scans that are not program accesses.
    pub fn peek_mut(&mut self, addr: PmAddr) -> Option<&mut Entry> {
        let line = addr.line();
        let idx = self.set_index(line);
        self.sets[idx].iter_mut().find(|e| e.addr == line)
    }

    /// `true` if the line containing `addr` is present.
    pub fn contains(&self, addr: PmAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Inserts `entry`, evicting and returning the set's LRU victim if
    /// the set was full.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present — the hierarchy is
    /// exclusive, duplicates indicate a policy bug upstream.
    pub fn insert(&mut self, mut entry: Entry) -> Option<Entry> {
        let tick = self.bump();
        let idx = self.set_index(entry.addr);
        let set = &mut self.sets[idx];
        assert!(
            !set.iter().any(|e| e.addr == entry.addr),
            "duplicate insert of line {}",
            entry.addr
        );
        entry.lru = tick;
        let victim = if set.len() == self.geometry.ways {
            let (pos, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("full set has entries");
            self.stats.evictions += 1;
            Some(set.swap_remove(pos))
        } else {
            None
        };
        self.sets[idx].push(entry);
        victim
    }

    /// Removes and returns the line containing `addr` (statistics
    /// neutral; used to migrate lines between levels).
    pub fn remove(&mut self, addr: PmAddr) -> Option<Entry> {
        let line = addr.line();
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|e| e.addr == line)?;
        Some(set.swap_remove(pos))
    }

    /// Removes and returns the line containing `addr` for a
    /// cache-to-cache transfer into *another core's* private cache,
    /// counting the migration. The entry's metadata travels with it —
    /// a migrated line keeps its lazy/transaction tags so the
    /// receiving core's coherence checks see them.
    pub fn migrate_out(&mut self, addr: PmAddr) -> Option<Entry> {
        let e = self.remove(addr);
        if e.is_some() {
            self.stats.migrations += 1;
        }
        e
    }

    /// Invalidates the line containing `addr`, counting the event.
    /// Returns the dropped entry, if any.
    pub fn invalidate(&mut self, addr: PmAddr) -> Option<Entry> {
        let e = self.remove(addr);
        if e.is_some() {
            self.stats.invalidations += 1;
        }
        e
    }

    /// Iterates all resident entries (set order, then way order).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.sets.iter().flatten()
    }

    /// Mutably iterates all resident entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Entry> {
        self.sets.iter_mut().flatten()
    }

    /// Drops every entry (e.g. simulated power loss).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// `true` when no line is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(capacity: usize, ways: usize) -> CacheGeometry {
        CacheGeometry {
            capacity,
            ways,
            hit_cycles: 1,
        }
    }

    fn entry(line: u64) -> Entry {
        Entry::new(PmAddr::new(line * 64), [line as u8; 64], LineMeta::clean())
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = SetAssocCache::new(geo(256, 2));
        c.insert(entry(0));
        assert!(c.lookup(PmAddr::new(0)).is_some());
        assert!(c.lookup(PmAddr::new(8)).is_some(), "same line, any offset");
        assert!(c.lookup(PmAddr::new(64)).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        // 2 sets × 2 ways; lines 0,2,4 map to set 0.
        let mut c = SetAssocCache::new(geo(256, 2));
        c.insert(entry(0));
        c.insert(entry(2));
        // Touch line 0 so line 2 becomes LRU.
        c.lookup(PmAddr::new(0));
        let victim = c.insert(entry(4)).expect("set full → eviction");
        assert_eq!(victim.addr, PmAddr::new(2 * 64));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn insert_without_conflict_returns_none() {
        let mut c = SetAssocCache::new(geo(256, 2));
        assert!(c.insert(entry(0)).is_none());
        assert!(c.insert(entry(1)).is_none(), "different set");
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate insert")]
    fn duplicate_insert_panics() {
        let mut c = SetAssocCache::new(geo(256, 2));
        c.insert(entry(0));
        c.insert(entry(0));
    }

    #[test]
    fn remove_and_invalidate() {
        let mut c = SetAssocCache::new(geo(256, 2));
        c.insert(entry(0));
        c.insert(entry(1));
        assert!(c.remove(PmAddr::new(0)).is_some());
        assert!(c.remove(PmAddr::new(0)).is_none());
        assert!(c.invalidate(PmAddr::new(64)).is_some());
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_is_stat_neutral() {
        let mut c = SetAssocCache::new(geo(256, 2));
        c.insert(entry(0));
        assert!(c.peek(PmAddr::new(0)).is_some());
        assert!(c.peek_mut(PmAddr::new(64)).is_none());
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut c = SetAssocCache::new(geo(256, 2));
        c.insert(entry(0));
        c.insert(entry(2));
        // Peek at line 0 (no LRU refresh) → line 0 remains LRU.
        c.peek(PmAddr::new(0));
        let victim = c.insert(entry(4)).unwrap();
        assert_eq!(victim.addr, PmAddr::new(0));
    }

    #[test]
    fn iteration_and_clear() {
        let mut c = SetAssocCache::new(geo(256, 2));
        for i in 0..4 {
            c.insert(entry(i));
        }
        assert_eq!(c.iter().count(), 4);
        for e in c.iter_mut() {
            e.meta.persist = true;
        }
        assert!(c.iter().all(|e| e.meta.persist));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "whole lines")]
    fn unaligned_entry_rejected() {
        let _ = Entry::new(PmAddr::new(8), [0; 64], LineMeta::clean());
    }
}
