//! Cache geometry and latency configuration (Table III).

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles.
    pub hit_cycles: u64,
}

impl CacheGeometry {
    /// Number of sets (`capacity / (ways * 64)`).
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole sets.
    pub fn sets(&self) -> usize {
        let line = slpmt_pmem::LINE_BYTES;
        assert!(
            self.capacity.is_multiple_of(self.ways * line),
            "capacity must be a multiple of ways × line size"
        );
        self.capacity / (self.ways * line)
    }

    /// Total number of lines the level can hold.
    pub fn lines(&self) -> usize {
        self.capacity / slpmt_pmem::LINE_BYTES
    }
}

/// The three-level hierarchy of Table III.
///
/// ```
/// use slpmt_cache::CacheConfig;
/// let c = CacheConfig::default();
/// assert_eq!(c.l1.sets(), 64);   // 32 KB, 8-way
/// assert_eq!(c.l2.sets(), 1024); // 256 KB, 4-way
/// assert_eq!(c.l3.sets(), 2048); // 2 MB, 16-way
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// L1 data cache: 8-way 32 KB, 4 cycles.
    pub l1: CacheGeometry,
    /// L2 cache: 4-way 256 KB, 12 cycles.
    pub l2: CacheGeometry,
    /// L3 cache: 16-way 2 MB, 40 cycles.
    pub l3: CacheGeometry,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1: CacheGeometry {
                capacity: 32 << 10,
                ways: 8,
                hit_cycles: 4,
            },
            l2: CacheGeometry {
                capacity: 256 << 10,
                ways: 4,
                hit_cycles: 12,
            },
            l3: CacheGeometry {
                capacity: 2 << 20,
                ways: 16,
                hit_cycles: 40,
            },
        }
    }
}

impl CacheConfig {
    /// A deliberately tiny hierarchy for tests that need to exercise
    /// evictions and overflow paths quickly.
    pub fn tiny() -> Self {
        CacheConfig {
            l1: CacheGeometry {
                capacity: 512,
                ways: 2,
                hit_cycles: 4,
            },
            l2: CacheGeometry {
                capacity: 2048,
                ways: 2,
                hit_cycles: 12,
            },
            l3: CacheGeometry {
                capacity: 8192,
                ways: 4,
                hit_cycles: 40,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let c = CacheConfig::default();
        assert_eq!(c.l1.capacity, 32 * 1024);
        assert_eq!(c.l1.ways, 8);
        assert_eq!(c.l1.hit_cycles, 4);
        assert_eq!(c.l2.capacity, 256 * 1024);
        assert_eq!(c.l2.ways, 4);
        assert_eq!(c.l2.hit_cycles, 12);
        assert_eq!(c.l3.capacity, 2 * 1024 * 1024);
        assert_eq!(c.l3.ways, 16);
        assert_eq!(c.l3.hit_cycles, 40);
    }

    #[test]
    fn line_counts() {
        let c = CacheConfig::default();
        assert_eq!(c.l1.lines(), 512);
        assert_eq!(c.l2.lines(), 4096);
        assert_eq!(c.l3.lines(), 32768);
    }

    #[test]
    fn tiny_is_valid() {
        let c = CacheConfig::tiny();
        assert_eq!(c.l1.sets(), 4);
        assert_eq!(c.l2.sets(), 16);
        assert_eq!(c.l3.sets(), 32);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn ragged_geometry_rejected() {
        let g = CacheGeometry {
            capacity: 1000,
            ways: 3,
            hit_cycles: 1,
        };
        let _ = g.sets();
    }
}
