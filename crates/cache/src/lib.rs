//! Cache hierarchy with SLPMT metadata for the simulator.
//!
//! The paper augments L1 and L2 cache lines with a *persist bit*, *log
//! bits* (one per 8-byte word in L1, one per 32-byte group in L2,
//! Figure 5) and a 2-bit per-line *transaction ID* for lazy persistency
//! (§III-C2). This crate provides:
//!
//! * [`meta`] — the per-line metadata and the log-bit width transforms
//!   applied on L1↔L2 movement (conjunction on eviction, replication on
//!   fetch) plus the *speculative logging* helper (§III-B1).
//! * [`set_assoc`] — a generic set-associative, LRU cache container
//!   used for all three levels.
//! * [`config`] — geometry and latency parameters (Table III).
//! * [`stats`] — hit/miss/eviction counters.
//!
//! Policy — *when* to log, persist or flush — lives in `slpmt-core`;
//! this crate is the mechanical substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod meta;
pub mod set_assoc;
pub mod stats;

pub use config::{CacheConfig, CacheGeometry};
pub use meta::{l1_logbits_to_l2, l2_logbits_to_l1, speculative_fill_words, LineMeta, TxnId};
pub use set_assoc::{Entry, SetAssocCache};
pub use stats::CacheStats;
