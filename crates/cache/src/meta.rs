//! Per-line SLPMT metadata and log-bit width transforms.
//!
//! Figure 5 of the paper: every L1 line carries eight log bits (one per
//! 8-byte word), every L2 line carries two (one per 32-byte group), L3
//! carries none. On L1→L2 eviction each L2 bit becomes the *logical
//! conjunction* of its four L1 bits; on L2→L1 fetch each L2 bit is
//! *replicated* into four L1 bits. The optional speculative-logging
//! optimisation (§III-B1) logs clean words of a partially-logged group
//! before eviction so the conjunction survives.

use slpmt_pmem::addr::{L2_GROUPS_PER_LINE, WORDS_PER_L2_GROUP, WORDS_PER_LINE};
use std::fmt;

/// A core-local 2-bit transaction identifier (values 0..=3, §III-C2).
///
/// Four IDs exist per core; they are allocated from a circular register
/// and recycled by force-persisting the oldest transaction's lazy data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(u8);

impl TxnId {
    /// Number of distinct IDs (2 bits → 4).
    pub const COUNT: u8 = 4;

    /// Creates an ID.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 4` — the hardware field is two bits wide.
    pub fn new(id: u8) -> Self {
        assert!(id < Self::COUNT, "transaction ID must fit in 2 bits");
        TxnId(id)
    }

    /// The raw 2-bit value.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// The next ID in circular order.
    #[must_use]
    pub fn next(self) -> TxnId {
        TxnId((self.0 + 1) % Self::COUNT)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// SLPMT metadata attached to a cached line.
///
/// `log_bits` is interpreted at the owning level's granularity: bits
/// 0..8 (one per word) in L1, bits 0..2 (one per 32-byte group) in L2.
/// L3 entries keep a default (all-clear) metadata block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineMeta {
    /// Persist-at-commit bit (Table I).
    pub persist: bool,
    /// Log bitmap at the level's granularity.
    pub log_bits: u8,
    /// The line was modified and differs from the persistent image.
    pub dirty: bool,
    /// ID of the transaction that last updated the line, when that
    /// update's persistence may still be outstanding.
    pub txn_id: Option<TxnId>,
    /// The line was updated lazily (persist bit left clear) by a
    /// *committed* transaction and awaits deferred persistence.
    pub lazy_pending: bool,
    /// Per-word deferral bitmap: words written `storeT lazy=1
    /// log-free=1` by the *open* transaction. Such a word has no log
    /// record and asked for post-commit persistence, so it must never
    /// reach PM before its transaction's commit marker — even when an
    /// eager store to a sibling word sets the line's persist bit
    /// (Pattern 1, free case: a rollback would have no record to
    /// repair it). Commit withholds these words from in-place
    /// persists; the bitmap is cleared once the line's custody moves
    /// to the post-commit lazy machinery. Kept at word granularity at
    /// every level — unlike `log_bits`, it does not aggregate on
    /// L1→L2 eviction.
    pub defer_bits: u8,
}

impl LineMeta {
    /// Clean metadata (all bits clear).
    pub fn clean() -> Self {
        Self::default()
    }

    /// `true` if the word-level log bit `word` (0..8) is set.
    ///
    /// Only meaningful for L1 metadata.
    pub fn word_logged(&self, word: usize) -> bool {
        debug_assert!(word < WORDS_PER_LINE);
        self.log_bits & (1 << word) != 0
    }

    /// Sets the word-level log bit `word` (0..8). L1 only.
    pub fn set_word_logged(&mut self, word: usize) {
        debug_assert!(word < WORDS_PER_LINE);
        self.log_bits |= 1 << word;
    }

    /// `true` if the group-level log bit `group` (0..2) is set. L2 only.
    pub fn group_logged(&self, group: usize) -> bool {
        debug_assert!(group < L2_GROUPS_PER_LINE);
        self.log_bits & (1 << group) != 0
    }

    /// Sets the group-level log bit `group` (0..2). L2 only.
    pub fn set_group_logged(&mut self, group: usize) {
        debug_assert!(group < L2_GROUPS_PER_LINE);
        self.log_bits |= 1 << group;
    }

    /// `true` if word `word` (0..8) carries an unhonoured-until-commit
    /// deferral (written `storeT lazy=1 log-free=1` by the open
    /// transaction).
    pub fn word_deferred(&self, word: usize) -> bool {
        debug_assert!(word < WORDS_PER_LINE);
        self.defer_bits & (1 << word) != 0
    }

    /// Marks word `word` (0..8) as deferral-requested.
    pub fn set_word_deferred(&mut self, word: usize) {
        debug_assert!(word < WORDS_PER_LINE);
        self.defer_bits |= 1 << word;
    }

    /// Clears word `word`'s deferral — a later eager or logged store
    /// to the word supersedes it (latest store wins per word).
    pub fn clear_word_deferred(&mut self, word: usize) {
        debug_assert!(word < WORDS_PER_LINE);
        self.defer_bits &= !(1 << word);
    }
}

/// L1→L2 eviction transform: each of the two L2 bits is the logical
/// conjunction of the corresponding four L1 word bits (Figure 5).
///
/// ```
/// use slpmt_cache::l1_logbits_to_l2;
/// assert_eq!(l1_logbits_to_l2(0b1111_1111), 0b11);
/// assert_eq!(l1_logbits_to_l2(0b1111_0111), 0b10); // low group incomplete
/// assert_eq!(l1_logbits_to_l2(0b0000_1111), 0b01);
/// ```
pub fn l1_logbits_to_l2(l1_bits: u8) -> u8 {
    let mut out = 0;
    for group in 0..L2_GROUPS_PER_LINE {
        let mask = 0b1111u8 << (group * WORDS_PER_L2_GROUP);
        if l1_bits & mask == mask {
            out |= 1 << group;
        }
    }
    out
}

/// L2→L1 fetch transform: each L2 group bit is replicated into four L1
/// word bits (Figure 5).
///
/// ```
/// use slpmt_cache::l2_logbits_to_l1;
/// assert_eq!(l2_logbits_to_l1(0b11), 0b1111_1111);
/// assert_eq!(l2_logbits_to_l1(0b10), 0b1111_0000);
/// assert_eq!(l2_logbits_to_l1(0b00), 0);
/// ```
pub fn l2_logbits_to_l1(l2_bits: u8) -> u8 {
    let mut out = 0;
    for group in 0..L2_GROUPS_PER_LINE {
        if l2_bits & (1 << group) != 0 {
            out |= 0b1111 << (group * WORDS_PER_L2_GROUP);
        }
    }
    out
}

/// Speculative-logging helper (§III-B1): given L1 word log bits about
/// to be evicted, returns the clean words that should be speculatively
/// logged so that *partially* logged 4-word groups aggregate to a set
/// L2 bit. Groups with no logged word are left alone.
///
/// ```
/// use slpmt_cache::speculative_fill_words;
/// // Words 0..3 logged except word 3 → log word 3 speculatively.
/// assert_eq!(speculative_fill_words(0b0000_0111), vec![3]);
/// // Fully-logged or fully-clean groups need nothing.
/// assert_eq!(speculative_fill_words(0b0000_1111), Vec::<usize>::new());
/// assert_eq!(speculative_fill_words(0), Vec::<usize>::new());
/// ```
pub fn speculative_fill_words(l1_bits: u8) -> Vec<usize> {
    let mut fills = Vec::new();
    for group in 0..L2_GROUPS_PER_LINE {
        let shift = group * WORDS_PER_L2_GROUP;
        let bits = (l1_bits >> shift) & 0b1111;
        if bits != 0 && bits != 0b1111 {
            for w in 0..WORDS_PER_L2_GROUP {
                if bits & (1 << w) == 0 {
                    fills.push(shift + w);
                }
            }
        }
    }
    fills
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_bounds_and_cycle() {
        let t = TxnId::new(3);
        assert_eq!(t.raw(), 3);
        assert_eq!(t.next(), TxnId::new(0));
        assert_eq!(TxnId::new(0).next(), TxnId::new(1));
        assert_eq!(format!("{t}"), "T3");
    }

    #[test]
    #[should_panic(expected = "2 bits")]
    fn txn_id_overflow_rejected() {
        let _ = TxnId::new(4);
    }

    #[test]
    fn word_log_bits() {
        let mut m = LineMeta::clean();
        assert!(!m.word_logged(0));
        m.set_word_logged(0);
        m.set_word_logged(7);
        assert!(m.word_logged(0));
        assert!(m.word_logged(7));
        assert!(!m.word_logged(3));
        assert_eq!(m.log_bits, 0b1000_0001);
    }

    #[test]
    fn defer_bits_set_and_superseded() {
        let mut m = LineMeta::clean();
        m.set_word_deferred(2);
        m.set_word_deferred(6);
        assert!(m.word_deferred(2) && m.word_deferred(6));
        assert!(!m.word_deferred(0));
        m.clear_word_deferred(2);
        assert!(!m.word_deferred(2));
        assert_eq!(m.defer_bits, 0b0100_0000);
    }

    #[test]
    fn group_log_bits() {
        let mut m = LineMeta::clean();
        m.set_group_logged(1);
        assert!(!m.group_logged(0));
        assert!(m.group_logged(1));
    }

    #[test]
    fn conjunction_per_group() {
        assert_eq!(l1_logbits_to_l2(0), 0);
        assert_eq!(l1_logbits_to_l2(0b1111_0000), 0b10);
        assert_eq!(l1_logbits_to_l2(0b0111_1111), 0b01);
        assert_eq!(l1_logbits_to_l2(0xFF), 0b11);
    }

    #[test]
    fn replication_inverts_conjunction_for_full_groups() {
        for l2 in 0..4u8 {
            assert_eq!(l1_logbits_to_l2(l2_logbits_to_l1(l2)), l2);
        }
    }

    #[test]
    fn round_trip_loses_partial_groups() {
        // The paper's duplicated-logging case: one logged word is lost
        // in the conjunction, so a round trip reports it unlogged.
        let l1 = 0b0000_0001u8;
        let back = l2_logbits_to_l1(l1_logbits_to_l2(l1));
        assert_eq!(back, 0);
    }

    #[test]
    fn speculative_fill_completes_partial_groups_only() {
        assert_eq!(speculative_fill_words(0b0001_0000), vec![5, 6, 7]);
        assert_eq!(speculative_fill_words(0b0111_0111), vec![3, 7]);
        assert_eq!(speculative_fill_words(0b1111_1111), Vec::<usize>::new());
    }

    #[test]
    fn speculative_fill_then_conjunction_is_full() {
        for bits in 1..=0xFFu8 {
            let mut filled = bits;
            for w in speculative_fill_words(bits) {
                filled |= 1 << w;
            }
            // Every group that had at least one logged word now
            // aggregates to a set L2 bit.
            for group in 0..2 {
                let gbits = (bits >> (group * 4)) & 0b1111;
                if gbits != 0 {
                    assert!(l1_logbits_to_l2(filled) & (1 << group) != 0);
                }
            }
        }
    }
}
