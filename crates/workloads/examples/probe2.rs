use slpmt_core::Scheme;
use slpmt_workloads::runner::{run_inserts, IndexKind};
use slpmt_workloads::{ycsb_load, AnnotationSource};

fn main() {
    let ops = ycsb_load(1000, 256, 42);
    for s in [Scheme::Fg, Scheme::FgLz, Scheme::Slpmt] {
        let r = run_inserts(
            s,
            IndexKind::Hashtable,
            &ops,
            256,
            AnnotationSource::Manual,
            false,
        );
        println!("{s}: cycles={} commit_stall={} deferred={} forced={} overflowed={} sig_hits={} records={} discarded={} media_lines={}",
            r.cycles, r.stats.commit_stall_cycles, r.stats.lazy_lines_deferred,
            r.stats.lazy_lines_forced, r.stats.lazy_lines_overflowed, r.stats.signature_hits,
            r.stats.log_records_created, r.stats.log_records_discarded, r.traffic.wpq_lines);
    }
}
