use slpmt_core::{MachineConfig, Scheme};
use slpmt_workloads::runner::{run_inserts, run_inserts_with, IndexKind};
use slpmt_workloads::{ycsb_load, AnnotationSource};

fn main() {
    // Value-size sensitivity (Fig 10/11 shape): SLPMT speedup should grow with value size.
    println!("== value size sweep (hashtable, rbtree) ==");
    for kind in [IndexKind::Hashtable, IndexKind::Rbtree] {
        print!("{kind:10}");
        for vs in [16usize, 32, 64, 128, 256] {
            let ops = ycsb_load(600, vs, 42);
            let base = run_inserts(Scheme::Fg, kind, &ops, vs, AnnotationSource::Manual, false);
            let r = run_inserts(
                Scheme::Slpmt,
                kind,
                &ops,
                vs,
                AnnotationSource::Manual,
                false,
            );
            print!(
                "  {vs}B: {:.2}x/{:+.0}%",
                r.speedup_vs(&base),
                r.traffic_reduction_vs(&base) * 100.0
            );
        }
        println!();
    }
    // Write-latency sensitivity (Fig 12 shape)
    println!("== latency sweep (hashtable, avl) ==");
    for kind in [IndexKind::Hashtable, IndexKind::Avl] {
        print!("{kind:10}");
        for ns in [500u64, 1100, 1700, 2300] {
            let ops = ycsb_load(600, 256, 42);
            let mk = |s| {
                let mut c = MachineConfig::for_scheme(s);
                c.pm = c.pm.with_write_latency_ns(ns);
                c
            };
            let base = run_inserts_with(
                mk(Scheme::Fg),
                kind,
                &ops,
                256,
                AnnotationSource::Manual,
                false,
            );
            let r = run_inserts_with(
                mk(Scheme::Slpmt),
                kind,
                &ops,
                256,
                AnnotationSource::Manual,
                false,
            );
            print!("  {ns}ns: {:.2}x", r.speedup_vs(&base));
        }
        println!();
    }
    // PMKV (Fig 14 shape): compiler annotations, 256B and 16B
    println!("== pmkv ==");
    for kind in IndexKind::PMKV {
        print!("{kind:10}");
        for vs in [256usize, 16] {
            let ops = ycsb_load(600, vs, 42);
            let base = run_inserts(
                Scheme::Fg,
                kind,
                &ops,
                vs,
                AnnotationSource::Compiler,
                false,
            );
            let s = run_inserts(
                Scheme::Slpmt,
                kind,
                &ops,
                vs,
                AnnotationSource::Compiler,
                true,
            );
            let a = run_inserts(
                Scheme::Atom,
                kind,
                &ops,
                vs,
                AnnotationSource::Compiler,
                false,
            );
            let e = run_inserts(
                Scheme::Ede,
                kind,
                &ops,
                vs,
                AnnotationSource::Compiler,
                false,
            );
            print!(
                "  {vs}B: SLPMT {:.2}x vsATOM {:.2}x vsEDE {:.2}x red {:+.0}%",
                s.speedup_vs(&base),
                a.cycles as f64 / s.cycles as f64,
                e.cycles as f64 / s.cycles as f64,
                s.traffic_reduction_vs(&base) * 100.0
            );
        }
        println!();
    }
    // Fig 9: line-granularity variants
    println!("== line granularity ==");
    for kind in IndexKind::KERNELS {
        let ops = ycsb_load(600, 256, 42);
        let base = run_inserts(
            Scheme::FgCl,
            kind,
            &ops,
            256,
            AnnotationSource::Manual,
            false,
        );
        let r = run_inserts(
            Scheme::SlpmtCl,
            kind,
            &ops,
            256,
            AnnotationSource::Manual,
            true,
        );
        println!(
            "{kind:10}  SLPMT-CL vs FG-CL: {:.2}x/{:+.0}%",
            r.speedup_vs(&base),
            r.traffic_reduction_vs(&base) * 100.0
        );
    }
}
