use slpmt_core::Scheme;
use slpmt_workloads::runner::{run_inserts, IndexKind};
use slpmt_workloads::{ycsb_load, AnnotationSource};

fn main() {
    let ops = ycsb_load(1000, 256, 42);
    let schemes = [
        Scheme::Fg,
        Scheme::FgLg,
        Scheme::FgLz,
        Scheme::Slpmt,
        Scheme::Atom,
        Scheme::Ede,
    ];
    for kind in IndexKind::KERNELS {
        let base = run_inserts(Scheme::Fg, kind, &ops, 256, AnnotationSource::Manual, false);
        print!("{kind:10}");
        for s in schemes {
            let r = run_inserts(s, kind, &ops, 256, AnnotationSource::Manual, true);
            print!(
                "  {s}: {:.2}x/{:+.0}%",
                r.speedup_vs(&base),
                r.traffic_reduction_vs(&base) * 100.0
            );
        }
        println!();
    }
}
