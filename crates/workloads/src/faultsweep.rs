//! Media-fault sweep: crash injection plus torn writes, poisoned
//! lines, flipped log bits and drain jitter, with oracle-checked
//! degradation rules.
//!
//! The persist-event crash sweep ([`crashsweep`](crate::crashsweep))
//! models a *clean* power cut: events `1..=k` durable, everything
//! later dropped. Real media fail messier — the event at the crash
//! boundary tears at 8-byte granularity, lines poison, stored log bits
//! flip. This module replays the same seeded traces under a
//! [`FaultPlan`] and checks that recovery *degrades gracefully*
//! instead of assuming a clean cut:
//!
//! * **No injected faults survive undetected.** Torn records and
//!   markers only appear when the plan tears; every line recovery
//!   reports lost traces back to a line the plan actually poisoned or
//!   a record it actually flipped (the device keeps the ground truth).
//! * **Absorbed faults cost nothing.** When the recovery report shows
//!   zero lost lines — the faults hit dead state, or salvage
//!   re-materialised every poisoned line from intact log records — the
//!   recovered structure must pass the *strict* crash-sweep oracle: a
//!   torn event is indistinguishable from crashing one event earlier,
//!   and drain jitter never changes durable state under ADR.
//! * **Unabsorbed faults degrade, deterministically.** With lost
//!   lines, exact oracle equality is off the table by construction;
//!   log replay must still complete without panicking, report the loss
//!   honestly, and produce the same report on every replay of the same
//!   `(case, k, plan)` tuple (checked by `tests/fault_properties.rs`).
//!
//! Failures print as `faultsweep FAIL scheme=… workload=… seed=…
//! ops=… plan=… k=…`, replayable via `slpmt faults --plan … --at …`.

use crate::crashsweep::{self, SweepCase};
use crate::ctx::PmContext;
use crate::inspector::inspect;
use crate::runner::DurableIndex;
use slpmt_pmem::fault::mix64;
use slpmt_pmem::FaultPlan;
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One cell of a fault sweep: a crash-sweep case plus the media-fault
/// plan active when the crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCase {
    /// The scheme × workload × trace underneath.
    pub base: SweepCase,
    /// The deterministic fault plan injected at the crash.
    pub plan: FaultPlan,
}

impl fmt::Display for FaultCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} plan={}", self.base, self.plan)
    }
}

/// One failed fault point, carrying the full reproducer tuple.
#[derive(Debug, Clone)]
pub struct FaultFailure {
    /// The failing cell.
    pub case: FaultCase,
    /// Persist-event index the crash was armed at.
    pub k: u64,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for FaultFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faultsweep FAIL {} k={}: {}",
            self.case, self.k, self.detail
        )
    }
}

/// The default plan battery: each fault class alone, then everything
/// at once. Seeds are derived from `seed` so two sweeps with different
/// base seeds inject at different places.
pub fn default_plans(seed: u64) -> Vec<FaultPlan> {
    vec![
        // Torn crash-boundary event, clean media otherwise.
        FaultPlan {
            seed: mix64(seed ^ 0xA1),
            tear: true,
            ..FaultPlan::NONE
        },
        // One poisoned line (uncorrectable ECC), clean cut.
        FaultPlan {
            seed: mix64(seed ^ 0xA2),
            poison_lines: 1,
            ..FaultPlan::NONE
        },
        // One flipped log-record bit, clean cut.
        FaultPlan {
            seed: mix64(seed ^ 0xA3),
            flip_records: 1,
            ..FaultPlan::NONE
        },
        // Drain-order perturbation only: durable state must not move.
        FaultPlan {
            seed: mix64(seed ^ 0xA4),
            jitter: 400,
            ..FaultPlan::NONE
        },
        // Everything at once.
        FaultPlan {
            seed: mix64(seed ^ 0xA5),
            tear: true,
            poison_lines: 2,
            flip_records: 1,
            jitter: 250,
            ..FaultPlan::NONE
        },
    ]
}

/// Seeded crash points for a case: `count` distinct events drawn from
/// `1..=N` (N from a clean run — the plan never changes the event
/// trace, only what the crash leaves behind). Fewer than `count` when
/// the trace is shorter than that.
pub fn fault_points(case: &FaultCase, count: usize) -> Vec<u64> {
    let n = crashsweep::count_events(&case.base);
    let mut ks = BTreeSet::new();
    let mut i = 0u64;
    while ks.len() < count.min(n as usize) {
        ks.insert(1 + mix64(case.base.seed ^ case.plan.seed.rotate_left(17) ^ i) % n);
        i += 1;
    }
    ks.into_iter().collect()
}

fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_string())
}

/// Replays the case's trace with the fault plan armed and a crash at
/// persist event `k`, recovers, and checks the degradation rules.
///
/// # Errors
///
/// Returns the reproducible failure tuple when log replay panics, a
/// fault appears out of thin air (torn/lost state the plan cannot
/// explain), or a fully-absorbed fault still breaks the strict
/// crash-sweep oracle.
pub fn run_fault_at(case: &FaultCase, k: u64) -> Result<(), FaultFailure> {
    let fail = |detail: String| FaultFailure {
        case: *case,
        k,
        detail,
    };
    let ops = crashsweep::trace_ops(&case.base);
    let (mut ctx, mut idx) = crashsweep::build(&case.base);
    ctx.machine_mut().set_fault_plan(case.plan);
    ctx.machine_mut().arm_crash_at_event(k);
    let mut op_seq = Vec::with_capacity(ops.len());
    for op in &ops {
        crashsweep::apply(idx.as_mut(), &mut ctx, op);
        op_seq.push(ctx.txn_seq());
        if ctx.machine().crash_tripped() {
            break;
        }
    }
    ctx.crash();
    // A torn marker is not Valid, so it does not advance the committed
    // watermark: the transaction counts as uncommitted, which is the
    // paper's required reading of a marker that never fully persisted.
    let marker = ctx.durable_commit_seq();
    let b = op_seq.iter().take_while(|&&seq| seq <= marker).count();
    // Log replay itself must never panic, whatever the media did.
    let report = match catch_unwind(AssertUnwindSafe(|| ctx.recover())) {
        Ok(r) => r,
        Err(p) => return Err(fail(format!("log replay panicked: {}", panic_msg(p)))),
    };
    // Faults must not appear out of thin air.
    if !case.plan.tear && report.torn_records + report.torn_markers != 0 {
        return Err(fail(format!(
            "{} torn records / {} torn markers without a tear in the plan",
            report.torn_records, report.torn_markers
        )));
    }
    if case.plan.flip_records == 0 && report.corrupt_records != 0 {
        return Err(fail(format!(
            "{} corrupt records without a flip in the plan",
            report.corrupt_records
        )));
    }
    // Every lost line must trace back to an injected fault: a line the
    // plan poisoned, or a line covered by a record the plan flipped.
    let tainted: BTreeSet<u64> = {
        let dev = ctx.machine().device();
        dev.fault_poisoned_lines()
            .iter()
            .chain(dev.fault_flipped_lines())
            .copied()
            .collect()
    };
    if let Some(stray) = report.lost_lines.iter().find(|l| !tainted.contains(l)) {
        return Err(fail(format!(
            "line {stray:#x} reported lost but no injected fault touched it"
        )));
    }
    if !report.lost_lines.is_empty() {
        // Degraded and detected: the loss was reported honestly and
        // every lost line attributed to an injected fault. The
        // structure-level recovery contract assumes a coherent image —
        // the application is expected to act on the loss report — and
        // a half-rolled-back pointer graph can contain cycles that
        // make a blind structure walk diverge, so the check stops at
        // the validated log replay.
        return Ok(());
    }
    // Zero lost lines: the faults were fully absorbed (they hit dead
    // state, or salvage re-materialised every poisoned line), so the
    // strict crash-sweep oracle applies unchanged and any panic is a
    // failure.
    let oracle_ops = &ops;
    let strict = catch_unwind(AssertUnwindSafe(move || -> Result<(), String> {
        idx.recover(&mut ctx);
        let reachable = idx.reachable(&ctx);
        ctx.gc(&reachable);
        idx.check_invariants(&ctx)
            .map_err(|e| format!("invariant violated after recovery: {e}"))?;
        if !inspect(&ctx, &reachable).is_clean() {
            return Err("allocations still leaked after GC".into());
        }
        check_oracle(&ctx, idx.as_ref(), oracle_ops, b, marker)
    }));
    match strict {
        Ok(r) => r.map_err(fail),
        Err(p) => Err(fail(format!(
            "structure recovery panicked: {}",
            panic_msg(p)
        ))),
    }
}

fn check_oracle(
    ctx: &PmContext,
    idx: &dyn DurableIndex,
    ops: &[crate::ycsb::MixedOp],
    b: usize,
    marker: u64,
) -> Result<(), String> {
    // Fault points are sampled (not an ascending exhaustive sweep), so
    // each point builds a fresh streaming oracle and advances it once —
    // O(b) model mutations, zero payload clones.
    let mut oracle = crashsweep::StreamingOracle::new(ops);
    oracle.advance_to(b);
    oracle
        .check(ctx, idx)
        .map_err(|e| format!("{e} (marker seq {marker})"))
}

/// Replays the machine-level sequence of [`run_fault_at`] — fault
/// plan armed, crash at persist event `k`, power failure, log replay —
/// with event tracing enabled, and returns the captured records.
/// Structure-level recovery is skipped and log-replay panics are
/// swallowed (this capture path exists for failing tuples), so the
/// trace of everything up to the failure still comes back.
/// Deterministic: the same `(case, k)` always yields the same records.
pub fn trace_fault_at(case: &FaultCase, k: u64) -> Vec<slpmt_core::TraceRecord> {
    let ops = crashsweep::trace_ops(&case.base);
    let (mut ctx, mut idx) = crashsweep::build(&case.base);
    ctx.enable_tracing(1 << 20);
    ctx.machine_mut().set_fault_plan(case.plan);
    ctx.machine_mut().arm_crash_at_event(k);
    for op in &ops {
        crashsweep::apply(idx.as_mut(), &mut ctx, op);
        if ctx.machine().crash_tripped() {
            break;
        }
    }
    ctx.crash();
    let _ = catch_unwind(AssertUnwindSafe(|| ctx.recover()));
    ctx.take_trace()
}

/// [`run_fault_at`] with residual panics converted into failure
/// tuples, so a sweep reports `(scheme, workload, seed, k, plan)`
/// instead of dying mid-matrix.
pub fn check_fault_point(case: &FaultCase, k: u64) -> Result<(), FaultFailure> {
    match catch_unwind(AssertUnwindSafe(|| run_fault_at(case, k))) {
        Ok(r) => r,
        Err(payload) => Err(FaultFailure {
            case: *case,
            k,
            detail: format!("panic: {}", panic_msg(payload)),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::IndexKind;
    use slpmt_core::Scheme;

    fn case(plan: FaultPlan) -> FaultCase {
        FaultCase {
            base: SweepCase::new(Scheme::Slpmt, IndexKind::Hashtable, 9, 14),
            plan,
        }
    }

    #[test]
    fn empty_plan_matches_plain_crash_sweep() {
        let c = case(FaultPlan::NONE);
        let n = crashsweep::count_events(&c.base);
        for k in [1, n / 2, n] {
            run_fault_at(&c, k).unwrap();
            crashsweep::run_crash_at(&c.base, k).unwrap();
        }
    }

    #[test]
    fn fault_points_are_deterministic_distinct_and_in_range() {
        let c = case(default_plans(5)[0]);
        let a = fault_points(&c, 4);
        assert_eq!(a, fault_points(&c, 4));
        assert_eq!(a.len(), 4);
        let n = crashsweep::count_events(&c.base);
        assert!(a.iter().all(|&k| k >= 1 && k <= n));
        let b = fault_points(&case(default_plans(6)[0]), 4);
        assert_ne!(a, b, "different plan seeds should pick different ks");
    }

    #[test]
    fn torn_plan_passes_strict_oracle() {
        // A tear is indistinguishable from crashing one event earlier,
        // so every point must satisfy the strict oracle.
        let c = case(default_plans(3)[0]);
        assert!(c.plan.tear);
        for k in fault_points(&c, 3) {
            run_fault_at(&c, k).unwrap();
        }
    }

    #[test]
    fn jitter_plan_passes_strict_oracle() {
        let c = case(default_plans(3)[3]);
        assert!(c.plan.jitter > 0 && !c.plan.tear);
        for k in fault_points(&c, 3) {
            run_fault_at(&c, k).unwrap();
        }
    }

    #[test]
    fn poison_and_flip_plans_degrade_gracefully() {
        for plan in [
            default_plans(11)[1],
            default_plans(11)[2],
            default_plans(11)[4],
        ] {
            let c = case(plan);
            for k in fault_points(&c, 3) {
                run_fault_at(&c, k).unwrap();
            }
        }
    }

    #[test]
    fn failure_line_round_trips_through_plan_parser() {
        let f = FaultFailure {
            case: case(default_plans(1)[4]),
            k: 31,
            detail: "boom".into(),
        };
        let line = f.to_string();
        assert!(line.contains("plan="));
        let text = line.split("plan=").nth(1).unwrap();
        let text = text.split_whitespace().next().unwrap();
        assert_eq!(text.parse::<FaultPlan>().unwrap(), f.case.plan);
    }
}
