//! The YCSB-load workload generator (§VI-A).
//!
//! The paper evaluates each benchmark with the *load* phase of YCSB:
//! 1,000 insert operations, each carrying an 8-byte key and a value of
//! configurable size (256 bytes by default; the sensitivity studies
//! sweep 16–256 bytes). Keys are unique and pseudo-random; values are
//! deterministic functions of the key so runs are reproducible and
//! post-crash checks can recompute the expected payload.

use slpmt_prng::SimRng;

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YcsbOp {
    /// 8-byte key (unique within the run).
    pub key: u64,
    /// Value payload (`value_size` bytes, a whole number of words).
    pub value: Vec<u8>,
}

/// Deterministic value payload for `key` — recomputable by checkers.
pub fn value_for(key: u64, value_size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(value_size);
    let mut x = key ^ 0xA5A5_5A5A_DEAD_BEEF;
    while v.len() < value_size {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(value_size);
    v
}

/// Generates the YCSB-load insert stream: `ops` unique keys in a
/// seeded shuffle, each with a `value_size`-byte payload.
///
/// # Panics
///
/// Panics if `value_size` is not a multiple of 8 (stores are issued a
/// word at a time).
///
/// ```
/// let ops = slpmt_workloads::ycsb_load(1000, 256, 42);
/// assert_eq!(ops.len(), 1000);
/// assert!(ops.iter().all(|o| o.value.len() == 256));
/// ```
pub fn ycsb_load(ops: usize, value_size: usize, seed: u64) -> Vec<YcsbOp> {
    assert!(
        value_size.is_multiple_of(8),
        "value size must be whole words"
    );
    let mut rng = SimRng::seed_from_u64(seed);
    // Unique keys: dense per-seed IDs pushed through the (bijective)
    // SplitMix64 finaliser, so keys look random, never collide within
    // a run, and differ across seeds.
    let mut ids: Vec<u64> = (1..=ops as u64).collect();
    rng.shuffle(&mut ids);
    ids.into_iter()
        .map(|i| {
            let mut z = (seed << 32) ^ i;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let key = z ^ (z >> 31);
            YcsbOp {
                key,
                value: value_for(key, value_size),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generates_requested_count_and_size() {
        let ops = ycsb_load(1000, 256, 7);
        assert_eq!(ops.len(), 1000);
        assert!(ops.iter().all(|o| o.value.len() == 256));
    }

    #[test]
    fn keys_are_unique() {
        let ops = ycsb_load(1000, 16, 7);
        let keys: BTreeSet<u64> = ops.iter().map(|o| o.key).collect();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(ycsb_load(100, 64, 3), ycsb_load(100, 64, 3));
        assert_ne!(ycsb_load(100, 64, 3), ycsb_load(100, 64, 4));
    }

    #[test]
    fn values_recomputable() {
        let ops = ycsb_load(10, 32, 9);
        for op in &ops {
            assert_eq!(op.value, value_for(op.key, 32));
        }
    }

    #[test]
    fn value_sizes_sweep() {
        for size in [16, 32, 64, 128, 256] {
            let ops = ycsb_load(10, size, 1);
            assert!(ops.iter().all(|o| o.value.len() == size));
        }
    }

    #[test]
    #[should_panic(expected = "whole words")]
    fn ragged_value_size_rejected() {
        let _ = ycsb_load(1, 20, 0);
    }
}

/// One operation of a mixed (post-load) workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedOp {
    /// Insert a fresh key.
    Insert(YcsbOp),
    /// Read an existing key.
    Read(u64),
    /// Remove an existing key.
    Remove(u64),
    /// Replace an existing key's value.
    Update(YcsbOp),
}

/// Generates a mixed workload in the style of YCSB's run phases: after
/// a load of `load` keys, `ops` operations follow with the given read
/// and remove percentages (the remainder are fresh inserts). Reads and
/// removes target previously inserted, not-yet-removed keys; the mix
/// is deterministic for a seed. See [`ycsb_mixed_with_updates`] for
/// mixes that also replace values (YCSB A/B style).
///
/// # Panics
///
/// Panics if `read_pct + remove_pct > 100` or `value_size` is not a
/// multiple of 8.
pub fn ycsb_mixed(
    load: usize,
    ops: usize,
    value_size: usize,
    seed: u64,
    read_pct: u8,
    remove_pct: u8,
) -> (Vec<YcsbOp>, Vec<MixedOp>) {
    ycsb_mixed_with_updates(load, ops, value_size, seed, read_pct, 0, remove_pct)
}

/// [`ycsb_mixed`] with an update share: YCSB A is (50 read / 50
/// update), YCSB B is (95 read / 5 update). Updates target live keys
/// with fresh deterministic values.
///
/// # Panics
///
/// Panics if the percentages exceed 100 or `value_size` is not a
/// multiple of 8.
pub fn ycsb_mixed_with_updates(
    load: usize,
    ops: usize,
    value_size: usize,
    seed: u64,
    read_pct: u8,
    update_pct: u8,
    remove_pct: u8,
) -> (Vec<YcsbOp>, Vec<MixedOp>) {
    assert!(
        read_pct as u16 + update_pct as u16 + remove_pct as u16 <= 100,
        "percentages exceed 100"
    );
    let loaded = ycsb_load(load, value_size, seed);
    let extra = ycsb_load(load + ops, value_size, seed ^ 0x5EED);
    let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
    let mut live: Vec<u64> = loaded.iter().map(|o| o.key).collect();
    let initial: std::collections::BTreeSet<u64> = live.iter().copied().collect();
    let mut fresh = extra.into_iter().filter(move |o| !initial.contains(&o.key));
    let mut out = Vec::with_capacity(ops);
    let mut version = 0u64;
    for _ in 0..ops {
        let roll = rng.gen_range(0..100) as u8;
        if roll < read_pct && !live.is_empty() {
            let i = rng.gen_usize(0..live.len());
            out.push(MixedOp::Read(live[i]));
        } else if roll < read_pct + update_pct && !live.is_empty() {
            let i = rng.gen_usize(0..live.len());
            version += 1;
            let key = live[i];
            out.push(MixedOp::Update(YcsbOp {
                key,
                value: value_for(key ^ version.rotate_left(32), value_size),
            }));
        } else if roll < read_pct + update_pct + remove_pct && !live.is_empty() {
            let i = rng.gen_usize(0..live.len());
            out.push(MixedOp::Remove(live.swap_remove(i)));
        } else {
            let op = fresh.next().expect("fresh key pool exhausted");
            live.push(op.key);
            out.push(MixedOp::Insert(op));
        }
    }
    (loaded, out)
}

#[cfg(test)]
mod mixed_tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn mixed_ops_respect_liveness() {
        let (load, ops) = ycsb_mixed(50, 200, 16, 3, 40, 20);
        let mut live: BTreeSet<u64> = load.iter().map(|o| o.key).collect();
        for op in &ops {
            match op {
                MixedOp::Insert(o) => {
                    assert!(live.insert(o.key), "insert of live key");
                }
                MixedOp::Read(k) => assert!(live.contains(k), "read of dead key"),
                MixedOp::Remove(k) => {
                    assert!(live.remove(k), "remove of dead key");
                }
                MixedOp::Update(o) => assert!(live.contains(&o.key), "update of dead key"),
            }
        }
    }

    #[test]
    fn mixed_is_deterministic() {
        assert_eq!(
            ycsb_mixed(10, 50, 16, 9, 50, 10),
            ycsb_mixed(10, 50, 16, 9, 50, 10)
        );
    }

    #[test]
    fn pure_read_mix_has_no_mutations() {
        let (_, ops) = ycsb_mixed(20, 100, 16, 1, 100, 0);
        assert!(ops.iter().all(|o| matches!(o, MixedOp::Read(_))));
    }

    #[test]
    #[should_panic(expected = "percentages exceed 100")]
    fn overfull_mix_rejected() {
        let _ = ycsb_mixed(10, 10, 16, 0, 80, 30);
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;

    #[test]
    fn ycsb_a_style_mix() {
        let (_, ops) = ycsb_mixed_with_updates(50, 400, 16, 2, 50, 50, 0);
        let updates = ops
            .iter()
            .filter(|o| matches!(o, MixedOp::Update(_)))
            .count();
        let reads = ops.iter().filter(|o| matches!(o, MixedOp::Read(_))).count();
        assert_eq!(updates + reads, 400, "50/50 read-update mix");
        assert!(updates > 120 && reads > 120);
    }

    #[test]
    fn updates_carry_fresh_values() {
        let (_, ops) = ycsb_mixed_with_updates(5, 50, 16, 3, 0, 100, 0);
        for op in &ops {
            let MixedOp::Update(o) = op else {
                panic!("pure update mix")
            };
            assert_eq!(o.value.len(), 16);
        }
    }
}
