//! The YCSB-load workload generator (§VI-A).
//!
//! The paper evaluates each benchmark with the *load* phase of YCSB:
//! 1,000 insert operations, each carrying an 8-byte key and a value of
//! configurable size (256 bytes by default; the sensitivity studies
//! sweep 16–256 bytes). Keys are unique and pseudo-random; values are
//! deterministic functions of the key so runs are reproducible and
//! post-crash checks can recompute the expected payload.

use slpmt_prng::{splitmix64, SimRng, Zipf};

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YcsbOp {
    /// 8-byte key (unique within the run).
    pub key: u64,
    /// Value payload (`value_size` bytes, a whole number of words).
    pub value: Vec<u8>,
}

/// Deterministic value payload for `key` — recomputable by checkers.
pub fn value_for(key: u64, value_size: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(value_size);
    let mut x = key ^ 0xA5A5_5A5A_DEAD_BEEF;
    while v.len() < value_size {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(value_size);
    v
}

/// Generates the YCSB-load insert stream: `ops` unique keys in a
/// seeded shuffle, each with a `value_size`-byte payload.
///
/// # Panics
///
/// Panics if `value_size` is not a multiple of 8 (stores are issued a
/// word at a time).
///
/// ```
/// let ops = slpmt_workloads::ycsb_load(1000, 256, 42);
/// assert_eq!(ops.len(), 1000);
/// assert!(ops.iter().all(|o| o.value.len() == 256));
/// ```
pub fn ycsb_load(ops: usize, value_size: usize, seed: u64) -> Vec<YcsbOp> {
    assert!(
        value_size.is_multiple_of(8),
        "value size must be whole words"
    );
    let mut rng = SimRng::seed_from_u64(seed);
    // Unique keys: dense per-seed IDs pushed through the (bijective)
    // SplitMix64 finaliser, so keys look random, never collide within
    // a run, and differ across seeds.
    let mut ids: Vec<u64> = (1..=ops as u64).collect();
    rng.shuffle(&mut ids);
    ids.into_iter()
        .map(|i| {
            let mut z = (seed << 32) ^ i;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let key = z ^ (z >> 31);
            YcsbOp {
                key,
                value: value_for(key, value_size),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generates_requested_count_and_size() {
        let ops = ycsb_load(1000, 256, 7);
        assert_eq!(ops.len(), 1000);
        assert!(ops.iter().all(|o| o.value.len() == 256));
    }

    #[test]
    fn keys_are_unique() {
        let ops = ycsb_load(1000, 16, 7);
        let keys: BTreeSet<u64> = ops.iter().map(|o| o.key).collect();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(ycsb_load(100, 64, 3), ycsb_load(100, 64, 3));
        assert_ne!(ycsb_load(100, 64, 3), ycsb_load(100, 64, 4));
    }

    #[test]
    fn values_recomputable() {
        let ops = ycsb_load(10, 32, 9);
        for op in &ops {
            assert_eq!(op.value, value_for(op.key, 32));
        }
    }

    #[test]
    fn value_sizes_sweep() {
        for size in [16, 32, 64, 128, 256] {
            let ops = ycsb_load(10, size, 1);
            assert!(ops.iter().all(|o| o.value.len() == size));
        }
    }

    #[test]
    #[should_panic(expected = "whole words")]
    fn ragged_value_size_rejected() {
        let _ = ycsb_load(1, 20, 0);
    }
}

/// Deterministic value payload for the `version`-th mutation of the
/// run when it lands on `key` — collision-free per `(key, version)`.
///
/// The first two words carry `key` and `version ^ DOMAIN` verbatim, so
/// two distinct `(key, version)` pairs can never produce equal
/// payloads for `value_size >= 16`; the remaining words are an LCG
/// stream over the mixed pair. (The previous derivation,
/// `value_for(key ^ version.rotate_left(32), _)`, aliased whenever
/// `key_a ^ key_b` equaled `(v_a ^ v_b) << 32` — real collisions under
/// long update-heavy runs, which blinded the recovery oracle to
/// cross-key value swaps.)
///
/// # Panics
///
/// Panics if `value_size` is not a multiple of 8 or is smaller than 16
/// bytes (one word cannot carry both coordinates).
pub fn update_value_for(key: u64, version: u64, value_size: usize) -> Vec<u8> {
    const DOMAIN: u64 = 0x5EED_FACE_CAFE_D00D;
    assert!(
        value_size.is_multiple_of(8) && value_size >= 16,
        "update values need at least two whole words"
    );
    let mut v = Vec::with_capacity(value_size);
    v.extend_from_slice(&key.to_le_bytes());
    v.extend_from_slice(&(version ^ DOMAIN).to_le_bytes());
    let mut x = key ^ version.rotate_left(32) ^ DOMAIN;
    while v.len() < value_size {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(value_size);
    v
}

/// One operation of a mixed (post-load) workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedOp {
    /// Insert a fresh key.
    Insert(YcsbOp),
    /// Read an existing key.
    Read(u64),
    /// Remove an existing key.
    Remove(u64),
    /// Replace an existing key's value.
    Update(YcsbOp),
    /// Read an existing key, then replace its value (YCSB F).
    Rmw(YcsbOp),
    /// Range scan. `keys` are the live keys the scan must observe, in
    /// ascending order starting at the scan cursor — materialised at
    /// generation time so executors and oracles can check the result
    /// set exactly. Ordered indexes serve it with one range walk;
    /// hash-style indexes degrade to point lookups.
    Scan {
        /// Expected result keys, ascending; never empty.
        keys: Vec<u64>,
    },
}

/// Key-popularity distribution for operations that target live keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Every live key equally likely.
    Uniform,
    /// Scrambled zipfian: ranks are drawn from a zeta-based sampler
    /// ([`slpmt_prng::Zipf`]) over a fixed rank space and pushed
    /// through the SplitMix64 finaliser before indexing the live set,
    /// so the hot set is a pseudo-random subset of keys rather than
    /// the smallest ones. `theta_milli` is the skew in thousandths
    /// (990 = YCSB's 0.99). When `churn > 0` the scramble salt is
    /// re-derived every `churn` operations, migrating the hot set
    /// mid-run (hot-key churn phases).
    Zipfian {
        /// Skew `theta` in thousandths, in `1..=999`.
        theta_milli: u16,
        /// Operations per hot-set phase; `0` disables churn.
        churn: u32,
    },
    /// Zipfian over recency: rank 0 is the most recently inserted
    /// still-live key (YCSB D's "latest" distribution).
    Latest {
        /// Skew `theta` in thousandths, in `1..=999`.
        theta_milli: u16,
    },
}

impl std::fmt::Display for KeyDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyDist::Uniform => write!(f, "uni"),
            KeyDist::Zipfian { theta_milli, churn } => write!(f, "zipf{theta_milli}c{churn}"),
            KeyDist::Latest { theta_milli } => write!(f, "latest{theta_milli}"),
        }
    }
}

impl std::str::FromStr for KeyDist {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "uni" || s == "uniform" {
            return Ok(KeyDist::Uniform);
        }
        let num = |t: &str, what: &str| {
            t.parse::<u32>()
                .map_err(|_| format!("bad {what} in key distribution {s:?}"))
        };
        if let Some(rest) = s.strip_prefix("zipf") {
            let (theta, churn) = match rest.split_once('c') {
                Some((t, c)) => (num(t, "theta")?, num(c, "churn")?),
                None => (num(rest, "theta")?, 0),
            };
            return Ok(KeyDist::Zipfian {
                theta_milli: theta as u16,
                churn,
            });
        }
        if let Some(rest) = s.strip_prefix("latest") {
            return Ok(KeyDist::Latest {
                theta_milli: num(rest, "theta")? as u16,
            });
        }
        Err(format!(
            "unknown key distribution {s:?} (want uni, zipf<theta>[c<churn>], latest<theta>)"
        ))
    }
}

/// Operation shares of a mixed workload, in percent; the insert share
/// is the remainder. `Copy + Eq` on purpose: sweep case descriptors
/// embed it, and failure lines must round-trip through
/// [`Display`](std::fmt::Display)/[`FromStr`](std::str::FromStr) for
/// CLI replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSpec {
    /// Point-read share.
    pub read_pct: u8,
    /// Blind-update share.
    pub update_pct: u8,
    /// Read-modify-write share (YCSB F).
    pub rmw_pct: u8,
    /// Range-scan share (YCSB E).
    pub scan_pct: u8,
    /// Remove share — the Pattern-1 free-path hammer.
    pub remove_pct: u8,
    /// Longest scan, in keys (each scan draws 1..=max uniformly).
    pub max_scan_len: u8,
    /// Key-popularity distribution for live-key operations.
    pub dist: KeyDist,
}

/// YCSB's default zipfian skew, in thousandths.
const YCSB_THETA: u16 = 990;

impl MixSpec {
    /// YCSB A: 50% reads / 50% updates, zipfian.
    pub const YCSB_A: MixSpec = MixSpec::point(50, 50, 0, 0, KeyDist::zipf());
    /// YCSB B: 95% reads / 5% updates, zipfian.
    pub const YCSB_B: MixSpec = MixSpec::point(95, 5, 0, 0, KeyDist::zipf());
    /// YCSB C: 100% reads, zipfian.
    pub const YCSB_C: MixSpec = MixSpec::point(100, 0, 0, 0, KeyDist::zipf());
    /// YCSB D: 95% reads / 5% inserts, reads skewed to latest keys.
    pub const YCSB_D: MixSpec = MixSpec::point(
        95,
        0,
        0,
        0,
        KeyDist::Latest {
            theta_milli: YCSB_THETA,
        },
    );
    /// YCSB E: 95% scans / 5% inserts, zipfian scan cursors.
    pub const YCSB_E: MixSpec = MixSpec {
        read_pct: 0,
        update_pct: 0,
        rmw_pct: 0,
        scan_pct: 95,
        remove_pct: 0,
        max_scan_len: 16,
        dist: KeyDist::zipf(),
    };
    /// YCSB F: 50% reads / 50% read-modify-writes, zipfian.
    pub const YCSB_F: MixSpec = MixSpec::point(50, 0, 50, 0, KeyDist::zipf());
    /// Delete-heavy: 35% removes balanced by 35% inserts over a
    /// uniform live set — every third operation exercises the
    /// Pattern-1 free path or re-allocates over freed lines.
    pub const DELETE_HEAVY: MixSpec = MixSpec::point(15, 15, 0, 35, KeyDist::Uniform);
    /// [`DELETE_HEAVY`](Self::DELETE_HEAVY) under churning zipfian
    /// skew: removes concentrate on a migrating hot set, so the same
    /// lines are freed, re-allocated and re-freed across phases.
    pub const DELETE_HEAVY_ZIPF: MixSpec = MixSpec::point(
        15,
        15,
        0,
        35,
        KeyDist::Zipfian {
            theta_milli: YCSB_THETA,
            churn: 64,
        },
    );
    /// The legacy crash-sweep churn mix (5% reads / 15% updates / 20%
    /// removes / 60% inserts, uniform) — PR 2's sweep traffic, kept as
    /// the default [`SweepCase`](crate::crashsweep::SweepCase) mix.
    pub const CHURN: MixSpec = MixSpec::point(5, 15, 0, 20, KeyDist::Uniform);

    /// Name → spec table for the CLI and the bench matrix.
    pub const NAMED: &'static [(&'static str, MixSpec)] = &[
        ("a", MixSpec::YCSB_A),
        ("b", MixSpec::YCSB_B),
        ("c", MixSpec::YCSB_C),
        ("d", MixSpec::YCSB_D),
        ("e", MixSpec::YCSB_E),
        ("f", MixSpec::YCSB_F),
        ("delete-heavy", MixSpec::DELETE_HEAVY),
        ("delete-heavy-zipf", MixSpec::DELETE_HEAVY_ZIPF),
        ("churn", MixSpec::CHURN),
    ];

    /// A scan-free mix (most of the named family).
    const fn point(read: u8, update: u8, rmw: u8, remove: u8, dist: KeyDist) -> MixSpec {
        MixSpec {
            read_pct: read,
            update_pct: update,
            rmw_pct: rmw,
            scan_pct: 0,
            remove_pct: remove,
            max_scan_len: 0,
            dist,
        }
    }

    /// The insert share (the remainder after the explicit shares).
    pub fn insert_pct(&self) -> u8 {
        100 - self.read_pct - self.update_pct - self.rmw_pct - self.scan_pct - self.remove_pct
    }

    /// The registry name of this spec, if it has one.
    pub fn name(&self) -> Option<&'static str> {
        MixSpec::NAMED
            .iter()
            .find(|(_, m)| m == self)
            .map(|(n, _)| *n)
    }

    /// Checks share arithmetic; called by the generator.
    fn validate(&self) {
        assert!(
            self.read_pct as u16
                + self.update_pct as u16
                + self.rmw_pct as u16
                + self.scan_pct as u16
                + self.remove_pct as u16
                <= 100,
            "percentages exceed 100"
        );
        if self.scan_pct > 0 {
            assert!(self.max_scan_len > 0, "scan mix needs max_scan_len > 0");
        }
    }
}

impl std::fmt::Display for MixSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(name) = self.name() {
            return write!(f, "{name}");
        }
        write!(
            f,
            "r{}u{}w{}s{}d{}l{}:{}",
            self.read_pct,
            self.update_pct,
            self.rmw_pct,
            self.scan_pct,
            self.remove_pct,
            self.max_scan_len,
            self.dist
        )
    }
}

impl std::str::FromStr for MixSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((_, m)) = MixSpec::NAMED.iter().find(|(n, _)| *n == s) {
            return Ok(*m);
        }
        // r<read>u<update>w<rmw>s<scan>d<remove>l<maxscan>:<dist>
        let (shares, dist) = s
            .split_once(':')
            .ok_or_else(|| format!("unknown mix {s:?} (not a name, no ':<dist>' suffix)"))?;
        let mut rest = shares;
        let mut take = |tag: char| -> Result<u8, String> {
            rest = rest
                .strip_prefix(tag)
                .ok_or_else(|| format!("mix {s:?}: expected '{tag}' at {rest:?}"))?;
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            let (digits, tail) = rest.split_at(end);
            rest = tail;
            digits
                .parse()
                .map_err(|_| format!("mix {s:?}: bad share after '{tag}'"))
        };
        let spec = MixSpec {
            read_pct: take('r')?,
            update_pct: take('u')?,
            rmw_pct: take('w')?,
            scan_pct: take('s')?,
            remove_pct: take('d')?,
            max_scan_len: take('l')?,
            dist: dist.parse()?,
        };
        if !rest.is_empty() {
            return Err(format!("mix {s:?}: trailing {rest:?}"));
        }
        let shares = spec.read_pct as u16
            + spec.update_pct as u16
            + spec.rmw_pct as u16
            + spec.scan_pct as u16
            + spec.remove_pct as u16;
        if shares > 100 {
            return Err(format!("mix {s:?}: shares sum to {shares} > 100"));
        }
        if spec.scan_pct > 0 && spec.max_scan_len == 0 {
            return Err(format!("mix {s:?}: scan share needs l > 0"));
        }
        Ok(spec)
    }
}

impl KeyDist {
    /// YCSB's default zipfian (theta 0.99, no churn).
    pub const fn zipf() -> KeyDist {
        KeyDist::Zipfian {
            theta_milli: YCSB_THETA,
            churn: 0,
        }
    }
}

/// Generates a mixed workload in the style of YCSB's run phases: after
/// a load of `load` keys, `ops` operations follow with the given read
/// and remove percentages (the remainder are fresh inserts). Reads and
/// removes target previously inserted, not-yet-removed keys; the mix
/// is deterministic for a seed. See [`ycsb_mixed_with_updates`] for
/// mixes that also replace values (YCSB A/B style).
///
/// # Panics
///
/// Panics if `read_pct + remove_pct > 100` or `value_size` is not a
/// multiple of 8.
pub fn ycsb_mixed(
    load: usize,
    ops: usize,
    value_size: usize,
    seed: u64,
    read_pct: u8,
    remove_pct: u8,
) -> (Vec<YcsbOp>, Vec<MixedOp>) {
    ycsb_mixed_with_updates(load, ops, value_size, seed, read_pct, 0, remove_pct)
}

/// [`ycsb_mixed`] with an update share: YCSB A is (50 read / 50
/// update), YCSB B is (95 read / 5 update). Updates target live keys
/// with fresh deterministic values.
///
/// # Panics
///
/// Panics if the percentages exceed 100 or `value_size` is not a
/// multiple of 8.
pub fn ycsb_mixed_with_updates(
    load: usize,
    ops: usize,
    value_size: usize,
    seed: u64,
    read_pct: u8,
    update_pct: u8,
    remove_pct: u8,
) -> (Vec<YcsbOp>, Vec<MixedOp>) {
    ycsb_mix(
        load,
        ops,
        value_size,
        seed,
        &MixSpec {
            read_pct,
            update_pct,
            rmw_pct: 0,
            scan_pct: 0,
            remove_pct,
            max_scan_len: 0,
            dist: KeyDist::Uniform,
        },
    )
}

/// Picks a live-set index for one operation under `spec.dist`.
fn pick_live(
    rng: &mut SimRng,
    zipf: Option<&Zipf>,
    dist: &KeyDist,
    len: usize,
    op_index: usize,
    seed: u64,
) -> usize {
    match dist {
        KeyDist::Uniform => rng.gen_usize(0..len),
        KeyDist::Zipfian { churn, .. } => {
            let rank = zipf.expect("zipf sampler").sample(rng);
            // Scramble the rank so the hot set is a pseudo-random
            // subset of live keys; re-salt per churn phase so the hot
            // set migrates mid-run.
            let phase = if *churn > 0 {
                (op_index / *churn as usize) as u64
            } else {
                0
            };
            let mut s = seed ^ phase.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let salt = splitmix64(&mut s);
            let mut m = rank ^ salt;
            (splitmix64(&mut m) % len as u64) as usize
        }
        KeyDist::Latest { .. } => {
            // Rank 0 = most recently inserted live key (tail of the
            // insertion-ordered live vector).
            let rank = zipf.expect("zipf sampler").sample(rng) % len as u64;
            len - 1 - rank as usize
        }
    }
}

/// Generates a full YCSB-style mixed workload: a load phase of `load`
/// inserts, then `ops` operations drawn from `spec`'s shares under its
/// key-popularity distribution. Reads, updates, read-modify-writes,
/// scans and removes target live keys; inserts draw from a disjoint
/// fresh-key pool; the whole trace is deterministic for a seed.
///
/// Scans materialise their expected result keys (the live keys at that
/// point in the trace, ascending from the cursor), so executors can
/// check range results exactly and recovery oracles can replay scans
/// as no-ops.
///
/// Removal-tolerant note: when the live set is empty, every roll falls
/// back to an insert.
///
/// # Panics
///
/// Panics if the shares exceed 100, `value_size` is not a multiple of
/// 8 (or is below 16 with update/rmw shares — see
/// [`update_value_for`]), or a scan share comes with
/// `max_scan_len == 0`.
pub fn ycsb_mix(
    load: usize,
    ops: usize,
    value_size: usize,
    seed: u64,
    spec: &MixSpec,
) -> (Vec<YcsbOp>, Vec<MixedOp>) {
    spec.validate();
    let loaded = ycsb_load(load, value_size, seed);
    let extra = ycsb_load(load + ops, value_size, seed ^ 0x5EED);
    let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
    let mut live: Vec<u64> = loaded.iter().map(|o| o.key).collect();
    let initial: std::collections::BTreeSet<u64> = live.iter().copied().collect();
    let mut fresh = extra.into_iter().filter(move |o| !initial.contains(&o.key));
    // Ordered mirror of the live set, only maintained when scans can
    // occur (delete-heavy million-op traces skip the O(log n) upkeep).
    let mut sorted: std::collections::BTreeSet<u64> = if spec.scan_pct > 0 {
        live.iter().copied().collect()
    } else {
        Default::default()
    };
    let zipf = match spec.dist {
        KeyDist::Zipfian { theta_milli, .. } | KeyDist::Latest { theta_milli } => Some(Zipf::new(
            (load + ops).max(2) as u64,
            u32::from(theta_milli),
        )),
        KeyDist::Uniform => None,
    };
    let t_read = spec.read_pct;
    let t_update = t_read + spec.update_pct;
    let t_rmw = t_update + spec.rmw_pct;
    let t_scan = t_rmw + spec.scan_pct;
    let t_remove = t_scan + spec.remove_pct;
    let mut out = Vec::with_capacity(ops);
    let mut version = 0u64;
    for op_index in 0..ops {
        let roll = rng.gen_range(0..100) as u8;
        if roll >= t_remove || live.is_empty() {
            let op = fresh.next().expect("fresh key pool exhausted");
            live.push(op.key);
            if spec.scan_pct > 0 {
                sorted.insert(op.key);
            }
            out.push(MixedOp::Insert(op));
            continue;
        }
        let i = pick_live(
            &mut rng,
            zipf.as_ref(),
            &spec.dist,
            live.len(),
            op_index,
            seed,
        );
        if roll < t_read {
            out.push(MixedOp::Read(live[i]));
        } else if roll < t_update {
            version += 1;
            let key = live[i];
            out.push(MixedOp::Update(YcsbOp {
                key,
                value: update_value_for(key, version, value_size),
            }));
        } else if roll < t_rmw {
            version += 1;
            let key = live[i];
            out.push(MixedOp::Rmw(YcsbOp {
                key,
                value: update_value_for(key, version, value_size),
            }));
        } else if roll < t_scan {
            let want = 1 + rng.gen_usize(0..spec.max_scan_len as usize);
            let keys: Vec<u64> = sorted.range(live[i]..).take(want).copied().collect();
            debug_assert!(!keys.is_empty());
            out.push(MixedOp::Scan { keys });
        } else {
            let key = live.swap_remove(i);
            if spec.scan_pct > 0 {
                sorted.remove(&key);
            }
            out.push(MixedOp::Remove(key));
        }
    }
    (loaded, out)
}

#[cfg(test)]
mod mixed_tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn mixed_ops_respect_liveness() {
        let (load, ops) = ycsb_mixed(50, 200, 16, 3, 40, 20);
        let mut live: BTreeSet<u64> = load.iter().map(|o| o.key).collect();
        for op in &ops {
            match op {
                MixedOp::Insert(o) => {
                    assert!(live.insert(o.key), "insert of live key");
                }
                MixedOp::Read(k) => assert!(live.contains(k), "read of dead key"),
                MixedOp::Remove(k) => {
                    assert!(live.remove(k), "remove of dead key");
                }
                MixedOp::Update(o) => assert!(live.contains(&o.key), "update of dead key"),
                MixedOp::Rmw(_) | MixedOp::Scan { .. } => {
                    unreachable!("ycsb_mixed never emits rmw/scan")
                }
            }
        }
    }

    #[test]
    fn mixed_is_deterministic() {
        assert_eq!(
            ycsb_mixed(10, 50, 16, 9, 50, 10),
            ycsb_mixed(10, 50, 16, 9, 50, 10)
        );
    }

    #[test]
    fn pure_read_mix_has_no_mutations() {
        let (_, ops) = ycsb_mixed(20, 100, 16, 1, 100, 0);
        assert!(ops.iter().all(|o| matches!(o, MixedOp::Read(_))));
    }

    #[test]
    #[should_panic(expected = "percentages exceed 100")]
    fn overfull_mix_rejected() {
        let _ = ycsb_mixed(10, 10, 16, 0, 80, 30);
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ycsb_a_style_mix() {
        let (_, ops) = ycsb_mixed_with_updates(50, 400, 16, 2, 50, 50, 0);
        let updates = ops
            .iter()
            .filter(|o| matches!(o, MixedOp::Update(_)))
            .count();
        let reads = ops.iter().filter(|o| matches!(o, MixedOp::Read(_))).count();
        assert_eq!(updates + reads, 400, "50/50 read-update mix");
        assert!(updates > 120 && reads > 120);
    }

    #[test]
    fn updates_carry_fresh_values() {
        let (_, ops) = ycsb_mixed_with_updates(5, 50, 16, 3, 0, 100, 0);
        for op in &ops {
            let MixedOp::Update(o) = op else {
                panic!("pure update mix")
            };
            assert_eq!(o.value.len(), 16);
        }
    }

    #[test]
    fn update_values_never_alias_across_keys() {
        // The old derivation (`key ^ version.rotate_left(32)`) aliased
        // whenever key_a ^ key_b == (v_a ^ v_b) << 32. The new payload
        // carries (key, version) verbatim, so all update values in a
        // run are pairwise distinct and distinct from insert values.
        let (load, ops) = ycsb_mixed_with_updates(40, 400, 16, 8, 0, 60, 20);
        let mut seen: BTreeSet<Vec<u8>> = load.iter().map(|o| o.value.clone()).collect();
        assert_eq!(seen.len(), 40);
        for op in &ops {
            match op {
                MixedOp::Update(o) | MixedOp::Insert(o) | MixedOp::Rmw(o) => {
                    assert!(seen.insert(o.value.clone()), "aliased value for {}", o.key);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn update_value_embeds_coordinates() {
        let v = update_value_for(0xDEAD_BEEF, 7, 32);
        assert_eq!(v.len(), 32);
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 0xDEAD_BEEF);
        assert_ne!(update_value_for(1, 2, 16), update_value_for(2, 1, 16));
        assert_ne!(update_value_for(1, 2, 16), update_value_for(1, 3, 16));
    }

    #[test]
    #[should_panic(expected = "two whole words")]
    fn single_word_update_values_rejected() {
        let _ = update_value_for(1, 1, 8);
    }
}

#[cfg(test)]
mod mix_tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    /// Replays a generated trace against a model map, checking every
    /// op is legal at its point in the sequence.
    fn check_liveness(load: &[YcsbOp], ops: &[MixedOp]) {
        let mut live: BTreeMap<u64, Vec<u8>> =
            load.iter().map(|o| (o.key, o.value.clone())).collect();
        for op in ops {
            match op {
                MixedOp::Insert(o) => {
                    assert!(
                        live.insert(o.key, o.value.clone()).is_none(),
                        "insert of live key"
                    );
                }
                MixedOp::Read(k) => assert!(live.contains_key(k), "read of dead key"),
                MixedOp::Remove(k) => {
                    assert!(live.remove(k).is_some(), "remove of dead key");
                }
                MixedOp::Update(o) | MixedOp::Rmw(o) => {
                    assert!(
                        live.insert(o.key, o.value.clone()).is_some(),
                        "update of dead key"
                    );
                }
                MixedOp::Scan { keys } => {
                    assert!(!keys.is_empty(), "empty scan");
                    // Result keys must be exactly the live keys in
                    // [first, last] — contiguous in key order.
                    let lo = keys[0];
                    let hi = *keys.last().unwrap();
                    let expect: Vec<u64> = live.range(lo..=hi).map(|(k, _)| *k).collect();
                    assert_eq!(&expect, keys, "scan result not contiguous-live");
                }
            }
        }
    }

    #[test]
    fn named_mixes_are_legal_traces() {
        for (name, spec) in MixSpec::NAMED {
            let (load, ops) = ycsb_mix(60, 300, 16, 11, spec);
            assert_eq!(ops.len(), 300, "mix {name}");
            check_liveness(&load, &ops);
        }
    }

    #[test]
    fn mixes_are_deterministic() {
        for (_, spec) in MixSpec::NAMED {
            assert_eq!(
                ycsb_mix(40, 200, 16, 5, spec),
                ycsb_mix(40, 200, 16, 5, spec)
            );
        }
        assert_ne!(
            ycsb_mix(40, 200, 16, 5, &MixSpec::YCSB_A),
            ycsb_mix(40, 200, 16, 6, &MixSpec::YCSB_A)
        );
    }

    #[test]
    fn delete_heavy_hits_the_free_path() {
        let (_, ops) = ycsb_mix(100, 1000, 16, 3, &MixSpec::DELETE_HEAVY);
        let removes = ops
            .iter()
            .filter(|o| matches!(o, MixedOp::Remove(_)))
            .count();
        assert!(
            removes >= 300,
            "delete-heavy produced {removes}/1000 removes"
        );
    }

    #[test]
    fn zipfian_mix_skews_key_popularity() {
        let (_, ops) = ycsb_mix(500, 4000, 16, 7, &MixSpec::YCSB_C);
        let mut hits: BTreeMap<u64, usize> = BTreeMap::new();
        for op in &ops {
            if let MixedOp::Read(k) = op {
                *hits.entry(*k).or_default() += 1;
            }
        }
        let mut counts: Vec<usize> = hits.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts.iter().take(10).sum();
        // Uniform over 500 keys would put ~2% in any 10 keys; zipfian
        // theta 0.99 concentrates far more.
        assert!(
            top10 * 100 / 4000 >= 20,
            "top-10 keys got {top10}/4000 reads — not skewed"
        );
    }

    #[test]
    fn latest_mix_prefers_recent_inserts() {
        let (load, ops) = ycsb_mix(200, 2000, 16, 9, &MixSpec::YCSB_D);
        // Keys inserted during the run (recent) should absorb a large
        // share of reads despite being a minority of the live set.
        let initial: BTreeSet<u64> = load.iter().map(|o| o.key).collect();
        let reads = ops.iter().filter(|o| matches!(o, MixedOp::Read(_))).count();
        let recent_reads = ops
            .iter()
            .filter(|o| matches!(o, MixedOp::Read(k) if !initial.contains(k)))
            .count();
        assert!(reads > 1500);
        assert!(
            recent_reads * 100 / reads >= 10,
            "latest dist read fresh keys only {recent_reads}/{reads} times"
        );
    }

    #[test]
    fn churn_migrates_the_hot_set() {
        let spec = MixSpec {
            read_pct: 100,
            update_pct: 0,
            rmw_pct: 0,
            scan_pct: 0,
            remove_pct: 0,
            max_scan_len: 0,
            dist: KeyDist::Zipfian {
                theta_milli: 990,
                churn: 500,
            },
        };
        let (_, ops) = ycsb_mix(400, 1000, 16, 13, &spec);
        let top_key = |slice: &[MixedOp]| -> u64 {
            let mut hits: BTreeMap<u64, usize> = BTreeMap::new();
            for op in slice {
                if let MixedOp::Read(k) = op {
                    *hits.entry(*k).or_default() += 1;
                }
            }
            hits.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        assert_ne!(
            top_key(&ops[..500]),
            top_key(&ops[500..]),
            "hot set did not migrate across churn phases"
        );
    }

    #[test]
    fn mix_spec_display_round_trips() {
        for (name, spec) in MixSpec::NAMED {
            assert_eq!(spec.to_string(), *name);
            assert_eq!(name.parse::<MixSpec>().unwrap(), *spec);
        }
        let custom = MixSpec {
            read_pct: 10,
            update_pct: 20,
            rmw_pct: 5,
            scan_pct: 15,
            remove_pct: 30,
            max_scan_len: 8,
            dist: KeyDist::Zipfian {
                theta_milli: 750,
                churn: 32,
            },
        };
        let s = custom.to_string();
        assert_eq!(s, "r10u20w5s15d30l8:zipf750c32");
        assert_eq!(s.parse::<MixSpec>().unwrap(), custom);
        let latest = MixSpec {
            dist: KeyDist::Latest { theta_milli: 990 },
            ..custom
        };
        assert_eq!(latest.to_string().parse::<MixSpec>().unwrap(), latest);
        assert!("nope".parse::<MixSpec>().is_err());
        assert!("r10:uni".parse::<MixSpec>().is_err());
    }

    #[test]
    fn insert_share_is_remainder() {
        assert_eq!(MixSpec::DELETE_HEAVY.insert_pct(), 35);
        assert_eq!(MixSpec::YCSB_C.insert_pct(), 0);
        assert_eq!(MixSpec::CHURN.insert_pct(), 60);
    }

    #[test]
    fn scan_mix_walks_ordered_ranges() {
        let (_, ops) = ycsb_mix(100, 300, 16, 21, &MixSpec::YCSB_E);
        let scans: Vec<_> = ops
            .iter()
            .filter_map(|o| match o {
                MixedOp::Scan { keys } => Some(keys),
                _ => None,
            })
            .collect();
        assert!(scans.len() > 200, "E mix produced {} scans", scans.len());
        assert!(scans.iter().any(|k| k.len() > 1), "only singleton scans");
        for keys in scans {
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "scan not ascending");
            assert!(keys.len() <= MixSpec::YCSB_E.max_scan_len as usize);
        }
    }
}
