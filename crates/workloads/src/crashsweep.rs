//! Exhaustive persist-event crash sweep with oracle-checked recovery.
//!
//! The commit-phase crash matrix (`CommitPhase`) covers four coarse
//! points of the commit sequence; everything *between* them — the
//! individual WPQ drains, log-record pack writes, lazy-drain forced
//! persists, log truncations — is exactly where selective logging and
//! lazy persistency could silently break recoverability. This module
//! enumerates those states exhaustively:
//!
//! 1. [`count_events`] runs a fixed seeded workload trace once and
//!    returns how many persist events `N` it generates (sanity-checking
//!    the crash-free end state against a volatile oracle on the way).
//! 2. [`run_crash_at`] replays the identical trace with the device
//!    armed to crash at event `k` (see
//!    `slpmt_core::Machine::arm_crash_at_event`): events `1..=k` are
//!    durable, every later mutation is dropped. It then crashes, runs
//!    log replay plus the structure's own recovery, and checks the
//!    result against the oracle.
//! 3. [`sweep_serial`] does that for every `k ∈ 1..=N`. The parallel
//!    fan-out over a scheme × workload matrix lives in
//!    `slpmt_bench::crashsweep`.
//!
//! ### The oracle check
//!
//! Commit markers persist in transaction order, so the durably
//! committed transactions always form a prefix of the sequence
//! numbers. Each trace operation records the sequence number of the
//! last transaction it ran; `b` = the number of operations whose last
//! transaction has a durable marker. Auxiliary transactions an
//! operation runs *before* its main one (a hashtable update closing a
//! redo window, a resize) are membership-neutral, so the recovered
//! structure must equal a `BTreeMap` oracle after exactly `b`
//! operations: same length, every key mapped to its exact value,
//! structure invariants intact, and the heap clean after the leak GC
//! ([`inspect`](crate::inspector::inspect)-verified).
//!
//! Battery-backed configurations (§V-E) are *not* swept: with the
//! caches inside the persistence domain, the state a power failure
//! leaves behind depends on the volatile cache contents at failure
//! time, not on a prefix of the persist-event trace, so "crash at
//! event k" does not define their crash state. (No named [`Scheme`]
//! enables the battery; it is a separate `MachineConfig` flag.)

use crate::ctx::{AnnotationSource, PmContext};
use crate::inspector::inspect;
use crate::runner::{DurableIndex, IndexKind};
use crate::ycsb::{ycsb_mix, MixSpec, MixedOp};
use slpmt_annotate::AnnotationTable;
use slpmt_core::{Scheme, SchemeKind};
use slpmt_prng::splitmix64;
use std::collections::BTreeMap;
use std::fmt;

/// One cell of a crash sweep: a scheme × workload pair plus the trace
/// parameters that make it reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCase {
    /// Design to simulate (hardware scheme or software PTM flavour).
    pub scheme: SchemeKind,
    /// Index workload to drive.
    pub kind: IndexKind,
    /// Trace seed.
    pub seed: u64,
    /// Number of trace operations (each mutating operation is at least
    /// one durable transaction).
    pub ops: usize,
    /// Value payload size in bytes (whole words).
    pub value_size: usize,
    /// Operation mix of the trace (defaults to the legacy churn mix).
    pub mix: MixSpec,
    /// Keys inserted by the load phase before the mixed trace (their
    /// inserts are part of the sweep trace, so crash points land in
    /// the load phase too). Read-only mixes need `load > 0`.
    pub load: usize,
}

impl SweepCase {
    /// A sweep case with the standard trace shape (`ops` operations,
    /// 32-byte values, the legacy churn mix, no load phase).
    pub fn new(scheme: impl Into<SchemeKind>, kind: IndexKind, seed: u64, ops: usize) -> Self {
        SweepCase {
            scheme: scheme.into(),
            kind,
            seed,
            ops,
            value_size: 32,
            mix: MixSpec::CHURN,
            load: 0,
        }
    }

    /// [`SweepCase::new`] under a specific mix with a load phase.
    pub fn with_mix(
        scheme: impl Into<SchemeKind>,
        kind: IndexKind,
        seed: u64,
        load: usize,
        ops: usize,
        mix: MixSpec,
    ) -> Self {
        SweepCase {
            scheme: scheme.into(),
            kind,
            seed,
            ops,
            value_size: 32,
            mix,
            load,
        }
    }
}

impl fmt::Display for SweepCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheme={} workload={} seed={} ops={}",
            self.scheme, self.kind, self.seed, self.ops
        )?;
        // Keep historical failure lines byte-stable for default cases.
        if self.mix != MixSpec::CHURN || self.load != 0 {
            write!(f, " mix={} load={}", self.mix, self.load)?;
        }
        Ok(())
    }
}

/// One failed crash point, carrying everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// The failing cell.
    pub case: SweepCase,
    /// Persist-event index the crash was armed at.
    pub k: u64,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crashsweep FAIL {} k={}: {}",
            self.case, self.k, self.detail
        )
    }
}

/// The schemes a persist-event sweep covers: every named design,
/// undo and redo (battery-backed §V-E configurations are excluded —
/// see the module docs).
pub const SWEEP_SCHEMES: [Scheme; 10] = [
    Scheme::Fg,
    Scheme::FgLg,
    Scheme::FgLz,
    Scheme::Slpmt,
    Scheme::Atom,
    Scheme::Ede,
    Scheme::FgCl,
    Scheme::SlpmtCl,
    Scheme::FgRedo,
    Scheme::SlpmtRedo,
];

/// The deterministic operation trace of a case: the mix's load-phase
/// inserts followed by its seeded operation stream, starting from an
/// empty structure. The default ([`MixSpec::CHURN`], no load) keeps
/// PR 2's trace shape: 5% reads, 15% updates, 20% removes, the rest
/// inserts — enough churn to exercise remove frees, update
/// copy-on-write swaps and (at these sizes) hashtable resizes, while
/// keeping the structure growing so later crash points see non-trivial
/// state.
pub fn trace_ops(case: &SweepCase) -> Vec<MixedOp> {
    let (loaded, mixed) = ycsb_mix(case.load, case.ops, case.value_size, case.seed, &case.mix);
    let mut all: Vec<MixedOp> = loaded.into_iter().map(MixedOp::Insert).collect();
    all.extend(mixed);
    all
}

pub(crate) fn apply(idx: &mut dyn DurableIndex, ctx: &mut PmContext, op: &MixedOp) {
    match op {
        MixedOp::Insert(o) => idx.insert(ctx, o.key, &o.value),
        MixedOp::Read(k) => {
            idx.get(ctx, *k);
        }
        MixedOp::Remove(k) => {
            idx.remove(ctx, *k);
        }
        MixedOp::Update(o) => {
            idx.update(ctx, o.key, &o.value);
        }
        MixedOp::Rmw(o) => {
            idx.get(ctx, o.key);
            idx.update(ctx, o.key, &o.value);
        }
        // Scans are membership- and value-neutral; in the sweep they
        // degrade to point reads of the expected keys so every index
        // kind (ordered or not) runs the same trace.
        MixedOp::Scan { keys } => {
            for k in keys {
                idx.get(ctx, *k);
            }
        }
    }
}

/// Incremental committed-prefix recovery oracle.
///
/// `oracle_after` used to rebuild a `BTreeMap<u64, Vec<u8>>` from
/// scratch — cloning every live payload — once per crash point, which
/// is O(n²) time and allocation across a sweep and unusable at
/// million-op scale. The streaming oracle exploits the sweep's
/// structure instead: crash points are visited in ascending `k`, and
/// the committed-prefix length `b` is nondecreasing in `k`, so one
/// model can advance monotonically through the trace. Values are
/// never cloned: the model maps each key to the index of the trace
/// operation that last wrote it, and checks recompute the expected
/// payload by slicing that operation's buffer ([`YcsbOp`] values are
/// themselves deterministic recomputations of `value_for` /
/// [`update_value_for`](crate::ycsb::update_value_for)).
///
/// Total cost of a whole sweep is O(n) model mutations regardless of
/// the number of crash points — [`work`](StreamingOracle::work)
/// exposes the applied-operation counter so tests can pin the
/// linearity down.
///
/// [`YcsbOp`]: crate::ycsb::YcsbOp
#[derive(Debug)]
pub struct StreamingOracle<'a> {
    ops: &'a [MixedOp],
    applied: usize,
    /// key → index in `ops` of the operation whose value is current.
    model: BTreeMap<u64, u32>,
    work: u64,
}

impl<'a> StreamingOracle<'a> {
    /// A fresh oracle over a trace, positioned before any operation.
    pub fn new(ops: &'a [MixedOp]) -> Self {
        assert!(u32::try_from(ops.len()).is_ok(), "trace too long");
        StreamingOracle {
            ops,
            applied: 0,
            model: BTreeMap::new(),
            work: 0,
        }
    }

    /// The trace this oracle models.
    pub fn ops(&self) -> &'a [MixedOp] {
        self.ops
    }

    /// Number of trace operations currently applied.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Total model mutations ever applied — linear in the trace
    /// length for a full ascending sweep, never quadratic.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Advances the model to the state after the first `b` operations.
    ///
    /// # Panics
    ///
    /// Panics if `b` retreats (crash points must be visited in
    /// ascending order; build a fresh oracle to go back) or exceeds
    /// the trace length.
    pub fn advance_to(&mut self, b: usize) {
        assert!(
            b >= self.applied,
            "streaming oracle cannot retreat ({} -> {b}); build a fresh oracle",
            self.applied
        );
        assert!(b <= self.ops.len(), "prefix beyond trace end");
        while self.applied < b {
            let i = self.applied;
            match &self.ops[i] {
                MixedOp::Insert(o) | MixedOp::Update(o) | MixedOp::Rmw(o) => {
                    self.model.insert(o.key, i as u32);
                    self.work += 1;
                }
                MixedOp::Remove(k) => {
                    self.model.remove(k);
                    self.work += 1;
                }
                MixedOp::Read(_) | MixedOp::Scan { .. } => {}
            }
            self.applied = i + 1;
        }
    }

    /// Number of live keys in the modelled prefix.
    pub fn len(&self) -> usize {
        self.model.len()
    }

    /// Whether the modelled prefix has no live keys.
    pub fn is_empty(&self) -> bool {
        self.model.is_empty()
    }

    /// The expected payload of `key`, borrowed from the trace.
    pub fn expected(&self, key: u64) -> Option<&'a [u8]> {
        self.model.get(&key).map(|&i| match &self.ops[i as usize] {
            MixedOp::Insert(o) | MixedOp::Update(o) | MixedOp::Rmw(o) => o.value.as_slice(),
            _ => unreachable!("model points at a non-writing op"),
        })
    }

    /// Iterates `(key, expected payload)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &'a [u8])> + '_ {
        let ops = self.ops;
        self.model.iter().map(move |(&k, &i)| {
            let v = match &ops[i as usize] {
                MixedOp::Insert(o) | MixedOp::Update(o) | MixedOp::Rmw(o) => o.value.as_slice(),
                _ => unreachable!("model points at a non-writing op"),
            };
            (k, v)
        })
    }

    /// Checks a recovered structure against the modelled prefix: same
    /// key count, every key mapped to its exact payload.
    pub fn check(&self, ctx: &PmContext, idx: &dyn DurableIndex) -> Result<(), String> {
        let b = self.applied;
        if idx.len(ctx) != self.model.len() {
            return Err(format!(
                "{} keys recovered, oracle has {} after {b} committed ops",
                idx.len(ctx),
                self.model.len()
            ));
        }
        for (key, value) in self.iter() {
            let got = idx.value_of(ctx, key);
            if got.as_deref() != Some(value) {
                return Err(format!(
                    "key {key} recovered as {:?}, oracle says {:?} (b={b})",
                    got.map(|v| v.len()),
                    value.len()
                ));
            }
        }
        Ok(())
    }
}

pub(crate) fn build(case: &SweepCase) -> (PmContext, Box<dyn DurableIndex>) {
    let mut ctx = PmContext::new(case.scheme, AnnotationTable::new());
    let idx = case
        .kind
        .build(&mut ctx, case.value_size, AnnotationSource::Manual);
    (ctx, idx)
}

/// Runs the case's trace crash-free, checks the end state against the
/// oracle, and returns the number of persist events the trace
/// generated — the sweep domain is `1..=N`.
///
/// # Panics
///
/// Panics if the crash-free run already disagrees with the oracle (the
/// sweep would be meaningless).
pub fn count_events(case: &SweepCase) -> u64 {
    let ops = trace_ops(case);
    let (mut ctx, mut idx) = build(case);
    for op in &ops {
        apply(idx.as_mut(), &mut ctx, op);
    }
    let mut oracle = StreamingOracle::new(&ops);
    oracle.advance_to(ops.len());
    if let Err(e) = oracle.check(&ctx, idx.as_ref()) {
        panic!("{case}: crash-free run disagrees with the oracle: {e}");
    }
    ctx.machine().persist_event_count()
}

/// Replays the case's trace with a crash armed at persist event `k`,
/// recovers, and checks the recovered structure against the oracle.
///
/// # Errors
///
/// Returns the reproducible failure tuple when the recovered state
/// violates committed-prefix durability, value equality, a structure
/// invariant, or heap-leak accounting.
pub fn run_crash_at(case: &SweepCase, k: u64) -> Result<(), SweepFailure> {
    let ops = trace_ops(case);
    let mut oracle = StreamingOracle::new(&ops);
    run_crash_at_streaming(case, &mut oracle, k)
}

/// [`run_crash_at`] against a caller-owned [`StreamingOracle`] over
/// the case's trace ([`trace_ops`]), so a sweep visiting ascending `k`
/// advances one model instead of rebuilding it per point. The
/// committed-prefix length `b` is nondecreasing in `k` (a later crash
/// point can only commit more transactions), which is exactly the
/// oracle's monotonicity contract.
pub fn run_crash_at_streaming(
    case: &SweepCase,
    oracle: &mut StreamingOracle<'_>,
    k: u64,
) -> Result<(), SweepFailure> {
    let fail = |detail: String| SweepFailure {
        case: *case,
        k,
        detail,
    };
    let ops = oracle.ops();
    let (mut ctx, mut idx) = build(case);
    ctx.machine_mut().arm_crash_at_event(k);
    // Sequence number of the last transaction each executed operation
    // ran (reads re-record the previous value — they commit nothing).
    let mut op_seq = Vec::with_capacity(ops.len());
    for op in ops {
        apply(idx.as_mut(), &mut ctx, op);
        op_seq.push(ctx.txn_seq());
        if ctx.machine().crash_tripped() {
            break;
        }
    }
    // Power failure: volatile state is lost; events 1..=k survive.
    ctx.crash();
    // Durably committed transactions form a prefix of the sequence
    // numbers (markers persist in commit order), so the committed
    // operation count is a prefix length too.
    let marker = ctx.durable_commit_seq();
    let b = op_seq.iter().take_while(|&&seq| seq <= marker).count();
    // Advance the model before recovery: if recovery panics, the
    // oracle still holds a valid prefix for the next (larger) k.
    oracle.advance_to(b);
    ctx.recover();
    idx.recover(&mut ctx);
    let reachable = idx.reachable(&ctx);
    let leaks = inspect(&ctx, &reachable).leaks.len();
    ctx.gc(&reachable);
    if let Err(e) = idx.check_invariants(&ctx) {
        return Err(fail(format!("invariant violated after recovery: {e}")));
    }
    let after_gc = inspect(&ctx, &reachable);
    if !after_gc.is_clean() {
        return Err(fail(format!(
            "{} allocations still leaked after GC reclaimed {leaks}",
            after_gc.leaks.len()
        )));
    }
    oracle
        .check(&ctx, idx.as_ref())
        .map_err(|e| fail(format!("{e} (marker seq {marker})")))
}

/// Replays the machine-level sequence of [`run_crash_at`] — trace,
/// crash at persist event `k`, power failure, log replay — with event
/// tracing enabled, and returns the captured records. Structure-level
/// recovery is skipped (it can legitimately panic on the failing
/// tuples this capture path exists for); panics during log replay are
/// swallowed so the trace of everything up to the panic still comes
/// back. Deterministic: the same `(case, k)` always yields the same
/// records.
pub fn trace_crash_at(case: &SweepCase, k: u64) -> Vec<slpmt_core::TraceRecord> {
    let ops = trace_ops(case);
    let (mut ctx, mut idx) = build(case);
    ctx.enable_tracing(1 << 20);
    ctx.machine_mut().arm_crash_at_event(k);
    for op in &ops {
        apply(idx.as_mut(), &mut ctx, op);
        if ctx.machine().crash_tripped() {
            break;
        }
    }
    ctx.crash();
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.recover()));
    ctx.take_trace()
}

/// [`run_crash_at`] with panics converted into failure tuples, so a
/// sweep over thousands of crash points reports `(scheme, workload,
/// seed, k)` instead of dying mid-matrix.
pub fn check_point(case: &SweepCase, k: u64) -> Result<(), SweepFailure> {
    let ops = trace_ops(case);
    let mut oracle = StreamingOracle::new(&ops);
    check_point_streaming(case, &mut oracle, k)
}

/// [`check_point`] against a caller-owned streaming oracle. The
/// oracle's prefix is advanced *before* the recovery checks run, so a
/// panicking point leaves it valid for the next ascending `k`.
pub fn check_point_streaming(
    case: &SweepCase,
    oracle: &mut StreamingOracle<'_>,
    k: u64,
) -> Result<(), SweepFailure> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_crash_at_streaming(case, oracle, k)
    })) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(SweepFailure {
                case: *case,
                k,
                detail: format!("panic: {msg}"),
            })
        }
    }
}

/// Sweeps every crash point of one case serially, returning all
/// failures (empty = the case is crash-consistent at every persist
/// event). One streaming oracle serves the whole ascending sweep.
pub fn sweep_serial(case: &SweepCase) -> Vec<SweepFailure> {
    let n = count_events(case);
    let ops = trace_ops(case);
    let mut oracle = StreamingOracle::new(&ops);
    (1..=n)
        .filter_map(|k| check_point_streaming(case, &mut oracle, k).err())
        .collect()
}

/// `count` distinct seeded crash points of a case, ascending, drawn
/// from `1..=N` (`N` = [`count_events`]). The big named-mix traces
/// generate far more persist events than a sweep can visit
/// exhaustively; this is the sampled domain the YCSB gates use —
/// deterministic for a `(case, count)` pair, and ascending so one
/// streaming oracle covers all of them.
pub fn sweep_points(case: &SweepCase, count: usize) -> Vec<u64> {
    sample_points(case.seed, count_events(case), count)
}

/// [`sweep_points`] with the event count already known (parallel
/// drivers learn `N` in their crash-free pass and must sample the
/// identical points).
pub fn sample_points(seed: u64, n: u64, count: usize) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut points = std::collections::BTreeSet::new();
    let mut i = 0u64;
    while points.len() < count.min(n as usize) {
        let mut s = seed.rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i;
        points.insert(1 + splitmix64(&mut s) % n);
        i += 1;
    }
    points.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_mutates_enough() {
        let case = SweepCase::new(Scheme::Slpmt, IndexKind::Hashtable, 7, 60);
        let a = trace_ops(&case);
        assert_eq!(a, trace_ops(&case));
        let mutating = a.iter().filter(|o| !matches!(o, MixedOp::Read(_))).count();
        assert!(mutating >= 50, "trace must carry ≥50 transactions");
    }

    #[test]
    fn oracle_prefix_applies_ops_in_order() {
        let case = SweepCase::new(Scheme::Slpmt, IndexKind::Rbtree, 3, 30);
        let ops = trace_ops(&case);
        let mut oracle = StreamingOracle::new(&ops);
        assert!(oracle.is_empty());
        oracle.advance_to(ops.len());
        assert!(!oracle.is_empty());
        // Work is one model mutation per mutating op — linear, and
        // independent of how many intermediate prefixes were visited.
        let mutating = ops
            .iter()
            .filter(|o| !matches!(o, MixedOp::Read(_) | MixedOp::Scan { .. }))
            .count() as u64;
        assert_eq!(oracle.work(), mutating);
    }

    #[test]
    fn oracle_matches_naive_rebuild_at_every_prefix() {
        // Equivalence with the retired `oracle_after` rebuild: advance
        // one streaming oracle through every prefix and compare against
        // a from-scratch BTreeMap model at each step.
        let case = SweepCase::new(Scheme::Slpmt, IndexKind::Hashtable, 13, 80);
        let ops = trace_ops(&case);
        let mut oracle = StreamingOracle::new(&ops);
        for b in 0..=ops.len() {
            oracle.advance_to(b);
            let mut naive: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
            for op in &ops[..b] {
                match op {
                    MixedOp::Insert(o) | MixedOp::Update(o) | MixedOp::Rmw(o) => {
                        naive.insert(o.key, o.value.clone());
                    }
                    MixedOp::Remove(k) => {
                        naive.remove(k);
                    }
                    MixedOp::Read(_) | MixedOp::Scan { .. } => {}
                }
            }
            assert_eq!(oracle.len(), naive.len(), "prefix {b}");
            for (k, v) in &naive {
                assert_eq!(
                    oracle.expected(*k),
                    Some(v.as_slice()),
                    "prefix {b} key {k}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot retreat")]
    fn oracle_rejects_retreating_prefixes() {
        let case = SweepCase::new(Scheme::Fg, IndexKind::Heap, 2, 20);
        let ops = trace_ops(&case);
        let mut oracle = StreamingOracle::new(&ops);
        oracle.advance_to(10);
        oracle.advance_to(5);
    }

    #[test]
    fn sampled_points_are_ascending_and_deterministic() {
        let case = SweepCase::with_mix(
            Scheme::Slpmt,
            IndexKind::Hashtable,
            9,
            10,
            20,
            MixSpec::DELETE_HEAVY,
        );
        let a = sweep_points(&case, 8);
        assert_eq!(a, sweep_points(&case, 8));
        assert_eq!(a.len(), 8);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let n = count_events(&case);
        assert!(a.iter().all(|&k| k >= 1 && k <= n));
    }

    #[test]
    fn mixed_case_display_round_trips_the_mix() {
        let case = SweepCase::with_mix(
            Scheme::Slpmt,
            IndexKind::Rbtree,
            7,
            50,
            100,
            MixSpec::DELETE_HEAVY_ZIPF,
        );
        let line = case.to_string();
        assert!(line.contains("mix=delete-heavy-zipf"), "{line}");
        assert!(line.contains("load=50"), "{line}");
        // Default cases keep the historical four-field format.
        let legacy = SweepCase::new(Scheme::Fg, IndexKind::Heap, 1, 10).to_string();
        assert!(!legacy.contains("mix="), "{legacy}");
    }

    #[test]
    fn event_count_is_stable_for_a_case() {
        let case = SweepCase::new(Scheme::Fg, IndexKind::Heap, 11, 10);
        assert_eq!(count_events(&case), count_events(&case));
    }

    #[test]
    fn crash_after_all_events_recovers_everything() {
        let case = SweepCase::new(Scheme::Slpmt, IndexKind::Hashtable, 5, 15);
        let n = count_events(&case);
        run_crash_at(&case, n).unwrap();
    }

    #[test]
    fn crash_before_any_event_recovers_empty() {
        // k = 0: the very first durable mutation is dropped, so no
        // transaction ever has a durable marker.
        let case = SweepCase::new(Scheme::Fg, IndexKind::Rbtree, 5, 10);
        run_crash_at(&case, 0).unwrap();
    }

    #[test]
    fn failure_line_is_reproducible() {
        let f = SweepFailure {
            case: SweepCase::new(Scheme::Slpmt, IndexKind::Heap, 42, 50),
            k: 137,
            detail: "boom".into(),
        };
        let line = f.to_string();
        assert!(line.contains("scheme=SLPMT"));
        assert!(line.contains("workload=heap"));
        assert!(line.contains("seed=42"));
        assert!(line.contains("k=137"));
    }
}
