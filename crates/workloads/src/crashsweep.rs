//! Exhaustive persist-event crash sweep with oracle-checked recovery.
//!
//! The commit-phase crash matrix (`CommitPhase`) covers four coarse
//! points of the commit sequence; everything *between* them — the
//! individual WPQ drains, log-record pack writes, lazy-drain forced
//! persists, log truncations — is exactly where selective logging and
//! lazy persistency could silently break recoverability. This module
//! enumerates those states exhaustively:
//!
//! 1. [`count_events`] runs a fixed seeded workload trace once and
//!    returns how many persist events `N` it generates (sanity-checking
//!    the crash-free end state against a volatile oracle on the way).
//! 2. [`run_crash_at`] replays the identical trace with the device
//!    armed to crash at event `k` (see
//!    `slpmt_core::Machine::arm_crash_at_event`): events `1..=k` are
//!    durable, every later mutation is dropped. It then crashes, runs
//!    log replay plus the structure's own recovery, and checks the
//!    result against the oracle.
//! 3. [`sweep_serial`] does that for every `k ∈ 1..=N`. The parallel
//!    fan-out over a scheme × workload matrix lives in
//!    `slpmt_bench::crashsweep`.
//!
//! ### The oracle check
//!
//! Commit markers persist in transaction order, so the durably
//! committed transactions always form a prefix of the sequence
//! numbers. Each trace operation records the sequence number of the
//! last transaction it ran; `b` = the number of operations whose last
//! transaction has a durable marker. Auxiliary transactions an
//! operation runs *before* its main one (a hashtable update closing a
//! redo window, a resize) are membership-neutral, so the recovered
//! structure must equal a `BTreeMap` oracle after exactly `b`
//! operations: same length, every key mapped to its exact value,
//! structure invariants intact, and the heap clean after the leak GC
//! ([`inspect`](crate::inspector::inspect)-verified).
//!
//! Battery-backed configurations (§V-E) are *not* swept: with the
//! caches inside the persistence domain, the state a power failure
//! leaves behind depends on the volatile cache contents at failure
//! time, not on a prefix of the persist-event trace, so "crash at
//! event k" does not define their crash state. (No named [`Scheme`]
//! enables the battery; it is a separate `MachineConfig` flag.)

use crate::ctx::{AnnotationSource, PmContext};
use crate::inspector::inspect;
use crate::runner::{DurableIndex, IndexKind};
use crate::ycsb::{ycsb_mixed_with_updates, MixedOp};
use slpmt_annotate::AnnotationTable;
use slpmt_core::Scheme;
use std::collections::BTreeMap;
use std::fmt;

/// One cell of a crash sweep: a scheme × workload pair plus the trace
/// parameters that make it reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCase {
    /// Hardware design to simulate.
    pub scheme: Scheme,
    /// Index workload to drive.
    pub kind: IndexKind,
    /// Trace seed.
    pub seed: u64,
    /// Number of trace operations (each mutating operation is at least
    /// one durable transaction).
    pub ops: usize,
    /// Value payload size in bytes (whole words).
    pub value_size: usize,
}

impl SweepCase {
    /// A sweep case with the standard trace shape (`ops` operations,
    /// 32-byte values).
    pub fn new(scheme: Scheme, kind: IndexKind, seed: u64, ops: usize) -> Self {
        SweepCase {
            scheme,
            kind,
            seed,
            ops,
            value_size: 32,
        }
    }
}

impl fmt::Display for SweepCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheme={} workload={} seed={} ops={}",
            self.scheme, self.kind, self.seed, self.ops
        )
    }
}

/// One failed crash point, carrying everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// The failing cell.
    pub case: SweepCase,
    /// Persist-event index the crash was armed at.
    pub k: u64,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crashsweep FAIL {} k={}: {}",
            self.case, self.k, self.detail
        )
    }
}

/// The schemes a persist-event sweep covers: every named design,
/// undo and redo (battery-backed §V-E configurations are excluded —
/// see the module docs).
pub const SWEEP_SCHEMES: [Scheme; 10] = [
    Scheme::Fg,
    Scheme::FgLg,
    Scheme::FgLz,
    Scheme::Slpmt,
    Scheme::Atom,
    Scheme::Ede,
    Scheme::FgCl,
    Scheme::SlpmtCl,
    Scheme::FgRedo,
    Scheme::SlpmtRedo,
];

/// The deterministic operation trace of a case: a seeded insert /
/// update / remove / read mix starting from an empty structure.
pub fn trace_ops(case: &SweepCase) -> Vec<MixedOp> {
    // 5% reads, 15% updates, 20% removes, the rest inserts — enough
    // churn to exercise remove frees, update copy-on-write swaps and
    // (at these sizes) hashtable resizes, while keeping the structure
    // growing so later crash points see non-trivial state.
    let (_, ops) = ycsb_mixed_with_updates(0, case.ops, case.value_size, case.seed, 5, 15, 20);
    ops
}

pub(crate) fn apply(idx: &mut dyn DurableIndex, ctx: &mut PmContext, op: &MixedOp) {
    match op {
        MixedOp::Insert(o) => idx.insert(ctx, o.key, &o.value),
        MixedOp::Read(k) => {
            idx.get(ctx, *k);
        }
        MixedOp::Remove(k) => {
            idx.remove(ctx, *k);
        }
        MixedOp::Update(o) => {
            idx.update(ctx, o.key, &o.value);
        }
    }
}

/// The volatile reference model after the first `b` trace operations.
pub(crate) fn oracle_after(ops: &[MixedOp], b: usize) -> BTreeMap<u64, Vec<u8>> {
    let mut model = BTreeMap::new();
    for op in &ops[..b] {
        match op {
            MixedOp::Insert(o) | MixedOp::Update(o) => {
                model.insert(o.key, o.value.clone());
            }
            MixedOp::Remove(k) => {
                model.remove(k);
            }
            MixedOp::Read(_) => {}
        }
    }
    model
}

pub(crate) fn build(case: &SweepCase) -> (PmContext, Box<dyn DurableIndex>) {
    let mut ctx = PmContext::new(case.scheme, AnnotationTable::new());
    let idx = case
        .kind
        .build(&mut ctx, case.value_size, AnnotationSource::Manual);
    (ctx, idx)
}

/// Runs the case's trace crash-free, checks the end state against the
/// oracle, and returns the number of persist events the trace
/// generated — the sweep domain is `1..=N`.
///
/// # Panics
///
/// Panics if the crash-free run already disagrees with the oracle (the
/// sweep would be meaningless).
pub fn count_events(case: &SweepCase) -> u64 {
    let ops = trace_ops(case);
    let (mut ctx, mut idx) = build(case);
    for op in &ops {
        apply(idx.as_mut(), &mut ctx, op);
    }
    let oracle = oracle_after(&ops, ops.len());
    assert_eq!(
        idx.len(&ctx),
        oracle.len(),
        "{case}: crash-free run disagrees with the oracle"
    );
    for (key, value) in &oracle {
        assert_eq!(
            idx.value_of(&ctx, *key).as_deref(),
            Some(value.as_slice()),
            "{case}: crash-free value of {key}"
        );
    }
    ctx.machine().persist_event_count()
}

/// Replays the case's trace with a crash armed at persist event `k`,
/// recovers, and checks the recovered structure against the oracle.
///
/// # Errors
///
/// Returns the reproducible failure tuple when the recovered state
/// violates committed-prefix durability, value equality, a structure
/// invariant, or heap-leak accounting.
pub fn run_crash_at(case: &SweepCase, k: u64) -> Result<(), SweepFailure> {
    let fail = |detail: String| SweepFailure {
        case: *case,
        k,
        detail,
    };
    let ops = trace_ops(case);
    let (mut ctx, mut idx) = build(case);
    ctx.machine_mut().arm_crash_at_event(k);
    // Sequence number of the last transaction each executed operation
    // ran (reads re-record the previous value — they commit nothing).
    let mut op_seq = Vec::with_capacity(ops.len());
    for op in &ops {
        apply(idx.as_mut(), &mut ctx, op);
        op_seq.push(ctx.machine().txn_seq());
        if ctx.machine().crash_tripped() {
            break;
        }
    }
    // Power failure: volatile state is lost; events 1..=k survive.
    ctx.crash();
    // Durably committed transactions form a prefix of the sequence
    // numbers (markers persist in commit order), so the committed
    // operation count is a prefix length too.
    let marker = ctx.machine().device().log().max_committed_seq();
    let b = op_seq.iter().take_while(|&&seq| seq <= marker).count();
    ctx.recover();
    idx.recover(&mut ctx);
    let reachable = idx.reachable(&ctx);
    let leaks = inspect(&ctx, &reachable).leaks.len();
    ctx.gc(&reachable);
    if let Err(e) = idx.check_invariants(&ctx) {
        return Err(fail(format!("invariant violated after recovery: {e}")));
    }
    let after_gc = inspect(&ctx, &reachable);
    if !after_gc.is_clean() {
        return Err(fail(format!(
            "{} allocations still leaked after GC reclaimed {leaks}",
            after_gc.leaks.len()
        )));
    }
    let oracle = oracle_after(&ops, b);
    if idx.len(&ctx) != oracle.len() {
        return Err(fail(format!(
            "{} keys recovered, oracle has {} after {b} committed ops \
             (marker seq {marker})",
            idx.len(&ctx),
            oracle.len()
        )));
    }
    for (key, value) in &oracle {
        let got = idx.value_of(&ctx, *key);
        if got.as_deref() != Some(value.as_slice()) {
            return Err(fail(format!(
                "key {key} recovered as {:?}, oracle says {:?} (b={b})",
                got.map(|v| v.len()),
                value.len()
            )));
        }
    }
    Ok(())
}

/// Replays the machine-level sequence of [`run_crash_at`] — trace,
/// crash at persist event `k`, power failure, log replay — with event
/// tracing enabled, and returns the captured records. Structure-level
/// recovery is skipped (it can legitimately panic on the failing
/// tuples this capture path exists for); panics during log replay are
/// swallowed so the trace of everything up to the panic still comes
/// back. Deterministic: the same `(case, k)` always yields the same
/// records.
pub fn trace_crash_at(case: &SweepCase, k: u64) -> Vec<slpmt_core::TraceRecord> {
    let ops = trace_ops(case);
    let (mut ctx, mut idx) = build(case);
    ctx.enable_tracing(1 << 20);
    ctx.machine_mut().arm_crash_at_event(k);
    for op in &ops {
        apply(idx.as_mut(), &mut ctx, op);
        if ctx.machine().crash_tripped() {
            break;
        }
    }
    ctx.crash();
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.recover()));
    ctx.take_trace()
}

/// [`run_crash_at`] with panics converted into failure tuples, so a
/// sweep over thousands of crash points reports `(scheme, workload,
/// seed, k)` instead of dying mid-matrix.
pub fn check_point(case: &SweepCase, k: u64) -> Result<(), SweepFailure> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_crash_at(case, k))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(SweepFailure {
                case: *case,
                k,
                detail: format!("panic: {msg}"),
            })
        }
    }
}

/// Sweeps every crash point of one case serially, returning all
/// failures (empty = the case is crash-consistent at every persist
/// event).
pub fn sweep_serial(case: &SweepCase) -> Vec<SweepFailure> {
    let n = count_events(case);
    (1..=n).filter_map(|k| check_point(case, k).err()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_mutates_enough() {
        let case = SweepCase::new(Scheme::Slpmt, IndexKind::Hashtable, 7, 60);
        let a = trace_ops(&case);
        assert_eq!(a, trace_ops(&case));
        let mutating = a.iter().filter(|o| !matches!(o, MixedOp::Read(_))).count();
        assert!(mutating >= 50, "trace must carry ≥50 transactions");
    }

    #[test]
    fn oracle_prefix_applies_ops_in_order() {
        let case = SweepCase::new(Scheme::Slpmt, IndexKind::Rbtree, 3, 30);
        let ops = trace_ops(&case);
        let full = oracle_after(&ops, ops.len());
        assert!(!full.is_empty());
        assert!(oracle_after(&ops, 0).is_empty());
    }

    #[test]
    fn event_count_is_stable_for_a_case() {
        let case = SweepCase::new(Scheme::Fg, IndexKind::Heap, 11, 10);
        assert_eq!(count_events(&case), count_events(&case));
    }

    #[test]
    fn crash_after_all_events_recovers_everything() {
        let case = SweepCase::new(Scheme::Slpmt, IndexKind::Hashtable, 5, 15);
        let n = count_events(&case);
        run_crash_at(&case, n).unwrap();
    }

    #[test]
    fn crash_before_any_event_recovers_empty() {
        // k = 0: the very first durable mutation is dropped, so no
        // transaction ever has a durable marker.
        let case = SweepCase::new(Scheme::Fg, IndexKind::Rbtree, 5, 10);
        run_crash_at(&case, 0).unwrap();
    }

    #[test]
    fn failure_line_is_reproducible() {
        let f = SweepFailure {
            case: SweepCase::new(Scheme::Slpmt, IndexKind::Heap, 42, 50),
            k: 137,
            detail: "boom".into(),
        };
        let line = f.to_string();
        assert!(line.contains("scheme=SLPMT"));
        assert!(line.contains("workload=heap"));
        assert!(line.contains("seed=42"));
        assert!(line.contains("k=137"));
    }
}
