//! Benchmark driver: the [`DurableIndex`] trait and the insert-run
//! harness used by every figure.

use crate::ctx::{AnnotationSource, PmContext};
use crate::ycsb::{MixedOp, YcsbOp};
use slpmt_core::{MachineConfig, SchemeKind};
use slpmt_pmem::{PmAddr, WriteTraffic, LINE_BYTES};
use slpmt_ptm::PtmTraffic;
use std::fmt;

/// A durable key-value index evaluated by the paper.
///
/// `insert` runs one durable transaction per call (the YCSB-load
/// operation granularity). The untimed methods (`contains`,
/// `value_of`, `len`, `check_invariants`, `reachable`) inspect logical
/// state via peeks; `recover` repairs the structure after
/// [`PmContext::crash_and_recover`] replayed the undo log.
pub trait DurableIndex {
    /// Benchmark name as figures print it.
    fn name(&self) -> &'static str;

    /// Inserts `key → value` in one durable transaction.
    fn insert(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]);

    /// Removes `key` in one durable transaction, returning whether it
    /// was present. Deallocated regions are the Pattern 1 *free* case:
    /// stores into them need neither log nor persistence, and the
    /// frees themselves defer to commit.
    fn remove(&mut self, ctx: &mut PmContext, key: u64) -> bool;

    /// Timed lookup: reads run through the simulated cache hierarchy
    /// (no transaction needed — reads are non-mutating).
    fn get(&mut self, ctx: &mut PmContext, key: u64) -> Option<Vec<u8>>;

    /// Replaces `key`'s value in one durable transaction, returning
    /// whether the key was present. The PM-friendly copy-on-write
    /// idiom: write a fresh blob log-free, swap the (logged) pointer,
    /// free the old blob — a crash either keeps the old blob (pointer
    /// rolled back, fresh blob leaks to GC) or the new one.
    fn update(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) -> bool;

    /// Whether `key` is present (untimed).
    fn contains(&self, ctx: &PmContext, key: u64) -> bool;

    /// The value bytes stored for `key`, if present (untimed).
    fn value_of(&self, ctx: &PmContext, key: u64) -> Option<Vec<u8>>;

    /// Number of keys present (untimed).
    fn len(&self, ctx: &PmContext) -> usize;

    /// `true` when the index holds no keys.
    fn is_empty(&self, ctx: &PmContext) -> bool {
        self.len(ctx) == 0
    }

    /// Structure-specific invariants (chain integrity, BST/RB/AVL
    /// properties, heap order, …).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    fn check_invariants(&self, ctx: &PmContext) -> Result<(), String>;

    /// Every heap allocation reachable from the structure's roots
    /// (input to the post-crash GC).
    fn reachable(&self, ctx: &PmContext) -> Vec<PmAddr>;

    /// Post-crash, post-undo-replay structure recovery: rebuild
    /// lazily-persistent data (parent pointers, heights, moved data,
    /// counters) from what is durable.
    fn recover(&mut self, ctx: &mut PmContext);

    /// Timed range scan for `lo..=hi` when the index is ordered
    /// (`None` otherwise — hash-style indexes can't serve ranges, and
    /// mixed runners degrade their scans to point lookups). Ordered
    /// structures override this to delegate to
    /// [`RangeIndex::scan`], making scans reachable through the
    /// `dyn DurableIndex` the drivers hold.
    fn scan_range(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        let _ = (ctx, lo, hi);
        None
    }
}

/// Ordered indexes additionally support timed range scans.
pub trait RangeIndex: DurableIndex {
    /// Returns every `(key, value)` with `lo <= key <= hi`, in key
    /// order, reading through the simulated cache hierarchy.
    fn scan(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)>;
}

/// Which index a run instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Chained hash table with resizing.
    Hashtable,
    /// Red-black tree.
    Rbtree,
    /// Array max-heap.
    Heap,
    /// AVL tree.
    Avl,
    /// PMDK-style KV store, B-tree index.
    KvBtree,
    /// PMDK-style KV store, crit-bit-tree index.
    KvCtree,
    /// PMDK-style KV store, radix-tree index.
    KvRtree,
    /// PMDK-style KV store, skiplist index (extension backend).
    KvSkiplist,
}

impl IndexKind {
    /// The four kernel benchmarks (Figure 8).
    pub const KERNELS: [IndexKind; 4] = [
        IndexKind::Hashtable,
        IndexKind::Rbtree,
        IndexKind::Heap,
        IndexKind::Avl,
    ];

    /// The PMKV backends (Figure 14).
    pub const PMKV: [IndexKind; 3] = [IndexKind::KvBtree, IndexKind::KvCtree, IndexKind::KvRtree];

    /// Every implemented index, including extension backends.
    pub const ALL: [IndexKind; 8] = [
        IndexKind::Hashtable,
        IndexKind::Rbtree,
        IndexKind::Heap,
        IndexKind::Avl,
        IndexKind::KvBtree,
        IndexKind::KvCtree,
        IndexKind::KvRtree,
        IndexKind::KvSkiplist,
    ];

    /// Builds the index (setup is untimed) and returns it with its
    /// resolved annotation table installed into `ctx`.
    pub fn build(
        self,
        ctx: &mut PmContext,
        value_size: usize,
        source: AnnotationSource,
    ) -> Box<dyn DurableIndex> {
        match self {
            IndexKind::Hashtable => {
                Box::new(crate::hashtable::Hashtable::new(ctx, value_size, source))
            }
            IndexKind::Rbtree => Box::new(crate::rbtree::Rbtree::new(ctx, value_size, source)),
            IndexKind::Heap => Box::new(crate::heap::MaxHeap::new(ctx, value_size, source)),
            IndexKind::Avl => Box::new(crate::avl::AvlTree::new(ctx, value_size, source)),
            IndexKind::KvBtree => Box::new(crate::kv::btree::BtreeKv::new(ctx, value_size, source)),
            IndexKind::KvCtree => Box::new(crate::kv::ctree::CtreeKv::new(ctx, value_size, source)),
            IndexKind::KvRtree => Box::new(crate::kv::rtree::RtreeKv::new(ctx, value_size, source)),
            IndexKind::KvSkiplist => Box::new(crate::kv::skiplist::SkiplistKv::new(
                ctx, value_size, source,
            )),
        }
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IndexKind::Hashtable => "hashtable",
            IndexKind::Rbtree => "rbtree",
            IndexKind::Heap => "heap",
            IndexKind::Avl => "avl",
            IndexKind::KvBtree => "kv-btree",
            IndexKind::KvCtree => "kv-ctree",
            IndexKind::KvRtree => "kv-rtree",
            IndexKind::KvSkiplist => "kv-skiplist",
        };
        f.write_str(s)
    }
}

/// Result of one benchmark run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme simulated (hardware design or software PTM flavour).
    pub scheme: SchemeKind,
    /// Index evaluated.
    pub kind: IndexKind,
    /// Total simulated cycles for the measured phase.
    pub cycles: u64,
    /// PM write traffic for the measured phase. For software flavours
    /// the log-arena persists are reattributed from data to log
    /// traffic (the device cannot tell a software log line from data).
    pub traffic: WriteTraffic,
    /// Logical payload bytes the workload stored during the measured
    /// phase — the write-amplification denominator.
    pub logical_bytes: u64,
    /// Machine event counters.
    pub stats: slpmt_core::MachineStats,
}

impl RunResult {
    /// Write-amplification factor: PM media bytes written (data + log)
    /// per logical payload byte stored. `NaN`-free: returns 0 when the
    /// run stored nothing.
    pub fn waf(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        (self.traffic.data_bytes + self.traffic.log_bytes) as f64 / self.logical_bytes as f64
    }

    /// Speedup of this run relative to `baseline` (baseline cycles /
    /// these cycles) — the Figure 8 metric.
    pub fn speedup_vs(&self, baseline: &RunResult) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Write-traffic reduction relative to `baseline` (1 − media
    /// bytes / baseline media bytes), the Figure 8/11 metric.
    pub fn traffic_reduction_vs(&self, baseline: &RunResult) -> f64 {
        self.traffic.reduction_vs(&baseline.traffic)
    }
}

/// Runs the YCSB-load insert stream on one index/scheme combination
/// and returns cycles + traffic. `verify` additionally checks
/// invariants and membership after the run (used by tests; figures
/// disable it for speed).
pub fn run_inserts(
    scheme: impl Into<SchemeKind>,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
    verify: bool,
) -> RunResult {
    run_inserts_with(
        MachineConfig::for_kind(scheme),
        kind,
        ops,
        value_size,
        source,
        verify,
    )
}

/// Up-front heap-arena estimate for an op stream: value payloads plus
/// index-node and allocator overhead per op, with slack for structure
/// roots. Only sizes the host-side page prefault (clamped to capacity
/// by the space itself) — an over- or under-estimate affects setup
/// cost, never simulated behaviour.
fn arena_estimate(ops: usize, value_size: usize) -> u64 {
    ops as u64 * (value_size as u64 + 192) + (1 << 20)
}

/// Measured-phase traffic delta. Software flavours' log-arena persists
/// arrive at the device as plain data-line writes; this reattributes
/// them to log traffic so the data/log split means the same thing for
/// every scheme column.
fn measured_traffic(ctx: &PmContext, start: &WriteTraffic, soft_start: PtmTraffic) -> WriteTraffic {
    let mut traffic = *ctx.machine().device().traffic();
    traffic.data_bytes -= start.data_bytes;
    traffic.log_bytes -= start.log_bytes;
    traffic.data_lines -= start.data_lines;
    traffic.log_records -= start.log_records;
    traffic.wpq_lines -= start.wpq_lines;
    if let Some(s) = ctx.soft() {
        let log_bytes = s.traffic.log_media_bytes - soft_start.log_media_bytes;
        let records = s.traffic.log_records - soft_start.log_records;
        traffic.data_bytes -= log_bytes;
        traffic.data_lines -= log_bytes / LINE_BYTES as u64;
        traffic.log_bytes += log_bytes;
        traffic.log_records += records;
    }
    traffic
}

fn soft_traffic(ctx: &PmContext) -> PtmTraffic {
    ctx.soft().map(|s| s.traffic).unwrap_or_default()
}

/// [`run_inserts`] with an explicit machine configuration (latency
/// sweeps, tiny caches).
pub fn run_inserts_with(
    cfg: MachineConfig,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
    verify: bool,
) -> RunResult {
    let scheme = cfg.kind();
    let mut ctx = PmContext::with_config(cfg, slpmt_annotate::AnnotationTable::new());
    ctx.prefault_heap(arena_estimate(ops.len(), value_size));
    let mut index = kind.build(&mut ctx, value_size, source);
    let start_cycles = ctx.machine().now();
    let start_traffic = *ctx.machine().device().traffic();
    let start_soft = soft_traffic(&ctx);
    let start_logical = ctx.logical_bytes();
    for op in ops {
        index.insert(&mut ctx, op.key, &op.value);
    }
    let cycles = ctx.machine().now() - start_cycles;
    let traffic = measured_traffic(&ctx, &start_traffic, start_soft);
    let logical_bytes = ctx.logical_bytes() - start_logical;
    if verify {
        index
            .check_invariants(&ctx)
            .unwrap_or_else(|e| panic!("{kind}/{scheme}: invariant violated after run: {e}"));
        assert_eq!(index.len(&ctx), ops.len(), "{kind}/{scheme}: size mismatch");
        for op in ops {
            assert!(
                index.contains(&ctx, op.key),
                "{kind}/{scheme}: key {} missing",
                op.key
            );
        }
    }
    RunResult {
        scheme,
        kind,
        cycles,
        traffic,
        logical_bytes,
        stats: *ctx.machine().stats(),
    }
}

/// [`run_inserts_with`] with event tracing enabled for the measured
/// phase, returning the captured records alongside the result. Setup
/// (structure build) happens before tracing turns on, so the records
/// cover exactly the measured insert stream; verification is skipped
/// (capture runs exist to be exported, not gated).
pub fn run_inserts_traced(
    cfg: MachineConfig,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
) -> (RunResult, Vec<slpmt_core::TraceRecord>) {
    let scheme = cfg.kind();
    let mut ctx = PmContext::with_config(cfg, slpmt_annotate::AnnotationTable::new());
    ctx.prefault_heap(arena_estimate(ops.len(), value_size));
    let mut index = kind.build(&mut ctx, value_size, source);
    ctx.enable_tracing(1 << 20);
    let start_cycles = ctx.machine().now();
    let start_traffic = *ctx.machine().device().traffic();
    let start_soft = soft_traffic(&ctx);
    let start_logical = ctx.logical_bytes();
    for op in ops {
        index.insert(&mut ctx, op.key, &op.value);
    }
    let cycles = ctx.machine().now() - start_cycles;
    let traffic = measured_traffic(&ctx, &start_traffic, start_soft);
    let logical_bytes = ctx.logical_bytes() - start_logical;
    let stats = *ctx.machine().stats();
    let records = ctx.take_trace();
    (
        RunResult {
            scheme,
            kind,
            cycles,
            traffic,
            logical_bytes,
            stats,
        },
        records,
    )
}

/// Executes one mixed operation, asserting it is legal at this point
/// in the trace (the generators only target live keys). Scans go
/// through [`DurableIndex::scan_range`] on ordered indexes — checking
/// the result set against the keys the generator materialised — and
/// degrade to point lookups elsewhere.
fn apply_mixed(
    index: &mut dyn DurableIndex,
    ctx: &mut PmContext,
    op: &MixedOp,
    kind: IndexKind,
    scheme: SchemeKind,
) {
    match op {
        MixedOp::Insert(o) => index.insert(ctx, o.key, &o.value),
        MixedOp::Read(k) => {
            let v = index.get(ctx, *k);
            assert!(v.is_some(), "{kind}/{scheme}: live key {k} unreadable");
        }
        MixedOp::Remove(k) => {
            let removed = index.remove(ctx, *k);
            assert!(removed, "{kind}/{scheme}: live key {k} unremovable");
        }
        MixedOp::Update(o) => {
            let updated = index.update(ctx, o.key, &o.value);
            assert!(updated, "{kind}/{scheme}: live key {} unupdatable", o.key);
        }
        MixedOp::Rmw(o) => {
            let v = index.get(ctx, o.key);
            assert!(v.is_some(), "{kind}/{scheme}: rmw key {} unreadable", o.key);
            let updated = index.update(ctx, o.key, &o.value);
            assert!(updated, "{kind}/{scheme}: rmw key {} unupdatable", o.key);
        }
        MixedOp::Scan { keys } => {
            let (lo, hi) = (keys[0], *keys.last().expect("scans are never empty"));
            match index.scan_range(ctx, lo, hi) {
                Some(got) => {
                    let got_keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
                    assert_eq!(
                        &got_keys, keys,
                        "{kind}/{scheme}: scan [{lo}, {hi}] returned wrong key set"
                    );
                }
                None => {
                    for k in keys {
                        let v = index.get(ctx, *k);
                        assert!(v.is_some(), "{kind}/{scheme}: scanned key {k} unreadable");
                    }
                }
            }
        }
    }
}

/// Runs a mixed workload (after an untimed load phase): inserts and
/// removes are durable transactions, reads are timed cache-hierarchy
/// lookups. Returns the measured-phase result.
pub fn run_mixed(
    cfg: MachineConfig,
    kind: IndexKind,
    load: &[YcsbOp],
    ops: &[MixedOp],
    value_size: usize,
    source: AnnotationSource,
    verify: bool,
) -> RunResult {
    run_mixed_latencies(cfg, kind, load, ops, value_size, source, verify).0
}

/// The operation classes a mixed run distinguishes for latency
/// reporting.
pub const OP_CLASSES: [&str; 6] = ["read", "insert", "update", "remove", "rmw", "scan"];

/// Percentile summary of one operation class's simulated latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of operations observed.
    pub count: u64,
    /// Median simulated cycles per operation.
    pub p50: u64,
    /// 99th-percentile simulated cycles per operation.
    pub p99: u64,
    /// Worst observed operation, in cycles.
    pub max: u64,
    /// Total simulated cycles across the class.
    pub total: u64,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let pct = |p: u64| samples[((samples.len() - 1) as u64 * p / 100) as usize];
        LatencySummary {
            count: samples.len() as u64,
            p50: pct(50),
            p99: pct(99),
            max: *samples.last().unwrap(),
            total: samples.iter().sum(),
        }
    }
}

/// Per-class latency summaries of one mixed run, in [`OP_CLASSES`]
/// order. Everything is simulated cycles, so the breakdown is
/// bit-identical across reruns and host machines.
#[derive(Debug, Clone, Default)]
pub struct MixLatencies {
    /// One summary per [`OP_CLASSES`] entry (empty classes are
    /// all-zero).
    pub classes: [LatencySummary; 6],
}

impl MixLatencies {
    /// Iterates `(class name, summary)` pairs, skipping empty classes.
    pub fn present(&self) -> impl Iterator<Item = (&'static str, &LatencySummary)> + '_ {
        OP_CLASSES
            .iter()
            .zip(self.classes.iter())
            .filter(|(_, s)| s.count > 0)
            .map(|(n, s)| (*n, s))
    }
}

fn class_of(op: &MixedOp) -> usize {
    match op {
        MixedOp::Read(_) => 0,
        MixedOp::Insert(_) => 1,
        MixedOp::Update(_) => 2,
        MixedOp::Remove(_) => 3,
        MixedOp::Rmw(_) => 4,
        MixedOp::Scan { .. } => 5,
    }
}

/// [`run_mixed`] that also reports per-class p50/p99 simulated-cycle
/// latencies, taken from the machine clock around each operation.
pub fn run_mixed_latencies(
    cfg: MachineConfig,
    kind: IndexKind,
    load: &[YcsbOp],
    ops: &[MixedOp],
    value_size: usize,
    source: AnnotationSource,
    verify: bool,
) -> (RunResult, MixLatencies) {
    let scheme = cfg.kind();
    let mut ctx = PmContext::with_config(cfg, slpmt_annotate::AnnotationTable::new());
    ctx.prefault_heap(arena_estimate(load.len() + ops.len(), value_size));
    let mut index = kind.build(&mut ctx, value_size, source);
    for op in load {
        index.insert(&mut ctx, op.key, &op.value);
    }
    let start_cycles = ctx.machine().now();
    let start_traffic = *ctx.machine().device().traffic();
    let start_soft = soft_traffic(&ctx);
    let start_logical = ctx.logical_bytes();
    let mut samples: [Vec<u64>; 6] = Default::default();
    for op in ops {
        let t0 = ctx.machine().now();
        apply_mixed(index.as_mut(), &mut ctx, op, kind, scheme);
        samples[class_of(op)].push(ctx.machine().now() - t0);
    }
    let cycles = ctx.machine().now() - start_cycles;
    let traffic = measured_traffic(&ctx, &start_traffic, start_soft);
    let logical_bytes = ctx.logical_bytes() - start_logical;
    if verify {
        index
            .check_invariants(&ctx)
            .unwrap_or_else(|e| panic!("{kind}/{scheme}: invariant violated after mixed run: {e}"));
    }
    let lat = MixLatencies {
        classes: samples.map(LatencySummary::from_samples),
    };
    (
        RunResult {
            scheme,
            kind,
            cycles,
            traffic,
            logical_bytes,
            stats: *ctx.machine().stats(),
        },
        lat,
    )
}
