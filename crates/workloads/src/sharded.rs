//! Sharded execution: keyspace-partitioned scaling runs (§VI scaling).
//!
//! The multi-core engine in `slpmt_core::multi` interleaves cores over
//! *one* persistence domain; this module models the other end of the
//! design space — share-nothing scaling, where each shard owns a
//! private machine (caches + log buffer + device) and the keyspace is
//! hash-partitioned across shards. Shards never touch each other's
//! state, so they can execute on real host threads
//! (`slpmt_bench::sharded`) with bit-identical results to the serial
//! driver here: determinism comes from the partition function and the
//! per-shard seeded traces, not from scheduling.
//!
//! Throughput is reported in *simulated* terms: shards run
//! concurrently in simulated time, so a run's makespan is the slowest
//! shard's cycle count ([`ShardedResult::sim_cycles`]) and scaling is
//! `total ops / makespan` ([`ShardedResult::sim_ops_per_kcycle`]).

use crate::ctx::AnnotationSource;
use crate::runner::{run_inserts_traced, run_inserts_with, run_mixed, IndexKind, RunResult};
use crate::ycsb::{MixedOp, YcsbOp};
use slpmt_core::{MachineConfig, MachineStats, SchemeKind};
use slpmt_pmem::WriteTraffic;
use slpmt_prng::splitmix64;

/// The shard owning `key`: a `splitmix64` hash keeps the partition
/// balanced even for dense or striped keyspaces.
pub fn shard_of(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "at least one shard");
    let mut x = key;
    (splitmix64(&mut x) % shards as u64) as usize
}

/// Splits an operation stream by key ownership, preserving each
/// shard's relative operation order.
pub fn partition_ops(ops: &[YcsbOp], shards: usize) -> Vec<Vec<YcsbOp>> {
    let mut parts = vec![Vec::new(); shards];
    for op in ops {
        parts[shard_of(op.key, shards)].push(op.clone());
    }
    parts
}

/// Splits a mixed operation stream by key ownership, preserving each
/// shard's relative operation order. Point operations route by their
/// key; a scan's expected key set is split per shard (each shard
/// checks the slice of the range it owns), and shards with no keys in
/// the range skip the scan entirely.
pub fn partition_mixed(ops: &[MixedOp], shards: usize) -> Vec<Vec<MixedOp>> {
    let mut parts = vec![Vec::new(); shards];
    for op in ops {
        match op {
            MixedOp::Insert(o) | MixedOp::Update(o) | MixedOp::Rmw(o) => {
                parts[shard_of(o.key, shards)].push(op.clone());
            }
            MixedOp::Read(k) | MixedOp::Remove(k) => {
                parts[shard_of(*k, shards)].push(op.clone());
            }
            MixedOp::Scan { keys } => {
                let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
                for k in keys {
                    per_shard[shard_of(*k, shards)].push(*k);
                }
                for (s, keys) in per_shard.into_iter().enumerate() {
                    if !keys.is_empty() {
                        parts[s].push(MixedOp::Scan { keys });
                    }
                }
            }
        }
    }
    parts
}

/// Outcome of one sharded run: the per-shard results in shard order
/// plus the merged view.
#[derive(Debug, Clone)]
pub struct ShardedResult {
    /// Scheme simulated (hardware design or software PTM flavour).
    pub scheme: SchemeKind,
    /// Index evaluated (one instance per shard).
    pub kind: IndexKind,
    /// Per-shard measured-phase results, indexed by shard.
    pub shards: Vec<RunResult>,
    /// Operations executed across all shards.
    pub total_ops: usize,
}

impl ShardedResult {
    /// Simulated makespan: shards run concurrently, so the run takes
    /// as long as its slowest shard.
    pub fn sim_cycles(&self) -> u64 {
        self.shards.iter().map(|r| r.cycles).max().unwrap_or(0)
    }

    /// Total simulated work (the serial-equivalent cycle count).
    pub fn total_cycles(&self) -> u64 {
        self.shards.iter().map(|r| r.cycles).sum()
    }

    /// Simulated throughput: operations per thousand cycles of
    /// makespan. The scaling metric — doubling shards on a balanced
    /// partition roughly doubles this.
    pub fn sim_ops_per_kcycle(&self) -> f64 {
        let makespan = self.sim_cycles();
        if makespan == 0 {
            return 0.0;
        }
        self.total_ops as f64 * 1000.0 / makespan as f64
    }

    /// Machine counters summed over shards (order-independent).
    pub fn merged_stats(&self) -> MachineStats {
        let mut out = MachineStats::new();
        for r in &self.shards {
            out.accumulate(&r.stats);
        }
        out
    }

    /// PM write traffic summed over shards (order-independent).
    pub fn merged_traffic(&self) -> WriteTraffic {
        let mut out = WriteTraffic::new();
        for r in &self.shards {
            out += r.traffic;
        }
        out
    }
}

/// Runs one shard of a partitioned insert stream on its own private
/// machine. Shards are independent by construction, so callers may run
/// this from any thread; results depend only on `(cfg, shard_ops)`.
pub fn run_shard(
    cfg: MachineConfig,
    kind: IndexKind,
    shard_ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
    verify: bool,
) -> RunResult {
    run_inserts_with(cfg, kind, shard_ops, value_size, source, verify)
}

/// [`run_shard`] with event tracing enabled: the shard's measured
/// phase is captured as trace records alongside its result. Shards
/// stay independent, so any thread may call this; the records depend
/// only on `(cfg, shard_ops)` — the determinism the sharded trace
/// tests pin down.
pub fn run_shard_traced(
    cfg: MachineConfig,
    kind: IndexKind,
    shard_ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
) -> (RunResult, Vec<slpmt_core::TraceRecord>) {
    run_inserts_traced(cfg, kind, shard_ops, value_size, source)
}

/// Serial reference driver for traced sharded runs: partitions `ops`
/// and captures every shard's trace in shard order. The parallel
/// driver in `slpmt_bench::sharded` must produce identical per-shard
/// record sequences for any worker count.
pub fn run_sharded_serial_traced(
    cfg: MachineConfig,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
    shards: usize,
) -> (ShardedResult, Vec<Vec<slpmt_core::TraceRecord>>) {
    let scheme = cfg.kind();
    let parts = partition_ops(ops, shards);
    let mut results = Vec::with_capacity(shards);
    let mut traces = Vec::with_capacity(shards);
    for part in &parts {
        let (r, t) = run_shard_traced(cfg.clone(), kind, part, value_size, source);
        results.push(r);
        traces.push(t);
    }
    (
        ShardedResult {
            scheme,
            kind,
            shards: results,
            total_ops: ops.len(),
        },
        traces,
    )
}

/// Runs one shard of a partitioned mixed stream on its own private
/// machine: the shard's slice of the load phase is untimed, its slice
/// of the mixed trace is measured. Independent by construction, like
/// [`run_shard`].
#[allow(clippy::too_many_arguments)]
pub fn run_shard_mixed(
    cfg: MachineConfig,
    kind: IndexKind,
    shard_load: &[YcsbOp],
    shard_ops: &[MixedOp],
    value_size: usize,
    source: AnnotationSource,
    verify: bool,
) -> RunResult {
    run_mixed(cfg, kind, shard_load, shard_ops, value_size, source, verify)
}

/// Serial reference driver for sharded *mixed* runs: partitions the
/// load and the mixed trace by key ownership and runs every shard in
/// shard order. The parallel driver in `slpmt_bench::sharded` must
/// produce identical results for any worker count.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_mixed_serial(
    cfg: MachineConfig,
    kind: IndexKind,
    load: &[YcsbOp],
    ops: &[MixedOp],
    value_size: usize,
    source: AnnotationSource,
    shards: usize,
    verify: bool,
) -> ShardedResult {
    let scheme = cfg.kind();
    let load_parts = partition_ops(load, shards);
    let parts = partition_mixed(ops, shards);
    let results: Vec<RunResult> = load_parts
        .iter()
        .zip(&parts)
        .map(|(lp, p)| run_shard_mixed(cfg.clone(), kind, lp, p, value_size, source, verify))
        .collect();
    ShardedResult {
        scheme,
        kind,
        shards: results,
        total_ops: ops.len(),
    }
}

/// Serial reference driver: partitions `ops` and runs every shard in
/// shard order on the calling thread. The parallel driver in
/// `slpmt_bench::sharded` must produce identical results.
pub fn run_sharded_serial(
    cfg: MachineConfig,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
    shards: usize,
    verify: bool,
) -> ShardedResult {
    let scheme = cfg.kind();
    let parts = partition_ops(ops, shards);
    let results: Vec<RunResult> = parts
        .iter()
        .map(|part| run_shard(cfg.clone(), kind, part, value_size, source, verify))
        .collect();
    ShardedResult {
        scheme,
        kind,
        shards: results,
        total_ops: ops.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::ycsb_load;
    use slpmt_core::Scheme;

    #[test]
    fn partition_is_total_and_deterministic() {
        let ops = ycsb_load(64, 8, 1);
        let parts = partition_ops(&ops, 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), ops.len());
        assert_eq!(parts, partition_ops(&ops, 4));
        for (s, part) in parts.iter().enumerate() {
            for op in part {
                assert_eq!(shard_of(op.key, 4), s);
            }
        }
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let ops = ycsb_load(400, 8, 7);
        let parts = partition_ops(&ops, 4);
        for part in &parts {
            // 100 expected; a 4x imbalance would mean a broken hash.
            assert!(part.len() > 25 && part.len() < 400, "{}", part.len());
        }
    }

    #[test]
    fn mixed_partition_routes_by_key_and_splits_scans() {
        use crate::ycsb::{ycsb_mix, MixSpec};
        let (_, ops) = ycsb_mix(80, 200, 16, 5, &MixSpec::YCSB_E);
        let parts = partition_mixed(&ops, 4);
        let point_ops = ops
            .iter()
            .filter(|o| !matches!(o, MixedOp::Scan { .. }))
            .count();
        let routed_points: usize = parts
            .iter()
            .flatten()
            .filter(|o| !matches!(o, MixedOp::Scan { .. }))
            .count();
        assert_eq!(point_ops, routed_points);
        // Every scanned key lands in exactly one shard, owned by it.
        let scanned: usize = ops
            .iter()
            .filter_map(|o| match o {
                MixedOp::Scan { keys } => Some(keys.len()),
                _ => None,
            })
            .sum();
        let mut routed_scanned = 0;
        for (s, part) in parts.iter().enumerate() {
            for op in part {
                if let MixedOp::Scan { keys } = op {
                    assert!(!keys.is_empty());
                    routed_scanned += keys.len();
                    assert!(keys.iter().all(|k| shard_of(*k, 4) == s));
                }
            }
        }
        assert_eq!(scanned, routed_scanned);
    }

    #[test]
    fn sharded_mixed_run_is_deterministic() {
        use crate::ycsb::{ycsb_mix, MixSpec};
        let (load, ops) = ycsb_mix(40, 120, 16, 9, &MixSpec::DELETE_HEAVY);
        let run = || {
            run_sharded_mixed_serial(
                MachineConfig::for_scheme(Scheme::Slpmt),
                IndexKind::Hashtable,
                &load,
                &ops,
                16,
                AnnotationSource::Manual,
                3,
                true,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_ops, 120);
        assert_eq!(a.sim_cycles(), b.sim_cycles());
        assert_eq!(a.merged_stats(), b.merged_stats());
    }

    #[test]
    fn sharded_run_inserts_every_key_once() {
        let ops = ycsb_load(48, 16, 3);
        let res = run_sharded_serial(
            MachineConfig::for_scheme(Scheme::Slpmt),
            IndexKind::Hashtable,
            &ops,
            16,
            AnnotationSource::Manual,
            3,
            true, // per-shard verify checks membership of its partition
        );
        assert_eq!(res.total_ops, 48);
        assert_eq!(res.shards.len(), 3);
        assert!(res.merged_stats().tx_commits >= 48);
        assert!(res.sim_cycles() > 0);
        assert!(res.sim_cycles() <= res.total_cycles());
    }
}
