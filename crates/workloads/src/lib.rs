//! Durable data-structure workloads for the SLPMT evaluation (§VI-A).
//!
//! Six benchmarks from the paper, re-implemented over the simulated
//! machine:
//!
//! * [`hashtable`] — chained hash table that resizes when buckets
//!   average three records; rehash moves data with lazy persistence.
//! * [`rbtree`] — red-black tree with parent pointers and colours
//!   (parent pointers lazily persistent, rebuilt on recovery).
//! * [`heap`] — array max-heap (appends beyond the committed count are
//!   log-free).
//! * [`avl`] — AVL tree without parent pointers (heights lazily
//!   persistent, recomputed on recovery).
//! * [`kv`] — the PMDK-style key-value store with `btree`, `ctree`
//!   (crit-bit) and `rtree` (radix) index backends.
//!
//! Every structure implements [`runner::DurableIndex`]:
//! insert runs inside one durable transaction per operation, all
//! stores carry *site* tags resolved through an
//! [`AnnotationTable`](slpmt_annotate::AnnotationTable) — hand-written
//! ([`manual`] mode) or produced by the `slpmt-annotate` compiler pass
//! over the structure's [`TxnIr`](slpmt_annotate::TxnIr) description —
//! and each structure ships the recovery routine its annotations
//! require (leak GC, parent/height rebuild, rehash re-execution).
//!
//! [`ycsb`] generates the paper's workload (1,000 inserts, 8-byte keys,
//! configurable value size); [`runner`] drives a full benchmark run and
//! collects cycles + write traffic; [`sharded`] partitions the keyspace
//! across independent per-shard machines for scaling runs.
//!
//! [`manual`]: ctx::AnnotationSource::Manual

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avl;
pub mod client;
pub mod crashsweep;
pub mod ctx;
pub mod faultsweep;
pub mod hashtable;
pub mod heap;
pub mod inspector;
pub mod kv;
pub mod rbtree;
pub mod runner;
pub mod sharded;
pub mod ycsb;

pub use client::{open_loop_arrivals, service_trace, session_of, KvRequest, RetryPolicy};
pub use crashsweep::{StreamingOracle, SweepCase, SweepFailure};
pub use ctx::{AnnotationSource, PmContext};
pub use faultsweep::{FaultCase, FaultFailure};
pub use inspector::{inspect, HeapReport};
pub use runner::{
    run_inserts, run_mixed, run_mixed_latencies, DurableIndex, IndexKind, LatencySummary,
    MixLatencies, RangeIndex, RunResult,
};
pub use sharded::{
    partition_mixed, partition_ops, run_sharded_mixed_serial, run_sharded_serial,
    run_sharded_serial_traced, shard_of, ShardedResult,
};
pub use ycsb::{ycsb_load, ycsb_mix, ycsb_mixed, KeyDist, MixSpec, MixedOp, YcsbOp};
