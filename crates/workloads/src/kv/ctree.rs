//! Crit-bit tree backend for the PMDK-style KV store.
//!
//! A crit-bit (PATRICIA) tree over 64-bit keys: internal nodes name
//! the most significant bit at which their two subtrees differ, leaves
//! carry the key and value pointer. An insert allocates exactly one
//! leaf and one internal node and performs a *single* logged store
//! (the parent link), so nearly every store is log-free under SLPMT —
//! this is the backend where selective logging pays most (§VI-E:
//! highest speedup on kv-ctree).
//!
//! ### Persistent layout
//!
//! ```text
//! root:     [0]=index root  [1]=size
//! internal: [0]=1 [1]=crit-bit index (0 = MSB) [2]=left [3]=right
//! leaf:     [0]=0 [1]=key [2]=value blob
//! ```

use crate::ctx::{AnnotationSource, PmContext};
use crate::runner::DurableIndex;
use slpmt_annotate::{Annotation, AnnotationTable, Operand, ParamKind, TxnIr, TxnIrBuilder};
use slpmt_pmem::PmAddr;

/// Store sites of the insert transaction.
pub mod sites {
    use slpmt_annotate::SiteId;
    /// Fresh leaf initialisation.
    pub const LEAF_INIT: SiteId = SiteId(0);
    /// Fresh internal-node initialisation.
    pub const INTERNAL_INIT: SiteId = SiteId(1);
    /// Value blob payload.
    pub const VALUE: SiteId = SiteId(2);
    /// The single logged link in an existing node (or the root).
    pub const LINK: SiteId = SiteId(3);
    /// KV root pointer.
    pub const ROOT_PTR: SiteId = SiteId(4);
    /// KV size counter.
    pub const SIZE: SiteId = SiteId(5);
    /// Poison store into a node being freed (Pattern 1, free case).
    pub const RM_POISON: SiteId = SiteId(6);
    /// Value-pointer swap on update (copy-on-write blob replace).
    pub const UPD_VPTR: SiteId = SiteId(7);
}

const CMP_COST: u64 = 4;

fn fld(base: PmAddr, i: u64) -> PmAddr {
    base.add(i * 8)
}

fn bit_of(key: u64, bit: u64) -> u64 {
    (key >> (63 - bit)) & 1
}

/// The crit-bit-tree KV backend.
#[derive(Debug, Clone)]
pub struct CtreeKv {
    root: PmAddr,
    value_bytes: u64,
}

impl CtreeKv {
    /// Hand-written annotations.
    pub fn manual_table() -> AnnotationTable {
        use sites::*;
        [
            (LEAF_INIT, Annotation::LogFree),
            (INTERNAL_INIT, Annotation::LogFree),
            (VALUE, Annotation::LogFree),
            (RM_POISON, Annotation::LazyLogFree),
        ]
        .into_iter()
        .collect()
    }

    /// IR for the compiler pass.
    pub fn ir() -> TxnIr {
        use sites::*;
        let mut b = TxnIrBuilder::new("kv-ctree-insert");
        let root = b.param(ParamKind::PersistentPtr);
        let key = b.param(ParamKind::Key);
        let val = b.param(ParamKind::Value);
        let blob = b.alloc();
        b.store_at(VALUE, blob, 0, Operand::Value(val));
        let leaf = b.alloc();
        b.store_at(LEAF_INIT, leaf, 0, Operand::Value(key));
        let node = b.alloc();
        let parent = b.load(root, 0);
        let sibling = b.load(parent, 2);
        b.store_at(INTERNAL_INIT, node, 2, Operand::Value(sibling));
        b.store_at(LINK, parent, 2, Operand::Value(node));
        let size = b.load(root, 1);
        let size2 = b.compute_opaque(vec![Operand::Value(size)]);
        b.store_at(SIZE, root, 1, Operand::Value(size2));
        b.store_at(ROOT_PTR, root, 0, Operand::Value(node));
        b.build()
    }

    /// Builds an empty crit-bit KV store (untimed setup).
    ///
    /// # Panics
    ///
    /// Panics if `value_size` is not a multiple of 8.
    pub fn new(ctx: &mut PmContext, value_size: usize, source: AnnotationSource) -> Self {
        assert!(
            value_size.is_multiple_of(8),
            "value size must be whole words"
        );
        ctx.set_table(source.resolve(&Self::manual_table(), &Self::ir()));
        let root = ctx.setup_alloc(2 * 8);
        CtreeKv {
            root,
            value_bytes: value_size as u64,
        }
    }

    fn new_leaf(&self, ctx: &mut PmContext, key: u64, value: &[u8]) -> PmAddr {
        use sites::*;
        let blob = ctx.alloc(self.value_bytes);
        ctx.store_bytes(blob, value, VALUE);
        let leaf = ctx.alloc(3 * 8);
        ctx.store(fld(leaf, 0), 0, LEAF_INIT);
        ctx.store(fld(leaf, 1), key, LEAF_INIT);
        ctx.store(fld(leaf, 2), blob.raw(), LEAF_INIT);
        leaf
    }

    /// Finds the closest leaf for `key` (timed descent).
    fn closest_leaf(&self, ctx: &mut PmContext, key: u64) -> PmAddr {
        let mut n = PmAddr::new(ctx.load(fld(self.root, 0)));
        loop {
            if ctx.load(fld(n, 0)) == 0 {
                return n;
            }
            ctx.compute(CMP_COST);
            let bit = ctx.load(fld(n, 1));
            n = PmAddr::new(ctx.load(fld(n, 2 + bit_of(key, bit))));
        }
    }
}

impl DurableIndex for CtreeKv {
    fn name(&self) -> &'static str {
        "kv-ctree"
    }

    fn scan_range(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        Some(crate::runner::RangeIndex::scan(self, ctx, lo, hi))
    }

    fn insert(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            let leaf = self.new_leaf(ctx, key, value);
            ctx.store(fld(self.root, 0), leaf.raw(), ROOT_PTR);
            let size = ctx.load(fld(self.root, 1)) + 1;
            ctx.store(fld(self.root, 1), size, SIZE);
            ctx.tx_commit();
            return;
        }
        let near = self.closest_leaf(ctx, key);
        let near_key = ctx.load(fld(near, 1));
        assert_ne!(near_key, key, "duplicate keys unsupported");
        ctx.compute(CMP_COST);
        let crit = (near_key ^ key).leading_zeros() as u64;
        // Build the new leaf + internal node (log-free).
        let leaf = self.new_leaf(ctx, key, value);
        let node = ctx.alloc(4 * 8);
        ctx.store(fld(node, 0), 1, INTERNAL_INIT);
        ctx.store(fld(node, 1), crit, INTERNAL_INIT);
        // Walk again to the insertion point: the first edge whose
        // target has a crit-bit below (i.e. index above) `crit`.
        let mut parent: Option<(PmAddr, u64)> = None;
        let mut cur = PmAddr::new(ctx.load(fld(self.root, 0)));
        loop {
            if ctx.load(fld(cur, 0)) == 0 {
                break;
            }
            let bit = ctx.load(fld(cur, 1));
            if bit > crit {
                break;
            }
            ctx.compute(CMP_COST);
            let dir = bit_of(key, bit);
            parent = Some((cur, dir));
            cur = PmAddr::new(ctx.load(fld(cur, 2 + dir)));
        }
        let dir_new = bit_of(key, crit);
        ctx.store(fld(node, 2 + dir_new), leaf.raw(), INTERNAL_INIT);
        ctx.store(fld(node, 2 + (1 - dir_new)), cur.raw(), INTERNAL_INIT);
        // The single logged store: the link that publishes the subtree.
        match parent {
            Some((p, dir)) => ctx.store(fld(p, 2 + dir), node.raw(), LINK),
            None => ctx.store(fld(self.root, 0), node.raw(), ROOT_PTR),
        }
        let size = ctx.load(fld(self.root, 1)) + 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
    }

    fn remove(&mut self, ctx: &mut PmContext, key: u64) -> bool {
        use sites::*;
        ctx.tx_begin();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            ctx.tx_commit();
            return false;
        }
        // Walk to the leaf, remembering the parent internal node and
        // its grandparent link.
        let mut gp: Option<(PmAddr, u64)> = None;
        let mut parent: Option<(PmAddr, u64)> = None;
        let mut cur = PmAddr::new(r);
        while ctx.load(fld(cur, 0)) == 1 {
            ctx.compute(CMP_COST);
            let bit = ctx.load(fld(cur, 1));
            let dir = bit_of(key, bit);
            gp = parent;
            parent = Some((cur, dir));
            cur = PmAddr::new(ctx.load(fld(cur, 2 + dir)));
        }
        if ctx.load(fld(cur, 1)) != key {
            ctx.tx_commit();
            return false;
        }
        let blob = ctx.load(fld(cur, 2));
        match parent {
            None => {
                // The root is the only leaf.
                ctx.store(fld(self.root, 0), 0, ROOT_PTR);
            }
            Some((p, dir)) => {
                // Splice the parent internal node out: its other child
                // takes its place.
                let sibling = ctx.load(fld(p, 2 + (1 - dir)));
                match gp {
                    Some((g, gdir)) => ctx.store(fld(g, 2 + gdir), sibling, LINK),
                    None => ctx.store(fld(self.root, 0), sibling, ROOT_PTR),
                }
                // Poison the dying internal node (freed this txn).
                ctx.store(fld(p, 2), 0, RM_POISON);
                ctx.free(p);
            }
        }
        ctx.store(fld(cur, 1), 0, RM_POISON);
        ctx.free(cur);
        ctx.free(PmAddr::new(blob));
        let size = ctx.load(fld(self.root, 1)) - 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
        true
    }

    fn update(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) -> bool {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            ctx.tx_commit();
            return false;
        }
        let leaf = self.closest_leaf(ctx, key);
        if ctx.load(fld(leaf, 1)) != key {
            ctx.tx_commit();
            return false;
        }
        let old = ctx.load(fld(leaf, 2));
        let blob = ctx.alloc(self.value_bytes);
        ctx.store_bytes(blob, value, VALUE);
        ctx.store(fld(leaf, 2), blob.raw(), UPD_VPTR);
        ctx.free(PmAddr::new(old));
        ctx.tx_commit();
        true
    }

    fn get(&mut self, ctx: &mut PmContext, key: u64) -> Option<Vec<u8>> {
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            return None;
        }
        let leaf = self.closest_leaf(ctx, key);
        if ctx.load(fld(leaf, 1)) == key {
            let blob = PmAddr::new(ctx.load(fld(leaf, 2)));
            let mut v = vec![0u8; self.value_bytes as usize];
            ctx.load_bytes(blob, &mut v);
            return Some(v);
        }
        None
    }

    fn contains(&self, ctx: &PmContext, key: u64) -> bool {
        self.value_of(ctx, key).is_some()
    }

    fn value_of(&self, ctx: &PmContext, key: u64) -> Option<Vec<u8>> {
        let mut n = ctx.peek(fld(self.root, 0));
        if n == 0 {
            return None;
        }
        loop {
            let a = PmAddr::new(n);
            if ctx.peek(fld(a, 0)) == 0 {
                if ctx.peek(fld(a, 1)) == key {
                    let blob = PmAddr::new(ctx.peek(fld(a, 2)));
                    let mut v = vec![0u8; self.value_bytes as usize];
                    ctx.peek_bytes(blob, &mut v);
                    return Some(v);
                }
                return None;
            }
            let bit = ctx.peek(fld(a, 1));
            n = ctx.peek(fld(a, 2 + bit_of(key, bit)));
        }
    }

    fn len(&self, ctx: &PmContext) -> usize {
        let mut count = 0;
        let r = ctx.peek(fld(self.root, 0));
        if r == 0 {
            return 0;
        }
        let mut stack = vec![r];
        while let Some(n) = stack.pop() {
            let a = PmAddr::new(n);
            if ctx.peek(fld(a, 0)) == 0 {
                count += 1;
            } else {
                stack.push(ctx.peek(fld(a, 2)));
                stack.push(ctx.peek(fld(a, 3)));
            }
        }
        count
    }

    fn check_invariants(&self, ctx: &PmContext) -> Result<(), String> {
        // Crit-bit indices strictly increase along every path, and each
        // leaf must be reachable by following its own key's bits.
        let r = ctx.peek(fld(self.root, 0));
        let mut count = 0usize;
        if r != 0 {
            let mut stack = vec![(r, 0u64, false)]; // (node, min bit, bound active)
            while let Some((n, min_bit, active)) = stack.pop() {
                let a = PmAddr::new(n);
                if ctx.peek(fld(a, 0)) == 0 {
                    count += 1;
                    let key = ctx.peek(fld(a, 1));
                    if self.value_of(ctx, key).is_none() {
                        return Err(format!("leaf key {key} not reachable by its own bits"));
                    }
                    continue;
                }
                let bit = ctx.peek(fld(a, 1));
                if active && bit <= min_bit {
                    return Err(format!("crit-bit order violated: {bit} after {min_bit}"));
                }
                if bit > 63 {
                    return Err(format!("crit-bit {bit} out of range"));
                }
                stack.push((ctx.peek(fld(a, 2)), bit, true));
                stack.push((ctx.peek(fld(a, 3)), bit, true));
            }
        }
        let size = ctx.peek(fld(self.root, 1));
        if size as usize != count {
            return Err(format!("size {size} != leaf count {count}"));
        }
        Ok(())
    }

    fn reachable(&self, ctx: &PmContext) -> Vec<PmAddr> {
        let mut out = vec![self.root];
        let r = ctx.peek(fld(self.root, 0));
        if r == 0 {
            return out;
        }
        let mut stack = vec![r];
        while let Some(n) = stack.pop() {
            let a = PmAddr::new(n);
            out.push(a);
            if ctx.peek(fld(a, 0)) == 0 {
                out.push(PmAddr::new(ctx.peek(fld(a, 2))));
            } else {
                stack.push(ctx.peek(fld(a, 2)));
                stack.push(ctx.peek(fld(a, 3)));
            }
        }
        out
    }

    fn recover(&mut self, ctx: &mut PmContext) {
        let count = self.len(ctx) as u64;
        ctx.recovery_write(fld(self.root, 1), count);
    }
}

impl crate::runner::RangeIndex for CtreeKv {
    fn scan(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        // MSB-first crit-bit tries are ordered: an in-order DFS (0-bit
        // child first) emits keys in ascending order.
        let mut out = Vec::new();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            return out;
        }
        let mut stack = vec![r];
        while let Some(n) = stack.pop() {
            let a = PmAddr::new(n);
            if ctx.load(fld(a, 0)) == 0 {
                let k = ctx.load(fld(a, 1));
                if (lo..=hi).contains(&k) {
                    let blob = PmAddr::new(ctx.load(fld(a, 2)));
                    let mut v = vec![0u8; self.value_bytes as usize];
                    ctx.load_bytes(blob, &mut v);
                    out.push((k, v));
                }
                continue;
            }
            ctx.compute(CMP_COST);
            stack.push(ctx.load(fld(a, 3)));
            stack.push(ctx.load(fld(a, 2)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{value_for, ycsb_load};
    use slpmt_core::Scheme;

    fn fresh(source: AnnotationSource) -> (PmContext, CtreeKv) {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let t = CtreeKv::new(&mut ctx, 32, source);
        (ctx, t)
    }

    #[test]
    fn insert_lookup_and_invariants() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(300, 32, 1);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 300);
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), op.value);
        }
    }

    #[test]
    fn adjacent_keys_diverge_on_low_bits() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let v = value_for(0, 32);
        for k in 1..=64u64 {
            t.insert(&mut ctx, k, &v);
        }
        t.check_invariants(&ctx).unwrap();
        for k in 1..=64u64 {
            assert!(t.contains(&ctx, k));
        }
        assert!(!t.contains(&ctx, 65));
    }

    #[test]
    fn one_logged_store_per_insert() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(32, 32, 2);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        // Per insert: one logged link + (lazily logged) size counter.
        // All leaf/internal/value stores are log-free.
        let per_op = ctx.machine().stats().log_records_created as f64 / ops.len() as f64;
        assert!(per_op <= 3.0, "too many log records per insert: {per_op}");
    }

    #[test]
    fn crash_recovery() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(150, 32, 3);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        ctx.crash_and_recover();
        t.recover(&mut ctx);
        ctx.gc(&t.reachable(&ctx));
        t.check_invariants(&ctx).unwrap();
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), value_for(op.key, 32));
        }
    }

    #[test]
    fn compiler_annotations_preserve_correctness() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Compiler);
        for op in ycsb_load(100, 32, 4) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn ir_is_valid() {
        assert!(CtreeKv::ir().validate().is_ok());
    }
}
