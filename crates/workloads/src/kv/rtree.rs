//! Radix-tree backend for the PMDK-style KV store.
//!
//! A path-compressed radix tree over 64-bit keys split into sixteen
//! 4-bit nibbles. Splitting a compressed edge *copies* the split node
//! into a fresh allocation instead of modifying it — the key-movement
//! pattern §VI-E describes ("kv-rtree may create more than one node in
//! one insertion. It thus gives more opportunities for selective
//! logging. The data structure, however, devotes a substantial
//! computation time") — so an insert can allocate a branch node, a
//! copy of the split node, a leaf and a value blob, all written
//! log-free, with a single logged link store.
//!
//! ### Persistent layout
//!
//! ```text
//! root:  [0]=index root  [1]=size
//! node:  [0]=prefix_len (nibbles) [1]=prefix (packed, MSB-first)
//!        [2]=value blob (when a key terminates here) [3..19]=children
//! ```

use crate::ctx::{AnnotationSource, PmContext};
use crate::runner::DurableIndex;
use slpmt_annotate::{Annotation, AnnotationTable, Operand, ParamKind, TxnIr, TxnIrBuilder};
use slpmt_pmem::PmAddr;

/// Store sites of the insert transaction.
pub mod sites {
    use slpmt_annotate::SiteId;
    /// Fresh node initialisation (leaf or branch).
    pub const NEW_NODE: SiteId = SiteId(0);
    /// Node copy during an edge split (key movement).
    pub const SPLIT_COPY: SiteId = SiteId(1);
    /// Value blob payload.
    pub const VALUE: SiteId = SiteId(2);
    /// Child link in an existing node.
    pub const LINK: SiteId = SiteId(3);
    /// KV root pointer.
    pub const ROOT_PTR: SiteId = SiteId(4);
    /// KV size counter.
    pub const SIZE: SiteId = SiteId(5);
    /// Poison store into a node being freed (Pattern 1, free case).
    pub const RM_POISON: SiteId = SiteId(6);
    /// Value-pointer swap on update (copy-on-write blob replace).
    pub const UPD_VPTR: SiteId = SiteId(7);
}

/// Nibbles per key (64 bits / 4).
pub const KEY_NIBBLES: u64 = 16;
const NODE_WORDS: u64 = 19;
const NIBBLE_COST: u64 = 110;

fn fld(base: PmAddr, i: u64) -> PmAddr {
    base.add(i * 8)
}

fn child_at(n: PmAddr, nib: u64) -> PmAddr {
    fld(n, 3 + nib)
}

fn nibble(key: u64, i: u64) -> u64 {
    (key >> ((KEY_NIBBLES - 1 - i) * 4)) & 0xF
}

/// Packs `nibs` (MSB-first) into a prefix word.
fn pack(nibs: &[u64]) -> u64 {
    let mut p = 0u64;
    for (i, &n) in nibs.iter().enumerate() {
        p |= n << ((KEY_NIBBLES as usize - 1 - i) * 4);
    }
    p
}

/// Nibble `i` of a packed prefix.
fn prefix_nibble(prefix: u64, i: u64) -> u64 {
    (prefix >> ((KEY_NIBBLES - 1 - i) * 4)) & 0xF
}

/// The radix-tree KV backend.
#[derive(Debug, Clone)]
pub struct RtreeKv {
    root: PmAddr,
    value_bytes: u64,
}

impl RtreeKv {
    /// Hand-written annotations: every fresh-node store (including the
    /// split copies) is log-free; the size counter is lazy.
    pub fn manual_table() -> AnnotationTable {
        use sites::*;
        [
            (NEW_NODE, Annotation::LogFree),
            (SPLIT_COPY, Annotation::LogFree),
            (VALUE, Annotation::LogFree),
            (RM_POISON, Annotation::LazyLogFree),
        ]
        .into_iter()
        .collect()
    }

    /// IR for the compiler pass.
    pub fn ir() -> TxnIr {
        use sites::*;
        let mut b = TxnIrBuilder::new("kv-rtree-insert");
        let root = b.param(ParamKind::PersistentPtr);
        let key = b.param(ParamKind::Key);
        let val = b.param(ParamKind::Value);
        let blob = b.alloc();
        b.store_at(VALUE, blob, 0, Operand::Value(val));
        let leaf = b.alloc();
        b.store_at(NEW_NODE, leaf, 0, Operand::Value(key));
        // Edge split: copy the old node into a fresh allocation.
        let parent = b.load(root, 0);
        let old = b.load(parent, 3);
        let old_prefix = b.load(old, 1);
        let copy = b.alloc();
        b.store_at(SPLIT_COPY, copy, 1, Operand::Value(old_prefix));
        let branch = b.alloc();
        b.store_at(NEW_NODE, branch, 3, Operand::Value(copy));
        b.store_at(LINK, parent, 4, Operand::Value(branch));
        let size = b.load(root, 1);
        let size2 = b.compute_opaque(vec![Operand::Value(size)]);
        b.store_at(SIZE, root, 1, Operand::Value(size2));
        b.store_at(ROOT_PTR, root, 0, Operand::Value(branch));
        b.build()
    }

    /// Builds an empty radix KV store (untimed setup).
    ///
    /// # Panics
    ///
    /// Panics if `value_size` is not a multiple of 8.
    pub fn new(ctx: &mut PmContext, value_size: usize, source: AnnotationSource) -> Self {
        assert!(
            value_size.is_multiple_of(8),
            "value size must be whole words"
        );
        ctx.set_table(source.resolve(&Self::manual_table(), &Self::ir()));
        let root = ctx.setup_alloc(2 * 8);
        RtreeKv {
            root,
            value_bytes: value_size as u64,
        }
    }

    /// Allocates a node with the given prefix (and zeroed children),
    /// written through `site`.
    fn new_node(
        &self,
        ctx: &mut PmContext,
        prefix: &[u64],
        site: slpmt_annotate::SiteId,
    ) -> PmAddr {
        let n = ctx.alloc(NODE_WORDS * 8);
        ctx.store(fld(n, 0), prefix.len() as u64, site);
        ctx.store(fld(n, 1), pack(prefix), site);
        ctx.store(fld(n, 2), 0, site);
        for nib in 0..16 {
            ctx.store(child_at(n, nib), 0, site);
        }
        n
    }

    fn remaining_nibbles(key: u64, from: u64) -> Vec<u64> {
        (from..KEY_NIBBLES).map(|i| nibble(key, i)).collect()
    }
}

impl DurableIndex for RtreeKv {
    fn name(&self) -> &'static str {
        "kv-rtree"
    }

    fn scan_range(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        Some(crate::runner::RangeIndex::scan(self, ctx, lo, hi))
    }

    fn insert(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let blob = ctx.alloc(self.value_bytes);
        ctx.store_bytes(blob, value, VALUE);

        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            let leaf = self.new_node(ctx, &Self::remaining_nibbles(key, 0), NEW_NODE);
            ctx.store(fld(leaf, 2), blob.raw(), NEW_NODE);
            ctx.store(fld(self.root, 0), leaf.raw(), ROOT_PTR);
            let size = ctx.load(fld(self.root, 1)) + 1;
            ctx.store(fld(self.root, 1), size, SIZE);
            ctx.tx_commit();
            return;
        }

        // Descend, consuming nibbles.
        let mut consumed = 0u64;
        let mut link: Option<(PmAddr, u64)> = None; // parent node + nibble
        let mut cur = PmAddr::new(r);
        loop {
            let plen = ctx.load(fld(cur, 0));
            let prefix = ctx.load(fld(cur, 1));
            // Compare the compressed prefix nibble by nibble.
            let mut matched = 0u64;
            while matched < plen {
                ctx.compute(NIBBLE_COST);
                if nibble(key, consumed + matched) != prefix_nibble(prefix, matched) {
                    break;
                }
                matched += 1;
            }
            if matched < plen {
                // Edge split: branch at `matched`. Copy the old node
                // with a shortened prefix (key movement into a fresh
                // allocation — the original is never modified).
                ctx.compute(NIBBLE_COST * plen); // copy bookkeeping
                let old_tail: Vec<u64> = (matched + 1..plen)
                    .map(|i| prefix_nibble(prefix, i))
                    .collect();
                let copy = self.new_node(ctx, &old_tail, SPLIT_COPY);
                // Copy value pointer and children of the split node.
                let v = ctx.load(fld(cur, 2));
                ctx.store(fld(copy, 2), v, SPLIT_COPY);
                for nib in 0..16 {
                    let c = ctx.load(child_at(cur, nib));
                    if c != 0 {
                        ctx.store(child_at(copy, nib), c, SPLIT_COPY);
                    }
                }
                // Fresh branch holding the common prefix.
                let common: Vec<u64> = (0..matched).map(|i| prefix_nibble(prefix, i)).collect();
                let branch = self.new_node(ctx, &common, NEW_NODE);
                ctx.store(
                    child_at(branch, prefix_nibble(prefix, matched)),
                    copy.raw(),
                    NEW_NODE,
                );
                // Fresh leaf for the inserted key.
                let key_nib = nibble(key, consumed + matched);
                let leaf = self.new_node(
                    ctx,
                    &Self::remaining_nibbles(key, consumed + matched + 1),
                    NEW_NODE,
                );
                ctx.store(fld(leaf, 2), blob.raw(), NEW_NODE);
                ctx.store(child_at(branch, key_nib), leaf.raw(), NEW_NODE);
                // The single logged store publishes the branch.
                match link {
                    Some((p, nib)) => ctx.store(child_at(p, nib), branch.raw(), LINK),
                    None => ctx.store(fld(self.root, 0), branch.raw(), ROOT_PTR),
                }
                // The split node is retired; recovery GC reclaims it if
                // the transaction is interrupted.
                ctx.free(cur);
                break;
            }
            consumed += plen;
            if consumed == KEY_NIBBLES {
                panic!("duplicate key {key:#x} unsupported");
            }
            let nib = nibble(key, consumed);
            let c = ctx.load(child_at(cur, nib));
            if c == 0 {
                // Extend: a fresh leaf under an existing node.
                let leaf =
                    self.new_node(ctx, &Self::remaining_nibbles(key, consumed + 1), NEW_NODE);
                ctx.store(fld(leaf, 2), blob.raw(), NEW_NODE);
                ctx.store(child_at(cur, nib), leaf.raw(), LINK);
                break;
            }
            link = Some((cur, nib));
            consumed += 1;
            cur = PmAddr::new(c);
        }
        let size = ctx.load(fld(self.root, 1)) + 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
    }

    fn remove(&mut self, ctx: &mut PmContext, key: u64) -> bool {
        use sites::*;
        ctx.tx_begin();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            ctx.tx_commit();
            return false;
        }
        let mut link: Option<(PmAddr, u64)> = None;
        let mut consumed = 0u64;
        let mut cur = PmAddr::new(r);
        loop {
            let plen = ctx.load(fld(cur, 0));
            let prefix = ctx.load(fld(cur, 1));
            for i in 0..plen {
                ctx.compute(NIBBLE_COST);
                if nibble(key, consumed + i) != prefix_nibble(prefix, i) {
                    ctx.tx_commit();
                    return false;
                }
            }
            consumed += plen;
            if consumed == KEY_NIBBLES {
                break;
            }
            let nib = nibble(key, consumed);
            let c = ctx.load(child_at(cur, nib));
            if c == 0 {
                ctx.tx_commit();
                return false;
            }
            link = Some((cur, nib));
            consumed += 1;
            cur = PmAddr::new(c);
        }
        let blob = ctx.load(fld(cur, 2));
        if blob == 0 {
            ctx.tx_commit();
            return false;
        }
        // A terminal node consumed all sixteen nibbles, so it has no
        // children: unlink, poison and free it with its blob. Interior
        // pass-through nodes are left un-merged (path compression is
        // re-established by later splits).
        match link {
            Some((p, nib)) => ctx.store(child_at(p, nib), 0, LINK),
            None => ctx.store(fld(self.root, 0), 0, ROOT_PTR),
        }
        ctx.store(fld(cur, 2), 0, RM_POISON);
        ctx.free(cur);
        ctx.free(PmAddr::new(blob));
        let size = ctx.load(fld(self.root, 1)) - 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
        true
    }

    fn update(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) -> bool {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            ctx.tx_commit();
            return false;
        }
        let mut consumed = 0u64;
        let mut cur = PmAddr::new(r);
        loop {
            let plen = ctx.load(fld(cur, 0));
            let prefix = ctx.load(fld(cur, 1));
            for i in 0..plen {
                ctx.compute(NIBBLE_COST);
                if nibble(key, consumed + i) != prefix_nibble(prefix, i) {
                    ctx.tx_commit();
                    return false;
                }
            }
            consumed += plen;
            if consumed == KEY_NIBBLES {
                let old = ctx.load(fld(cur, 2));
                if old == 0 {
                    ctx.tx_commit();
                    return false;
                }
                let blob = ctx.alloc(self.value_bytes);
                ctx.store_bytes(blob, value, VALUE);
                ctx.store(fld(cur, 2), blob.raw(), UPD_VPTR);
                ctx.free(PmAddr::new(old));
                ctx.tx_commit();
                return true;
            }
            let c = ctx.load(child_at(cur, nibble(key, consumed)));
            if c == 0 {
                ctx.tx_commit();
                return false;
            }
            consumed += 1;
            cur = PmAddr::new(c);
        }
    }

    fn get(&mut self, ctx: &mut PmContext, key: u64) -> Option<Vec<u8>> {
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            return None;
        }
        let mut consumed = 0u64;
        let mut cur = PmAddr::new(r);
        loop {
            let plen = ctx.load(fld(cur, 0));
            let prefix = ctx.load(fld(cur, 1));
            for i in 0..plen {
                ctx.compute(NIBBLE_COST);
                if nibble(key, consumed + i) != prefix_nibble(prefix, i) {
                    return None;
                }
            }
            consumed += plen;
            if consumed == KEY_NIBBLES {
                let blob = ctx.load(fld(cur, 2));
                if blob == 0 {
                    return None;
                }
                let mut v = vec![0u8; self.value_bytes as usize];
                ctx.load_bytes(PmAddr::new(blob), &mut v);
                return Some(v);
            }
            let c = ctx.load(child_at(cur, nibble(key, consumed)));
            if c == 0 {
                return None;
            }
            consumed += 1;
            cur = PmAddr::new(c);
        }
    }

    fn contains(&self, ctx: &PmContext, key: u64) -> bool {
        self.value_of(ctx, key).is_some()
    }

    fn value_of(&self, ctx: &PmContext, key: u64) -> Option<Vec<u8>> {
        let mut n = ctx.peek(fld(self.root, 0));
        if n == 0 {
            return None;
        }
        let mut consumed = 0u64;
        loop {
            let a = PmAddr::new(n);
            let plen = ctx.peek(fld(a, 0));
            let prefix = ctx.peek(fld(a, 1));
            for i in 0..plen {
                if consumed + i >= KEY_NIBBLES
                    || nibble(key, consumed + i) != prefix_nibble(prefix, i)
                {
                    return None;
                }
            }
            consumed += plen;
            if consumed == KEY_NIBBLES {
                let blob = ctx.peek(fld(a, 2));
                if blob == 0 {
                    return None;
                }
                let mut v = vec![0u8; self.value_bytes as usize];
                ctx.peek_bytes(PmAddr::new(blob), &mut v);
                return Some(v);
            }
            n = ctx.peek(child_at(a, nibble(key, consumed)));
            if n == 0 {
                return None;
            }
            consumed += 1;
        }
    }

    fn len(&self, ctx: &PmContext) -> usize {
        let mut count = 0;
        self.walk(ctx, |_, _, terminal| {
            if terminal {
                count += 1;
            }
        });
        count
    }

    fn check_invariants(&self, ctx: &PmContext) -> Result<(), String> {
        // Every terminal node's reconstructed key must round-trip
        // through `value_of`, and path depths must not exceed the key
        // length.
        let mut err = None;
        let mut count = 0usize;
        self.walk(ctx, |key_nibs, _node, terminal| {
            if err.is_some() {
                return;
            }
            if key_nibs.len() as u64 > KEY_NIBBLES {
                err = Some(format!("path longer than key: {} nibbles", key_nibs.len()));
                return;
            }
            if terminal {
                count += 1;
                if key_nibs.len() as u64 != KEY_NIBBLES {
                    err = Some(format!("terminal at depth {} nibbles", key_nibs.len()));
                    return;
                }
                let key = pack(key_nibs);
                if self.value_of(ctx, key).is_none() {
                    err = Some(format!("key {key:#x} not reachable by its own nibbles"));
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        let size = ctx.peek(fld(self.root, 1));
        if size as usize != count {
            return Err(format!("size {size} != terminal count {count}"));
        }
        Ok(())
    }

    fn reachable(&self, ctx: &PmContext) -> Vec<PmAddr> {
        let mut out = vec![self.root];
        self.walk(ctx, |_, node, terminal| {
            out.push(node);
            if terminal {
                let blob = ctx.peek(fld(node, 2));
                if blob != 0 {
                    out.push(PmAddr::new(blob));
                }
            }
        });
        out
    }

    fn recover(&mut self, ctx: &mut PmContext) {
        let count = self.len(ctx) as u64;
        ctx.recovery_write(fld(self.root, 1), count);
    }
}

impl RtreeKv {
    /// Depth-first walk; `f(path_nibbles, node, is_terminal)`.
    fn walk(&self, ctx: &PmContext, mut f: impl FnMut(&[u64], PmAddr, bool)) {
        let r = ctx.peek(fld(self.root, 0));
        if r == 0 {
            return;
        }
        let mut stack: Vec<(u64, Vec<u64>)> = vec![(r, Vec::new())];
        while let Some((n, mut path)) = stack.pop() {
            let a = PmAddr::new(n);
            let plen = ctx.peek(fld(a, 0));
            let prefix = ctx.peek(fld(a, 1));
            for i in 0..plen {
                path.push(prefix_nibble(prefix, i));
            }
            let terminal = path.len() as u64 == KEY_NIBBLES;
            f(&path, a, terminal);
            if !terminal {
                for nib in 0..16u64 {
                    let c = ctx.peek(child_at(a, nib));
                    if c != 0 {
                        let mut p = path.clone();
                        p.push(nib);
                        stack.push((c, p));
                    }
                }
            }
        }
    }
}

impl crate::runner::RangeIndex for RtreeKv {
    fn scan(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        // DFS in nibble order; a node whose consumed-prefix key window
        // is disjoint from [lo, hi] is pruned.
        let mut out = Vec::new();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            return out;
        }
        // (node, partial key value, nibbles consumed)
        let mut stack: Vec<(u64, u64, u64)> = vec![(r, 0, 0)];
        while let Some((n, partial, consumed)) = stack.pop() {
            let a = PmAddr::new(n);
            let plen = ctx.load(fld(a, 0));
            let prefix = ctx.load(fld(a, 1));
            let mut value = partial;
            for i in 0..plen {
                ctx.compute(NIBBLE_COST);
                value = (value << 4) | prefix_nibble(prefix, i);
            }
            let depth = consumed + plen;
            let rem = (KEY_NIBBLES - depth) * 4;
            let window_lo = if rem == 64 { 0 } else { value << rem };
            let window_hi = if rem == 64 {
                u64::MAX
            } else {
                window_lo | ((1u64 << rem) - 1)
            };
            if window_hi < lo || window_lo > hi {
                continue;
            }
            if depth == KEY_NIBBLES {
                let blob = ctx.load(fld(a, 2));
                if blob != 0 {
                    let mut v = vec![0u8; self.value_bytes as usize];
                    ctx.load_bytes(PmAddr::new(blob), &mut v);
                    out.push((value, v));
                }
                continue;
            }
            for nib in (0..16u64).rev() {
                let c = ctx.load(child_at(a, nib));
                if c != 0 {
                    stack.push((c, (value << 4) | nib, depth + 1));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{value_for, ycsb_load};
    use slpmt_core::Scheme;

    fn fresh(source: AnnotationSource) -> (PmContext, RtreeKv) {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let t = RtreeKv::new(&mut ctx, 32, source);
        (ctx, t)
    }

    #[test]
    fn nibble_packing_round_trips() {
        let key = 0x0123_4567_89AB_CDEF;
        let nibs: Vec<u64> = (0..16).map(|i| nibble(key, i)).collect();
        assert_eq!(nibs[0], 0x0);
        assert_eq!(nibs[15], 0xF);
        assert_eq!(pack(&nibs), key);
    }

    #[test]
    fn insert_lookup_and_invariants() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(300, 32, 1);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 300);
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), op.value);
        }
        assert!(!t.contains(&ctx, 0));
    }

    #[test]
    fn shared_prefixes_split_edges() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let v = value_for(0, 32);
        // Keys sharing long prefixes force edge splits.
        for k in [0x1111_0000u64, 0x1111_0001, 0x1111_1000, 0x2222_0000] {
            t.insert(&mut ctx, k, &v);
        }
        t.check_invariants(&ctx).unwrap();
        for k in [0x1111_0000u64, 0x1111_0001, 0x1111_1000, 0x2222_0000] {
            assert!(t.contains(&ctx, k));
        }
    }

    #[test]
    fn split_frees_the_original_node() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let v = value_for(0, 32);
        t.insert(&mut ctx, 0x1111_0000, &v);
        let first = PmAddr::new(ctx.peek(fld(t.root, 0)));
        t.insert(&mut ctx, 0x1111_0001, &v); // splits the leaf's edge
        assert!(!ctx.heap().is_live(first), "split node retired");
        t.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn crash_recovery() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(150, 32, 2);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        ctx.crash_and_recover();
        t.recover(&mut ctx);
        ctx.gc(&t.reachable(&ctx));
        t.check_invariants(&ctx).unwrap();
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), value_for(op.key, 32));
        }
    }

    #[test]
    fn compiler_annotations_preserve_correctness() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Compiler);
        for op in ycsb_load(100, 32, 3) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn ir_is_valid() {
        assert!(RtreeKv::ir().validate().is_ok());
    }
}
