//! B-tree backend for the PMDK-style KV store.
//!
//! An order-8 B-tree (up to 7 keys and 8 children per node) with
//! preemptive top-down splitting. Splits move the upper half of a full
//! node into a fresh allocation — Pattern 1 log-free stores — while
//! in-node shifts overwrite live cells and stay logged.
//!
//! ### Persistent layout
//!
//! ```text
//! root:  [0]=index root  [1]=size
//! node:  [0]=nkeys [1]=leaf? [2..9]=keys[7] [9..17]=slots[8]
//!        (slots are children for internal nodes, value blobs for
//!        leaves)
//! ```

use crate::ctx::{AnnotationSource, PmContext};
use crate::runner::DurableIndex;
use slpmt_annotate::{Annotation, AnnotationTable, Operand, ParamKind, TxnIr, TxnIrBuilder};
use slpmt_pmem::PmAddr;

/// Store sites of the insert transaction.
pub mod sites {
    use slpmt_annotate::SiteId;
    /// Fresh node's meta fields (nkeys/leaf).
    pub const NEW_META: SiteId = SiteId(0);
    /// Key moved into a fresh node during a split.
    pub const SPLIT_COPY_KEY: SiteId = SiteId(1);
    /// Slot moved into a fresh node during a split.
    pub const SPLIT_COPY_SLOT: SiteId = SiteId(2);
    /// Value blob payload.
    pub const VALUE: SiteId = SiteId(3);
    /// Existing node's nkeys update.
    pub const NKEYS_UPD: SiteId = SiteId(4);
    /// Key shift within an existing node.
    pub const SHIFT_KEY: SiteId = SiteId(5);
    /// Slot shift within an existing node.
    pub const SHIFT_SLOT: SiteId = SiteId(6);
    /// Key insertion into an existing node.
    pub const INS_KEY: SiteId = SiteId(7);
    /// Slot insertion into an existing node.
    pub const INS_SLOT: SiteId = SiteId(8);
    /// KV root pointer update.
    pub const ROOT_PTR: SiteId = SiteId(9);
    /// KV size counter.
    pub const SIZE: SiteId = SiteId(10);
    /// Left-shift within a leaf on removal.
    pub const RM_SHIFT: SiteId = SiteId(11);
    /// Value-pointer swap on update (copy-on-write blob replace).
    pub const UPD_VPTR: SiteId = SiteId(12);
}

/// Maximum keys per node (order 8).
pub const MAX_KEYS: u64 = 7;
const CMP_COST: u64 = 5;

fn fld(base: PmAddr, i: u64) -> PmAddr {
    base.add(i * 8)
}

fn key_at(n: PmAddr, i: u64) -> PmAddr {
    fld(n, 2 + i)
}

fn slot_at(n: PmAddr, i: u64) -> PmAddr {
    fld(n, 9 + i)
}

const NODE_WORDS: u64 = 17;

/// The B-tree KV backend.
#[derive(Debug, Clone)]
pub struct BtreeKv {
    root: PmAddr,
    value_bytes: u64,
}

impl BtreeKv {
    /// Hand-written annotations: fresh-node stores and value blobs are
    /// log-free; the size counter is lazily persistent.
    pub fn manual_table() -> AnnotationTable {
        use sites::*;
        [
            (NEW_META, Annotation::LogFree),
            (SPLIT_COPY_KEY, Annotation::LogFree),
            (SPLIT_COPY_SLOT, Annotation::LogFree),
            (VALUE, Annotation::LogFree),
        ]
        .into_iter()
        .collect()
    }

    /// IR for the compiler (the PMKV benchmarks run compiler-annotated
    /// by default, §VI-A).
    pub fn ir() -> TxnIr {
        use sites::*;
        let mut b = TxnIrBuilder::new("kv-btree-insert");
        let root = b.param(ParamKind::PersistentPtr);
        let key = b.param(ParamKind::Key);
        let val = b.param(ParamKind::Value);
        let node = b.load(root, 0);
        let blob = b.alloc();
        b.store_at(VALUE, blob, 0, Operand::Value(val));
        // Split: fresh sibling receives the upper half.
        let sib = b.alloc();
        let mk = b.load(node, 5);
        let ms = b.load(node, 12);
        b.store_at(NEW_META, sib, 0, Operand::Const(3));
        b.store_at(SPLIT_COPY_KEY, sib, 2, Operand::Value(mk));
        b.store_at(SPLIT_COPY_SLOT, sib, 9, Operand::Value(ms));
        let nk = b.load(node, 0);
        let nk2 = b.compute(vec![Operand::Value(nk), Operand::Const(3)]);
        b.store_at(NKEYS_UPD, node, 0, Operand::Value(nk2));
        // In-node shift and insert.
        let k1 = b.load(node, 3);
        b.store_at(SHIFT_KEY, node, 4, Operand::Value(k1));
        let s1 = b.load(node, 10);
        b.store_at(SHIFT_SLOT, node, 11, Operand::Value(s1));
        b.store_at(INS_KEY, node, 3, Operand::Value(key));
        b.store_at(INS_SLOT, node, 10, Operand::Value(blob));
        b.store_at(ROOT_PTR, root, 0, Operand::Value(sib));
        let size = b.load(root, 1);
        let size2 = b.compute_opaque(vec![Operand::Value(size)]);
        b.store_at(SIZE, root, 1, Operand::Value(size2));
        b.build()
    }

    /// Builds an empty B-tree KV store (untimed setup).
    ///
    /// # Panics
    ///
    /// Panics if `value_size` is not a multiple of 8.
    pub fn new(ctx: &mut PmContext, value_size: usize, source: AnnotationSource) -> Self {
        assert!(
            value_size.is_multiple_of(8),
            "value size must be whole words"
        );
        ctx.set_table(source.resolve(&Self::manual_table(), &Self::ir()));
        let root = ctx.setup_alloc(2 * 8);
        BtreeKv {
            root,
            value_bytes: value_size as u64,
        }
    }

    fn new_node(&self, ctx: &mut PmContext, leaf: bool) -> PmAddr {
        use sites::*;
        let n = ctx.alloc(NODE_WORDS * 8);
        ctx.store(fld(n, 0), 0, NEW_META);
        ctx.store(fld(n, 1), leaf as u64, NEW_META);
        for i in 0..8 {
            ctx.store(slot_at(n, i), 0, NEW_META);
        }
        n
    }

    /// Splits the full child at `idx` of `parent` (both resident),
    /// B+-tree style: a leaf keeps keys 0..3 and its sibling receives
    /// keys 3..7 (the separator is duplicated upward); an internal node
    /// keeps keys 0..3, promotes key 3, and its sibling receives keys
    /// 4..7 with children 4..=7.
    fn split_child(&self, ctx: &mut PmContext, parent: PmAddr, idx: u64) {
        use sites::*;
        let child = PmAddr::new(ctx.load(slot_at(parent, idx)));
        let leaf = ctx.load(fld(child, 1)) == 1;
        let sib = self.new_node(ctx, leaf);
        let separator = ctx.load(key_at(child, 3));
        if leaf {
            for i in 0..4u64 {
                let k = ctx.load(key_at(child, 3 + i));
                ctx.store(key_at(sib, i), k, SPLIT_COPY_KEY);
                let s = ctx.load(slot_at(child, 3 + i));
                ctx.store(slot_at(sib, i), s, SPLIT_COPY_SLOT);
            }
            ctx.store(fld(sib, 0), 4, NEW_META);
        } else {
            for i in 0..3u64 {
                let k = ctx.load(key_at(child, 4 + i));
                ctx.store(key_at(sib, i), k, SPLIT_COPY_KEY);
            }
            for i in 0..4u64 {
                let s = ctx.load(slot_at(child, 4 + i));
                ctx.store(slot_at(sib, i), s, SPLIT_COPY_SLOT);
            }
            ctx.store(fld(sib, 0), 3, NEW_META);
        }
        ctx.store(fld(child, 0), 3, NKEYS_UPD);
        // Shift the parent's keys/slots right of idx and link in.
        let pn = ctx.load(fld(parent, 0));
        let mut i = pn;
        while i > idx {
            let k = ctx.load(key_at(parent, i - 1));
            ctx.store(key_at(parent, i), k, SHIFT_KEY);
            let s = ctx.load(slot_at(parent, i));
            ctx.store(slot_at(parent, i + 1), s, SHIFT_SLOT);
            i -= 1;
        }
        ctx.store(key_at(parent, idx), separator, INS_KEY);
        ctx.store(slot_at(parent, idx + 1), sib.raw(), INS_SLOT);
        ctx.store(fld(parent, 0), pn + 1, NKEYS_UPD);
    }

    /// First index whose key exceeds `key` — the descent child for
    /// internal nodes and the insert position for leaves (separator
    /// equality descends right, where B+-style leaf keys live).
    fn find_idx(&self, ctx: &mut PmContext, n: PmAddr, key: u64) -> u64 {
        let nk = ctx.load(fld(n, 0));
        let mut i = 0;
        while i < nk {
            ctx.compute(CMP_COST);
            if key < ctx.load(key_at(n, i)) {
                break;
            }
            i += 1;
        }
        i
    }

    #[allow(clippy::too_many_arguments)]
    fn check_node(
        &self,
        ctx: &PmContext,
        n: u64,
        lo: u64,
        hi: u64,
        depth: usize,
        leaf_depth: &mut Option<usize>,
        count: &mut usize,
    ) -> Result<(), String> {
        let a = PmAddr::new(n);
        let nk = ctx.peek(fld(a, 0));
        if nk > MAX_KEYS {
            return Err(format!("node {n:#x} has {nk} keys"));
        }
        let leaf = ctx.peek(fld(a, 1)) == 1;
        let mut prev = lo;
        for i in 0..nk {
            let k = ctx.peek(key_at(a, i));
            if k < prev || k > hi {
                return Err(format!("key {k} out of order in node {n:#x}"));
            }
            prev = k;
        }
        if leaf {
            *count += nk as usize;
            match leaf_depth {
                Some(d) if *d != depth => {
                    return Err(format!("leaf depth {depth} != {d}"));
                }
                None => *leaf_depth = Some(depth),
                _ => {}
            }
        } else {
            for i in 0..=nk {
                let c = ctx.peek(slot_at(a, i));
                if c == 0 {
                    return Err(format!("missing child {i} in internal node {n:#x}"));
                }
                let clo = if i == 0 {
                    lo
                } else {
                    ctx.peek(key_at(a, i - 1))
                };
                let chi = if i == nk { hi } else { ctx.peek(key_at(a, i)) };
                self.check_node(ctx, c, clo, chi, depth + 1, leaf_depth, count)?;
            }
        }
        Ok(())
    }

    fn for_each_node(&self, ctx: &PmContext, mut f: impl FnMut(PmAddr, bool)) {
        let r = ctx.peek(fld(self.root, 0));
        if r == 0 {
            return;
        }
        let mut stack = vec![r];
        while let Some(n) = stack.pop() {
            let a = PmAddr::new(n);
            let leaf = ctx.peek(fld(a, 1)) == 1;
            f(a, leaf);
            if !leaf {
                let nk = ctx.peek(fld(a, 0));
                for i in 0..=nk {
                    let c = ctx.peek(slot_at(a, i));
                    if c != 0 {
                        stack.push(c);
                    }
                }
            }
        }
    }
}

impl DurableIndex for BtreeKv {
    fn name(&self) -> &'static str {
        "kv-btree"
    }

    fn scan_range(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        Some(crate::runner::RangeIndex::scan(self, ctx, lo, hi))
    }

    fn insert(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let blob = ctx.alloc(self.value_bytes);
        ctx.store_bytes(blob, value, VALUE);
        let mut r = ctx.load(fld(self.root, 0));
        if r == 0 {
            let leaf = self.new_node(ctx, true);
            ctx.store(fld(self.root, 0), leaf.raw(), ROOT_PTR);
            r = leaf.raw();
        } else if ctx.load(fld(PmAddr::new(r), 0)) == MAX_KEYS {
            // Preemptive root split.
            let new_root = self.new_node(ctx, false);
            ctx.store(slot_at(new_root, 0), r, INS_SLOT);
            self.split_child(ctx, new_root, 0);
            ctx.store(fld(self.root, 0), new_root.raw(), ROOT_PTR);
            r = new_root.raw();
        }
        // Descend, splitting full children preemptively.
        let mut n = PmAddr::new(r);
        loop {
            if ctx.load(fld(n, 1)) == 1 {
                break;
            }
            let mut idx = self.find_idx(ctx, n, key);
            let child = PmAddr::new(ctx.load(slot_at(n, idx)));
            if ctx.load(fld(child, 0)) == MAX_KEYS {
                self.split_child(ctx, n, idx);
                idx = self.find_idx(ctx, n, key);
            }
            n = PmAddr::new(ctx.load(slot_at(n, idx)));
        }
        // Insert into the (non-full) leaf.
        let nk = ctx.load(fld(n, 0));
        let idx = self.find_idx(ctx, n, key);
        let mut i = nk;
        while i > idx {
            let k = ctx.load(key_at(n, i - 1));
            ctx.store(key_at(n, i), k, SHIFT_KEY);
            let s = ctx.load(slot_at(n, i - 1));
            ctx.store(slot_at(n, i), s, SHIFT_SLOT);
            i -= 1;
        }
        ctx.store(key_at(n, idx), key, INS_KEY);
        ctx.store(slot_at(n, idx), blob.raw(), INS_SLOT);
        ctx.store(fld(n, 0), nk + 1, NKEYS_UPD);
        let size = ctx.load(fld(self.root, 1)) + 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
    }

    fn remove(&mut self, ctx: &mut PmContext, key: u64) -> bool {
        use sites::*;
        ctx.tx_begin();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            ctx.tx_commit();
            return false;
        }
        // Descend to the leaf (B+ style: no rebalancing on deletion —
        // leaves may underflow, separators may go stale; both are
        // tolerated by lookups and the invariant checker).
        let mut n = PmAddr::new(r);
        while ctx.load(fld(n, 1)) != 1 {
            let idx = self.find_idx(ctx, n, key);
            n = PmAddr::new(ctx.load(slot_at(n, idx)));
        }
        let nk = ctx.load(fld(n, 0));
        let mut pos = None;
        for i in 0..nk {
            ctx.compute(CMP_COST);
            if ctx.load(key_at(n, i)) == key {
                pos = Some(i);
                break;
            }
        }
        let Some(i) = pos else {
            ctx.tx_commit();
            return false;
        };
        let blob = ctx.load(slot_at(n, i));
        ctx.free(PmAddr::new(blob));
        for j in i..nk - 1 {
            let k = ctx.load(key_at(n, j + 1));
            ctx.store(key_at(n, j), k, RM_SHIFT);
            let v = ctx.load(slot_at(n, j + 1));
            ctx.store(slot_at(n, j), v, RM_SHIFT);
        }
        ctx.store(fld(n, 0), nk - 1, NKEYS_UPD);
        let size = ctx.load(fld(self.root, 1)) - 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
        true
    }

    fn update(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) -> bool {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            ctx.tx_commit();
            return false;
        }
        let mut n = PmAddr::new(r);
        while ctx.load(fld(n, 1)) != 1 {
            let idx = self.find_idx(ctx, n, key);
            n = PmAddr::new(ctx.load(slot_at(n, idx)));
        }
        let nk = ctx.load(fld(n, 0));
        for i in 0..nk {
            ctx.compute(CMP_COST);
            if ctx.load(key_at(n, i)) == key {
                let old = ctx.load(slot_at(n, i));
                let blob = ctx.alloc(self.value_bytes);
                ctx.store_bytes(blob, value, VALUE);
                ctx.store(slot_at(n, i), blob.raw(), UPD_VPTR);
                ctx.free(PmAddr::new(old));
                ctx.tx_commit();
                return true;
            }
        }
        ctx.tx_commit();
        false
    }

    fn get(&mut self, ctx: &mut PmContext, key: u64) -> Option<Vec<u8>> {
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            return None;
        }
        let mut n = PmAddr::new(r);
        while ctx.load(fld(n, 1)) != 1 {
            let idx = self.find_idx(ctx, n, key);
            n = PmAddr::new(ctx.load(slot_at(n, idx)));
        }
        let nk = ctx.load(fld(n, 0));
        for i in 0..nk {
            ctx.compute(CMP_COST);
            if ctx.load(key_at(n, i)) == key {
                let blob = PmAddr::new(ctx.load(slot_at(n, i)));
                let mut v = vec![0u8; self.value_bytes as usize];
                ctx.load_bytes(blob, &mut v);
                return Some(v);
            }
        }
        None
    }

    fn contains(&self, ctx: &PmContext, key: u64) -> bool {
        self.value_of(ctx, key).is_some()
    }

    fn value_of(&self, ctx: &PmContext, key: u64) -> Option<Vec<u8>> {
        let mut n = ctx.peek(fld(self.root, 0));
        if n == 0 {
            return None;
        }
        loop {
            let a = PmAddr::new(n);
            let nk = ctx.peek(fld(a, 0));
            let leaf = ctx.peek(fld(a, 1)) == 1;
            if leaf {
                for i in 0..nk {
                    if ctx.peek(key_at(a, i)) == key {
                        let blob = PmAddr::new(ctx.peek(slot_at(a, i)));
                        let mut v = vec![0u8; self.value_bytes as usize];
                        ctx.peek_bytes(blob, &mut v);
                        return Some(v);
                    }
                }
                return None;
            }
            // Descend right on separator equality (B+-style leaves hold
            // the separator key).
            let mut i = 0;
            while i < nk && key >= ctx.peek(key_at(a, i)) {
                i += 1;
            }
            n = ctx.peek(slot_at(a, i));
        }
    }

    fn len(&self, ctx: &PmContext) -> usize {
        let mut count = 0;
        self.for_each_node(ctx, |a, leaf| {
            if leaf {
                count += ctx.peek(fld(a, 0)) as usize;
            }
        });
        count
    }

    fn check_invariants(&self, ctx: &PmContext) -> Result<(), String> {
        let r = ctx.peek(fld(self.root, 0));
        let mut count = 0;
        if r != 0 {
            let mut leaf_depth = None;
            self.check_node(ctx, r, u64::MIN, u64::MAX, 0, &mut leaf_depth, &mut count)?;
        }
        let size = ctx.peek(fld(self.root, 1));
        if size as usize != count {
            return Err(format!("size {size} != key count {count}"));
        }
        Ok(())
    }

    fn reachable(&self, ctx: &PmContext) -> Vec<PmAddr> {
        let mut out = vec![self.root];
        self.for_each_node(ctx, |a, leaf| {
            out.push(a);
            if leaf {
                let nk = ctx.peek(fld(a, 0));
                for i in 0..nk {
                    out.push(PmAddr::new(ctx.peek(slot_at(a, i))));
                }
            }
        });
        out
    }

    fn recover(&mut self, ctx: &mut PmContext) {
        // Only the size counter is lazily persistent: recount.
        let count = self.len(ctx) as u64;
        ctx.recovery_write(fld(self.root, 1), count);
    }
}

impl crate::runner::RangeIndex for BtreeKv {
    fn scan(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let r = ctx.load(fld(self.root, 0));
        if r == 0 {
            return out;
        }
        // DFS in key order, pruning children whose separator window
        // cannot intersect [lo, hi].
        let mut stack = vec![(r, u64::MIN, u64::MAX)];
        let mut ordered: Vec<(u64, Vec<u8>)> = Vec::new();
        while let Some((n, nlo, nhi)) = stack.pop() {
            if nhi < lo || nlo > hi {
                continue;
            }
            let a = PmAddr::new(n);
            let nk = ctx.load(fld(a, 0));
            if ctx.load(fld(a, 1)) == 1 {
                for i in 0..nk {
                    ctx.compute(CMP_COST);
                    let k = ctx.load(key_at(a, i));
                    if (lo..=hi).contains(&k) {
                        let blob = PmAddr::new(ctx.load(slot_at(a, i)));
                        let mut v = vec![0u8; self.value_bytes as usize];
                        ctx.load_bytes(blob, &mut v);
                        ordered.push((k, v));
                    }
                }
                continue;
            }
            // Push children right-to-left so the walk emits in order.
            let mut bounds = Vec::with_capacity(nk as usize + 1);
            for i in 0..=nk {
                let clo = if i == 0 {
                    nlo
                } else {
                    ctx.load(key_at(a, i - 1))
                };
                let chi = if i == nk { nhi } else { ctx.load(key_at(a, i)) };
                bounds.push((ctx.load(slot_at(a, i)), clo, chi));
            }
            for b in bounds.into_iter().rev() {
                stack.push(b);
            }
        }
        out.append(&mut ordered);
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{value_for, ycsb_load};
    use slpmt_core::Scheme;

    fn fresh(source: AnnotationSource) -> (PmContext, BtreeKv) {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let t = BtreeKv::new(&mut ctx, 32, source);
        (ctx, t)
    }

    #[test]
    fn insert_lookup_and_invariants() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(300, 32, 1);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 300);
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), op.value);
        }
        assert!(!t.contains(&ctx, 1));
    }

    #[test]
    fn sequential_keys_split_correctly() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let v = value_for(0, 32);
        for k in 1..=100u64 {
            t.insert(&mut ctx, k * 10, &v);
        }
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 100);
    }

    #[test]
    fn crash_recovery() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(150, 32, 2);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        ctx.crash_and_recover();
        t.recover(&mut ctx);
        ctx.gc(&t.reachable(&ctx));
        t.check_invariants(&ctx).unwrap();
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), value_for(op.key, 32));
        }
        for op in ycsb_load(50, 32, 55) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn compiler_annotations_preserve_correctness() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Compiler);
        for op in ycsb_load(100, 32, 3) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn compiler_finds_split_copies() {
        let (table, _) = slpmt_annotate::analyze(&BtreeKv::ir());
        assert!(table.get(sites::VALUE).is_selective());
        assert!(table.get(sites::SPLIT_COPY_KEY).is_selective());
        assert_eq!(table.get(sites::SHIFT_KEY), Annotation::Plain);
        assert_eq!(table.get(sites::SIZE), Annotation::Plain);
    }

    #[test]
    fn ir_is_valid() {
        assert!(BtreeKv::ir().validate().is_ok());
    }
}
