//! Skiplist backend for the PMDK-style KV store (an extension beyond
//! the paper's evaluated trio — the PMDK `map` framework the paper
//! builds on also ships a skiplist engine).
//!
//! The skiplist is a natural lazy-persistency showcase: the level-0
//! chain is the ground truth and its links are published with plain
//! logged stores, while every *upper-level* link is a search shortcut
//! whose value is fully re-derivable from level 0 plus the per-node
//! heights — so tower updates use `storeT(lazy)` and recovery rebuilds
//! all towers in one level-0 walk. A stale-but-durable upper link is
//! harmless even before recovery: search simply falls through to a
//! lower level (the link still points at a live node, since removals
//! fix towers eagerly).
//!
//! ### Persistent layout
//!
//! ```text
//! root:  [0]=head sentinel  [1]=size
//! node:  [0]=key [1]=height h (1..=MAX_LEVEL) [2]=value blob
//!        [3..3+h]=next pointers per level
//! ```
//!
//! Node heights are a deterministic function of the key, so recovery
//! can re-derive every tower without trusting lazily-persistent state.

use crate::ctx::{AnnotationSource, PmContext};
use crate::runner::DurableIndex;
use slpmt_annotate::{Annotation, AnnotationTable, Operand, ParamKind, TxnIr, TxnIrBuilder};
use slpmt_pmem::PmAddr;

/// Store sites of the insert/remove transactions.
pub mod sites {
    use slpmt_annotate::SiteId;
    /// Fresh node initialisation (key, height, blob pointer, links).
    pub const NEW_NODE: SiteId = SiteId(0);
    /// Value blob payload.
    pub const VALUE: SiteId = SiteId(1);
    /// Level-0 predecessor link (publishes the node).
    pub const LINK0: SiteId = SiteId(2);
    /// Upper-level predecessor link (search shortcut, re-derivable).
    pub const TOWER: SiteId = SiteId(3);
    /// KV root pointer / size.
    pub const SIZE: SiteId = SiteId(4);
    /// Unlink stores on removal (all levels, eager).
    pub const RM_UNLINK: SiteId = SiteId(5);
    /// Poison store into a node being freed (Pattern 1, free case).
    pub const RM_POISON: SiteId = SiteId(6);
    /// Value-pointer swap on update (copy-on-write blob replace).
    pub const UPD_VPTR: SiteId = SiteId(7);
}

/// Maximum tower height.
pub const MAX_LEVEL: u64 = 8;
const CMP_COST: u64 = 5;

fn fld(base: PmAddr, i: u64) -> PmAddr {
    base.add(i * 8)
}

fn next_at(node: PmAddr, level: u64) -> PmAddr {
    fld(node, 3 + level)
}

/// Deterministic tower height for `key`: geometric with p = 1/2.
pub fn height_of(key: u64) -> u64 {
    let mut h = key
        .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
        .rotate_right(23)
        .trailing_ones() as u64
        + 1;
    if h > MAX_LEVEL {
        h = MAX_LEVEL;
    }
    h
}

/// The skiplist KV backend.
#[derive(Debug, Clone)]
pub struct SkiplistKv {
    root: PmAddr,
    head: PmAddr,
    value_bytes: u64,
}

impl SkiplistKv {
    /// Hand-written annotations: fresh nodes and blobs log-free; upper
    /// tower links lazily persistent (rebuilt from level 0).
    pub fn manual_table() -> AnnotationTable {
        use sites::*;
        [
            (NEW_NODE, Annotation::LogFree),
            (VALUE, Annotation::LogFree),
            (TOWER, Annotation::Lazy),
            (RM_POISON, Annotation::LazyLogFree),
        ]
        .into_iter()
        .collect()
    }

    /// IR of the insert transaction for the compiler pass. The upper
    /// tower link stores a *fresh node's address*, which the analysis
    /// refuses to mark lazy (allocation addresses are not stable across
    /// recovery) — so the compiler finds the Pattern 1 sites but leaves
    /// towers eager, a deliberate soundness gap the manual annotation
    /// closes with the structure-specific tower-rebuild recovery.
    pub fn ir() -> TxnIr {
        use sites::*;
        let mut b = TxnIrBuilder::new("kv-skiplist-insert");
        let root = b.param(ParamKind::PersistentPtr);
        let key = b.param(ParamKind::Key);
        let val = b.param(ParamKind::Value);
        let blob = b.alloc();
        b.store_at(VALUE, blob, 0, Operand::Value(val));
        let node = b.alloc();
        b.store_at(NEW_NODE, node, 0, Operand::Value(key));
        let head = b.load(root, 0);
        let pred = b.load(head, 3);
        let succ = b.load(pred, 3);
        b.store_at(NEW_NODE, node, 3, Operand::Value(succ));
        b.store_at(LINK0, pred, 3, Operand::Value(node));
        b.store_at(TOWER, head, 4, Operand::Value(node));
        let size = b.load(root, 1);
        let size2 = b.compute_opaque(vec![Operand::Value(size)]);
        b.store_at(SIZE, root, 1, Operand::Value(size2));
        b.build()
    }

    /// Builds an empty skiplist (untimed setup).
    ///
    /// # Panics
    ///
    /// Panics if `value_size` is not a multiple of 8.
    pub fn new(ctx: &mut PmContext, value_size: usize, source: AnnotationSource) -> Self {
        assert!(
            value_size.is_multiple_of(8),
            "value size must be whole words"
        );
        ctx.set_table(source.resolve(&Self::manual_table(), &Self::ir()));
        let root = ctx.setup_alloc(2 * 8);
        let head = ctx.setup_alloc((3 + MAX_LEVEL) * 8);
        ctx.recovery_write(fld(root, 0), head.raw());
        ctx.recovery_write(fld(head, 1), MAX_LEVEL);
        SkiplistKv {
            root,
            head,
            value_bytes: value_size as u64,
        }
    }

    /// Finds the predecessor of `key` at every level (timed).
    fn predecessors(&self, ctx: &mut PmContext, key: u64) -> [PmAddr; MAX_LEVEL as usize] {
        let mut preds = [self.head; MAX_LEVEL as usize];
        let mut cur = self.head;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let nxt = ctx.load(next_at(cur, level));
                if nxt == 0 {
                    break;
                }
                ctx.compute(CMP_COST);
                if ctx.load(fld(PmAddr::new(nxt), 0)) >= key {
                    break;
                }
                cur = PmAddr::new(nxt);
            }
            preds[level as usize] = cur;
        }
        preds
    }
}

impl DurableIndex for SkiplistKv {
    fn name(&self) -> &'static str {
        "kv-skiplist"
    }

    fn scan_range(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        Some(crate::runner::RangeIndex::scan(self, ctx, lo, hi))
    }

    fn insert(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let preds = self.predecessors(ctx, key);
        let h = height_of(key);
        let blob = ctx.alloc(self.value_bytes);
        ctx.store_bytes(blob, value, VALUE);
        let node = ctx.alloc((3 + h) * 8);
        ctx.store(fld(node, 0), key, NEW_NODE);
        ctx.store(fld(node, 1), h, NEW_NODE);
        ctx.store(fld(node, 2), blob.raw(), NEW_NODE);
        for level in 0..h {
            let succ = ctx.load(next_at(preds[level as usize], level));
            ctx.store(next_at(node, level), succ, NEW_NODE);
        }
        // Publish: level 0 is the ground truth (logged, eager); upper
        // levels are re-derivable shortcuts (lazy).
        ctx.store(next_at(preds[0], 0), node.raw(), LINK0);
        for level in 1..h {
            ctx.store(next_at(preds[level as usize], level), node.raw(), TOWER);
        }
        let size = ctx.load(fld(self.root, 1)) + 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
    }

    fn remove(&mut self, ctx: &mut PmContext, key: u64) -> bool {
        use sites::*;
        ctx.tx_begin();
        let preds = self.predecessors(ctx, key);
        let cand = ctx.load(next_at(preds[0], 0));
        if cand == 0 {
            ctx.tx_commit();
            return false;
        }
        let node = PmAddr::new(cand);
        if ctx.load(fld(node, 0)) != key {
            ctx.tx_commit();
            return false;
        }
        let h = ctx.load(fld(node, 1));
        // Unlink every level eagerly: stale tower links must never
        // point at freed memory.
        for level in 0..h {
            let p = preds[level as usize];
            if ctx.load(next_at(p, level)) == node.raw() {
                let succ = ctx.load(next_at(node, level));
                ctx.store(next_at(p, level), succ, RM_UNLINK);
            }
        }
        let blob = ctx.load(fld(node, 2));
        ctx.store(fld(node, 2), 0, RM_POISON);
        ctx.free(node);
        ctx.free(PmAddr::new(blob));
        let size = ctx.load(fld(self.root, 1)) - 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
        true
    }

    fn update(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) -> bool {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let preds = self.predecessors(ctx, key);
        let cand = ctx.load(next_at(preds[0], 0));
        if cand == 0 {
            ctx.tx_commit();
            return false;
        }
        let node = PmAddr::new(cand);
        if ctx.load(fld(node, 0)) != key {
            ctx.tx_commit();
            return false;
        }
        let old = ctx.load(fld(node, 2));
        let blob = ctx.alloc(self.value_bytes);
        ctx.store_bytes(blob, value, VALUE);
        ctx.store(fld(node, 2), blob.raw(), UPD_VPTR);
        ctx.free(PmAddr::new(old));
        ctx.tx_commit();
        true
    }

    fn get(&mut self, ctx: &mut PmContext, key: u64) -> Option<Vec<u8>> {
        let preds = self.predecessors(ctx, key);
        let cand = ctx.load(next_at(preds[0], 0));
        if cand == 0 {
            return None;
        }
        let node = PmAddr::new(cand);
        if ctx.load(fld(node, 0)) != key {
            return None;
        }
        let blob = PmAddr::new(ctx.load(fld(node, 2)));
        let mut v = vec![0u8; self.value_bytes as usize];
        ctx.load_bytes(blob, &mut v);
        Some(v)
    }

    fn contains(&self, ctx: &PmContext, key: u64) -> bool {
        self.value_of(ctx, key).is_some()
    }

    fn value_of(&self, ctx: &PmContext, key: u64) -> Option<Vec<u8>> {
        let mut cur = ctx.peek(fld(self.head, 3));
        while cur != 0 {
            let node = PmAddr::new(cur);
            let k = ctx.peek(fld(node, 0));
            if k == key {
                let blob = PmAddr::new(ctx.peek(fld(node, 2)));
                let mut v = vec![0u8; self.value_bytes as usize];
                ctx.peek_bytes(blob, &mut v);
                return Some(v);
            }
            if k > key {
                return None;
            }
            cur = ctx.peek(next_at(node, 0));
        }
        None
    }

    fn len(&self, ctx: &PmContext) -> usize {
        let mut count = 0;
        let mut cur = ctx.peek(fld(self.head, 3));
        while cur != 0 {
            count += 1;
            cur = ctx.peek(next_at(PmAddr::new(cur), 0));
        }
        count
    }

    fn check_invariants(&self, ctx: &PmContext) -> Result<(), String> {
        // Level 0: strictly sorted. Upper levels: strictly sorted and a
        // subset of the level below, with heights matching the
        // deterministic function.
        let mut level0 = Vec::new();
        let mut prev_key = None;
        let mut cur = ctx.peek(fld(self.head, 3));
        while cur != 0 {
            let node = PmAddr::new(cur);
            let k = ctx.peek(fld(node, 0));
            if let Some(p) = prev_key {
                if k <= p {
                    return Err(format!("level 0 not sorted: {k} after {p}"));
                }
            }
            let h = ctx.peek(fld(node, 1));
            if h != height_of(k) {
                return Err(format!("height of {k} is {h}, expected {}", height_of(k)));
            }
            prev_key = Some(k);
            level0.push(cur);
            cur = ctx.peek(next_at(node, 0));
        }
        for level in 1..MAX_LEVEL {
            let mut cur = ctx.peek(next_at(self.head, level));
            let mut prev = None;
            while cur != 0 {
                let node = PmAddr::new(cur);
                if !level0.contains(&cur) {
                    return Err(format!("level {level} references node outside level 0"));
                }
                let h = ctx.peek(fld(node, 1));
                if h <= level {
                    return Err(format!("node at level {level} has height {h}"));
                }
                let k = ctx.peek(fld(node, 0));
                if let Some(p) = prev {
                    if k <= p {
                        return Err(format!("level {level} not sorted"));
                    }
                }
                prev = Some(k);
                cur = ctx.peek(next_at(node, level));
            }
        }
        let size = ctx.peek(fld(self.root, 1));
        if size as usize != level0.len() {
            return Err(format!("size {size} != node count {}", level0.len()));
        }
        Ok(())
    }

    fn reachable(&self, ctx: &PmContext) -> Vec<PmAddr> {
        let mut out = vec![self.root, self.head];
        let mut cur = ctx.peek(fld(self.head, 3));
        while cur != 0 {
            let node = PmAddr::new(cur);
            out.push(node);
            out.push(PmAddr::new(ctx.peek(fld(node, 2))));
            cur = ctx.peek(next_at(node, 0));
        }
        out
    }

    fn recover(&mut self, ctx: &mut PmContext) {
        // Towers are lazily persistent: rebuild every upper level from
        // the durable level-0 chain and the deterministic heights.
        let mut preds = [self.head; MAX_LEVEL as usize];
        let mut count = 0u64;
        let mut cur = ctx.peek(fld(self.head, 3));
        // Clear the head's upper links first.
        for level in 1..MAX_LEVEL {
            ctx.recovery_write(next_at(self.head, level), 0);
        }
        while cur != 0 {
            count += 1;
            let node = PmAddr::new(cur);
            let k = ctx.peek(fld(node, 0));
            let h = height_of(k);
            ctx.recovery_write(fld(node, 1), h);
            for level in 1..h {
                ctx.recovery_write(next_at(preds[level as usize], level), cur);
                ctx.recovery_write(next_at(node, level), 0);
                preds[level as usize] = node;
            }
            cur = ctx.peek(next_at(node, 0));
        }
        ctx.recovery_write(fld(self.root, 1), count);
    }
}

impl crate::runner::RangeIndex for SkiplistKv {
    fn scan(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        // Towers find the range start; level 0 streams it.
        let preds = self.predecessors(ctx, lo);
        let mut out = Vec::new();
        let mut cur = ctx.load(next_at(preds[0], 0));
        while cur != 0 {
            let node = PmAddr::new(cur);
            let k = ctx.load(fld(node, 0));
            if k > hi {
                break;
            }
            let blob = PmAddr::new(ctx.load(fld(node, 2)));
            let mut v = vec![0u8; self.value_bytes as usize];
            ctx.load_bytes(blob, &mut v);
            out.push((k, v));
            cur = ctx.load(next_at(node, 0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{value_for, ycsb_load};
    use slpmt_core::Scheme;

    fn fresh(source: AnnotationSource) -> (PmContext, SkiplistKv) {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let t = SkiplistKv::new(&mut ctx, 32, source);
        (ctx, t)
    }

    #[test]
    fn heights_are_deterministic_and_bounded() {
        for k in 0..10_000u64 {
            let h = height_of(k);
            assert!((1..=MAX_LEVEL).contains(&h));
            assert_eq!(h, height_of(k));
        }
        // Roughly geometric: about half the keys have height 1.
        let ones = (0..10_000u64).filter(|&k| height_of(k) == 1).count();
        assert!(
            (3800..6200).contains(&ones),
            "height-1 fraction: {ones}/10000"
        );
    }

    #[test]
    fn insert_lookup_and_invariants() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(300, 32, 1);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 300);
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), op.value);
        }
        assert!(!t.contains(&ctx, 1));
    }

    #[test]
    fn towers_accelerate_search() {
        // With 300 keys the expected search path touches far fewer
        // than 300 nodes thanks to the towers.
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        for op in ycsb_load(300, 32, 2) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        let before = ctx.machine().stats().loads;
        let probe = ycsb_load(300, 32, 2)[150].key;
        let mut t2 = t.clone();
        assert!(t2.get(&mut ctx, probe).is_some());
        let loads = ctx.machine().stats().loads - before;
        assert!(
            loads < 150,
            "search touched {loads} words — towers not working"
        );
    }

    #[test]
    fn crash_recovery_rebuilds_towers() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(150, 32, 3);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        ctx.crash_and_recover();
        t.recover(&mut ctx);
        ctx.gc(&t.reachable(&ctx));
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 150);
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), value_for(op.key, 32));
        }
        // Usable afterwards.
        for op in ycsb_load(30, 32, 77) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn removals_fix_towers_eagerly() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(120, 32, 4);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        for op in ops.iter().step_by(3) {
            assert!(t.remove(&mut ctx, op.key));
        }
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 80);
        // Crash after removals: no resurrection, towers rebuilt.
        ctx.crash_and_recover();
        t.recover(&mut ctx);
        ctx.gc(&t.reachable(&ctx));
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 80);
        for op in ops.iter().step_by(3) {
            assert!(!t.contains(&ctx, op.key));
        }
    }

    #[test]
    fn lazy_towers_reduce_persists() {
        let run = |source| {
            let (mut ctx, mut t) = fresh(source);
            for op in ycsb_load(100, 32, 5) {
                t.insert(&mut ctx, op.key, &op.value);
            }
            ctx.machine().stats().lazy_lines_deferred
        };
        assert!(
            run(AnnotationSource::Manual) > 0,
            "towers defer persistence"
        );
        assert_eq!(run(AnnotationSource::None), 0);
    }

    #[test]
    fn compiler_annotations_preserve_correctness() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Compiler);
        for op in ycsb_load(100, 32, 6) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
        // The compiler leaves towers eager (fresh-address rule).
        let (table, _) = slpmt_annotate::analyze(&SkiplistKv::ir());
        assert_eq!(table.get(sites::TOWER), Annotation::Plain);
        assert!(table.get(sites::NEW_NODE).is_selective());
    }

    #[test]
    fn ir_is_valid() {
        assert!(SkiplistKv::ir().validate().is_ok());
    }
}
