//! The PMDK-style key-value store (Table II: "key-value store engine
//! that can be configured with various indexing data structures").
//!
//! Three index backends mirror the paper's `kv-btree`, `kv-ctree` and
//! `kv-rtree` configurations:
//!
//! * [`btree`] — an order-8 B-tree; splits copy the upper half of a
//!   node into a fresh allocation (log-free), in-node shifts stay
//!   logged.
//! * [`ctree`] — a crit-bit tree; an insert allocates one leaf and one
//!   internal node and performs a single logged link update, so almost
//!   every store is selective — the backend where SLPMT gains most
//!   (§VI-E).
//! * [`rtree`] — a path-compressed radix tree; splitting a compressed
//!   edge *copies* the split node instead of modifying it and can
//!   create several nodes per insert ("kv-rtree may create more than
//!   one node in one insertion"), at the cost of extra computation.
//!
//! A fourth backend, [`skiplist`], extends the framework beyond the
//! paper's evaluated trio: its upper tower links are lazily
//! persistent and rebuilt from the level-0 chain on recovery.
//!
//! All backends share the root layout `[0]=index root, [1]=size` and
//! store values in separate blobs written log-free.

pub mod btree;
pub mod ctree;
pub mod rtree;
pub mod skiplist;
