//! AVL self-balancing tree (Table II: "no parent pointer in the
//! node").
//!
//! Without parent pointers the descent path lives on the (volatile)
//! call stack. The lazy-persistency candidates are the per-node
//! *heights*: they are recomputable from the children, so height
//! updates use `storeT(lazy)` and recovery re-derives them bottom-up.
//! Rotations update child pointers of existing nodes and stay logged.
//!
//! ### Persistent layout
//!
//! ```text
//! root:  [0]=tree root pointer  [1]=size
//! node:  [0]=key [1]=left [2]=right [3]=height [4..]=value
//! ```

use crate::ctx::{AnnotationSource, PmContext};
use crate::runner::DurableIndex;
use slpmt_annotate::{Annotation, AnnotationTable, Operand, ParamKind, TxnIr, TxnIrBuilder};
use slpmt_pmem::PmAddr;

/// Store sites of the insert transaction.
pub mod sites {
    use slpmt_annotate::SiteId;
    /// New node's key.
    pub const NODE_KEY: SiteId = SiteId(0);
    /// New node's value payload.
    pub const NODE_VALUE: SiteId = SiteId(1);
    /// New node's child initialisation.
    pub const NODE_CHILD_INIT: SiteId = SiteId(2);
    /// New node's height initialisation.
    pub const NODE_HEIGHT_NEW: SiteId = SiteId(3);
    /// Existing node's child pointer (link or rotation).
    pub const CHILD_UPD: SiteId = SiteId(4);
    /// Root object's tree-root pointer.
    pub const ROOT_PTR: SiteId = SiteId(5);
    /// Root object's size counter.
    pub const SIZE: SiteId = SiteId(6);
    /// Height update on an existing node.
    pub const HEIGHT_UPD: SiteId = SiteId(7);
    /// Successor key copy into the removed slot.
    pub const RM_COPY_KEY: SiteId = SiteId(8);
    /// Successor value copy into the removed slot.
    pub const RM_COPY_VALUE: SiteId = SiteId(9);
    /// Poison store into the node being freed (Pattern 1, free case).
    pub const RM_POISON: SiteId = SiteId(10);
    /// In-place value overwrite on update (logged).
    pub const UPD_VALUE: SiteId = SiteId(11);
}

const CMP_COST: u64 = 6;

fn fld(base: PmAddr, i: u64) -> PmAddr {
    base.add(i * 8)
}

/// The durable AVL tree.
#[derive(Debug, Clone)]
pub struct AvlTree {
    root: PmAddr,
    value_words: u64,
}

impl AvlTree {
    /// Hand-written annotations: new-node fields log-free; heights and
    /// the size counter lazily persistent (recomputable).
    pub fn manual_table() -> AnnotationTable {
        use sites::*;
        [
            (NODE_KEY, Annotation::LogFree),
            (NODE_VALUE, Annotation::LogFree),
            (NODE_CHILD_INIT, Annotation::LogFree),
            (NODE_HEIGHT_NEW, Annotation::LogFree),
            (HEIGHT_UPD, Annotation::Lazy),
            (RM_POISON, Annotation::LazyLogFree),
        ]
        .into_iter()
        .collect()
    }

    /// IR for the compiler: the height recomputation is an analysable
    /// max-plus-one over recoverable loads, so the compiler *does*
    /// find `HEIGHT_UPD` lazy; the size counter hides behind opaque
    /// bookkeeping and is missed.
    pub fn ir() -> TxnIr {
        use sites::*;
        let mut b = TxnIrBuilder::new("avl-insert");
        let root = b.param(ParamKind::PersistentPtr);
        let key = b.param(ParamKind::Key);
        let val = b.param(ParamKind::Value);
        let pos = b.load(root, 0);
        let node = b.alloc();
        b.store_at(NODE_KEY, node, 0, Operand::Value(key));
        b.store_at(NODE_CHILD_INIT, node, 1, Operand::Const(0));
        b.store_at(NODE_HEIGHT_NEW, node, 3, Operand::Const(1));
        b.store_at(NODE_VALUE, node, 4, Operand::Value(val));
        b.store_at(CHILD_UPD, pos, 1, Operand::Value(node));
        let size = b.load(root, 1);
        let size2 = b.compute_opaque(vec![Operand::Value(size)]);
        b.store_at(SIZE, root, 1, Operand::Value(size2));
        // Height recomputation on the path back up: the parent's new
        // height derives from the *children's* heights, which stay
        // intact — a stable, analysable source.
        let l = b.load(pos, 2);
        let lh = b.load(l, 3);
        let h2 = b.compute(vec![Operand::Value(lh), Operand::Const(1)]);
        b.store_at(HEIGHT_UPD, pos, 3, Operand::Value(h2));
        // The new root after a rotation is chosen by opaque
        // re-balancing logic: the compiler must keep it eager.
        let new_root = b.compute_opaque(vec![Operand::Value(pos)]);
        b.store_at(ROOT_PTR, root, 0, Operand::Value(new_root));
        b.build()
    }

    /// Builds an empty tree (untimed setup).
    ///
    /// # Panics
    ///
    /// Panics if `value_size` is not a multiple of 8.
    pub fn new(ctx: &mut PmContext, value_size: usize, source: AnnotationSource) -> Self {
        assert!(
            value_size.is_multiple_of(8),
            "value size must be whole words"
        );
        ctx.set_table(source.resolve(&Self::manual_table(), &Self::ir()));
        let root = ctx.setup_alloc(2 * 8);
        AvlTree {
            root,
            value_words: (value_size / 8) as u64,
        }
    }

    fn node_bytes(&self) -> u64 {
        (4 + self.value_words) * 8
    }

    fn height(&self, ctx: &mut PmContext, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            ctx.load(fld(PmAddr::new(n), 3))
        }
    }

    fn update_height(&self, ctx: &mut PmContext, n: PmAddr) -> (u64, i64) {
        let lh = {
            let l = ctx.load(fld(n, 1));
            self.height(ctx, l)
        };
        let rh = {
            let r = ctx.load(fld(n, 2));
            self.height(ctx, r)
        };
        let h = lh.max(rh) + 1;
        ctx.store(fld(n, 3), h, sites::HEIGHT_UPD);
        (h, lh as i64 - rh as i64)
    }

    /// Rotates around `n` (dir 0 = left rotation, 1 = right rotation),
    /// returning the new subtree root.
    fn rotate(&self, ctx: &mut PmContext, n: PmAddr, dir: u64) -> PmAddr {
        use sites::*;
        let pivot = PmAddr::new(ctx.load(fld(n, 2 - dir)));
        let inner = ctx.load(fld(pivot, 1 + dir));
        ctx.store(fld(n, 2 - dir), inner, CHILD_UPD);
        ctx.store(fld(pivot, 1 + dir), n.raw(), CHILD_UPD);
        self.update_height(ctx, n);
        self.update_height(ctx, pivot);
        pivot
    }

    /// Rebalances `n` after an insert, returning the subtree root.
    fn rebalance(&self, ctx: &mut PmContext, n: PmAddr) -> PmAddr {
        let (_, balance) = self.update_height(ctx, n);
        if balance > 1 {
            // Left-heavy.
            let l = PmAddr::new(ctx.load(fld(n, 1)));
            let ll = ctx.load(fld(l, 1));
            let lh = self.height(ctx, ll);
            let lr = ctx.load(fld(l, 2));
            let rh = self.height(ctx, lr);
            if lh < rh {
                let nl = self.rotate(ctx, l, 0);
                ctx.store(fld(n, 1), nl.raw(), sites::CHILD_UPD);
            }
            self.rotate(ctx, n, 1)
        } else if balance < -1 {
            // Right-heavy.
            let r = PmAddr::new(ctx.load(fld(n, 2)));
            let rl = ctx.load(fld(r, 1));
            let lh = self.height(ctx, rl);
            let rr = ctx.load(fld(r, 2));
            let rh = self.height(ctx, rr);
            if rh < lh {
                let nr = self.rotate(ctx, r, 1);
                ctx.store(fld(n, 2), nr.raw(), sites::CHILD_UPD);
            }
            self.rotate(ctx, n, 0)
        } else {
            n
        }
    }

    fn for_each(&self, ctx: &PmContext, mut f: impl FnMut(u64)) {
        let mut stack = vec![ctx.peek(fld(self.root, 0))];
        while let Some(n) = stack.pop() {
            if n == 0 {
                continue;
            }
            f(n);
            let a = PmAddr::new(n);
            stack.push(ctx.peek(fld(a, 1)));
            stack.push(ctx.peek(fld(a, 2)));
        }
    }

    fn check_node(&self, ctx: &PmContext, n: u64, lo: u64, hi: u64) -> Result<u64, String> {
        if n == 0 {
            return Ok(0);
        }
        let a = PmAddr::new(n);
        let key = ctx.peek(fld(a, 0));
        if key < lo || key > hi {
            return Err(format!("BST violation: key {key} outside [{lo}, {hi}]"));
        }
        let lh = self.check_node(ctx, ctx.peek(fld(a, 1)), lo, key.saturating_sub(1))?;
        let rh = self.check_node(ctx, ctx.peek(fld(a, 2)), key.saturating_add(1), hi)?;
        let h = ctx.peek(fld(a, 3));
        if h != lh.max(rh) + 1 {
            return Err(format!(
                "height of {n:#x} is {h}, expected {}",
                lh.max(rh) + 1
            ));
        }
        if (lh as i64 - rh as i64).abs() > 1 {
            return Err(format!("AVL balance violated at {n:#x}: {lh} vs {rh}"));
        }
        Ok(h)
    }
}

impl DurableIndex for AvlTree {
    fn name(&self) -> &'static str {
        "avl"
    }

    fn scan_range(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        Some(crate::runner::RangeIndex::scan(self, ctx, lo, hi))
    }

    fn insert(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_words * 8);
        ctx.tx_begin();
        // Descend, recording the path (volatile).
        let mut path: Vec<(PmAddr, u64)> = Vec::new();
        let mut cur = ctx.load(fld(self.root, 0));
        while cur != 0 {
            ctx.compute(CMP_COST);
            let a = PmAddr::new(cur);
            let k = ctx.load(fld(a, 0));
            let dir = if key < k { 1u64 } else { 2u64 };
            path.push((a, dir));
            cur = ctx.load(fld(a, dir));
        }
        // Build the new node.
        let node = ctx.alloc(self.node_bytes());
        ctx.store(fld(node, 0), key, NODE_KEY);
        ctx.store(fld(node, 1), 0, NODE_CHILD_INIT);
        ctx.store(fld(node, 2), 0, NODE_CHILD_INIT);
        ctx.store(fld(node, 3), 1, NODE_HEIGHT_NEW);
        ctx.store_bytes(fld(node, 4), value, NODE_VALUE);
        // Link and rebalance back up the path.
        if let Some(&(parent, dir)) = path.last() {
            ctx.store(fld(parent, dir), node.raw(), CHILD_UPD);
            for idx in (0..path.len()).rev() {
                let (n, _) = path[idx];
                let new_sub = self.rebalance(ctx, n);
                if new_sub != n {
                    if idx == 0 {
                        ctx.store(fld(self.root, 0), new_sub.raw(), ROOT_PTR);
                    } else {
                        let (p, pdir) = path[idx - 1];
                        ctx.store(fld(p, pdir), new_sub.raw(), CHILD_UPD);
                    }
                }
            }
        } else {
            ctx.store(fld(self.root, 0), node.raw(), ROOT_PTR);
        }
        let size = ctx.load(fld(self.root, 1)) + 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
    }

    fn remove(&mut self, ctx: &mut PmContext, key: u64) -> bool {
        use sites::*;
        ctx.tx_begin();
        // Descend to the key, recording the path.
        let mut path: Vec<(PmAddr, u64)> = Vec::new();
        let mut cur = ctx.load(fld(self.root, 0));
        let mut target = PmAddr::new(0);
        while cur != 0 {
            ctx.compute(CMP_COST);
            let a = PmAddr::new(cur);
            let k = ctx.load(fld(a, 0));
            if k == key {
                target = a;
                break;
            }
            let dir = if key < k { 1u64 } else { 2u64 };
            path.push((a, dir));
            cur = ctx.load(fld(a, dir));
        }
        if target.raw() == 0 {
            ctx.tx_commit();
            return false;
        }
        // Two children: replace the key/value with the in-order
        // successor's, then delete the successor instead.
        let (l, r) = (ctx.load(fld(target, 1)), ctx.load(fld(target, 2)));
        let victim = if l != 0 && r != 0 {
            path.push((target, 2));
            let mut s = PmAddr::new(r);
            loop {
                let sl = ctx.load(fld(s, 1));
                if sl == 0 {
                    break;
                }
                path.push((s, 1));
                s = PmAddr::new(sl);
            }
            let sk = ctx.load(fld(s, 0));
            ctx.store(fld(target, 0), sk, RM_COPY_KEY);
            let mut val = vec![0u8; (self.value_words * 8) as usize];
            ctx.load_bytes(fld(s, 4), &mut val);
            ctx.store_bytes(fld(target, 4), &val, RM_COPY_VALUE);
            s
        } else {
            target
        };
        // The victim has at most one child: splice it out.
        let vl = ctx.load(fld(victim, 1));
        let child = if vl != 0 {
            vl
        } else {
            ctx.load(fld(victim, 2))
        };
        match path.last() {
            Some(&(p, dir)) => ctx.store(fld(p, dir), child, CHILD_UPD),
            None => ctx.store(fld(self.root, 0), child, ROOT_PTR),
        }
        // Poison the dying node (Pattern 1, free case) and retire it.
        ctx.store(fld(victim, 0), 0, RM_POISON);
        ctx.free(victim);
        // Rebalance back up the path.
        for idx in (0..path.len()).rev() {
            let (n, _) = path[idx];
            let new_sub = self.rebalance(ctx, n);
            if new_sub != n {
                if idx == 0 {
                    ctx.store(fld(self.root, 0), new_sub.raw(), ROOT_PTR);
                } else {
                    let (p, pdir) = path[idx - 1];
                    ctx.store(fld(p, pdir), new_sub.raw(), CHILD_UPD);
                }
            }
        }
        let size = ctx.load(fld(self.root, 1)) - 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
        true
    }

    fn update(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) -> bool {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_words * 8);
        ctx.tx_begin();
        let mut cur = ctx.load(fld(self.root, 0));
        while cur != 0 {
            ctx.compute(CMP_COST);
            let a = PmAddr::new(cur);
            let k = ctx.load(fld(a, 0));
            if k == key {
                ctx.store_bytes(fld(a, 4), value, UPD_VALUE);
                ctx.tx_commit();
                return true;
            }
            cur = ctx.load(fld(a, if key < k { 1 } else { 2 }));
        }
        ctx.tx_commit();
        false
    }

    fn get(&mut self, ctx: &mut PmContext, key: u64) -> Option<Vec<u8>> {
        let mut cur = ctx.load(fld(self.root, 0));
        while cur != 0 {
            ctx.compute(CMP_COST);
            let a = PmAddr::new(cur);
            let k = ctx.load(fld(a, 0));
            if k == key {
                let mut v = vec![0u8; (self.value_words * 8) as usize];
                ctx.load_bytes(fld(a, 4), &mut v);
                return Some(v);
            }
            cur = ctx.load(fld(a, if key < k { 1 } else { 2 }));
        }
        None
    }

    fn contains(&self, ctx: &PmContext, key: u64) -> bool {
        self.value_of(ctx, key).is_some()
    }

    fn value_of(&self, ctx: &PmContext, key: u64) -> Option<Vec<u8>> {
        let mut cur = ctx.peek(fld(self.root, 0));
        while cur != 0 {
            let a = PmAddr::new(cur);
            let k = ctx.peek(fld(a, 0));
            if k == key {
                let mut v = vec![0u8; (self.value_words * 8) as usize];
                ctx.peek_bytes(fld(a, 4), &mut v);
                return Some(v);
            }
            cur = ctx.peek(fld(a, if key < k { 1 } else { 2 }));
        }
        None
    }

    fn len(&self, ctx: &PmContext) -> usize {
        let mut count = 0;
        self.for_each(ctx, |_| count += 1);
        count
    }

    fn check_invariants(&self, ctx: &PmContext) -> Result<(), String> {
        self.check_node(ctx, ctx.peek(fld(self.root, 0)), u64::MIN, u64::MAX)?;
        let size = ctx.peek(fld(self.root, 1));
        let count = self.len(ctx);
        if size as usize != count {
            return Err(format!("size {size} != node count {count}"));
        }
        Ok(())
    }

    fn reachable(&self, ctx: &PmContext) -> Vec<PmAddr> {
        let mut out = vec![self.root];
        self.for_each(ctx, |n| out.push(PmAddr::new(n)));
        out
    }

    fn recover(&mut self, ctx: &mut PmContext) {
        // Heights are lazily persistent: recompute bottom-up.
        fn fix(ctx: &mut PmContext, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            let a = PmAddr::new(n);
            let lh = fix(ctx, ctx.peek(fld(a, 1)));
            let rh = fix(ctx, ctx.peek(fld(a, 2)));
            let h = lh.max(rh) + 1;
            ctx.recovery_write(fld(a, 3), h);
            h
        }
        let r = ctx.peek(fld(self.root, 0));
        fix(ctx, r);
        let count = self.len(ctx) as u64;
        ctx.recovery_write(fld(self.root, 1), count);
    }
}

impl crate::runner::RangeIndex for AvlTree {
    fn scan(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let mut stack = vec![(ctx.load(fld(self.root, 0)), false)];
        while let Some((n, expanded)) = stack.pop() {
            if n == 0 {
                continue;
            }
            let a = PmAddr::new(n);
            if expanded {
                let k = ctx.load(fld(a, 0));
                if (lo..=hi).contains(&k) {
                    let mut v = vec![0u8; (self.value_words * 8) as usize];
                    ctx.load_bytes(fld(a, 4), &mut v);
                    out.push((k, v));
                }
                continue;
            }
            ctx.compute(CMP_COST);
            let k = ctx.load(fld(a, 0));
            if k < hi {
                stack.push((ctx.load(fld(a, 2)), false));
            }
            stack.push((n, true));
            if k > lo {
                stack.push((ctx.load(fld(a, 1)), false));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{value_for, ycsb_load};
    use slpmt_core::Scheme;

    fn fresh(source: AnnotationSource) -> (PmContext, AvlTree) {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let t = AvlTree::new(&mut ctx, 32, source);
        (ctx, t)
    }

    #[test]
    fn insert_lookup_and_invariants() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(200, 32, 1);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 200);
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), op.value);
        }
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let v = value_for(1, 32);
        for k in 1..=256u64 {
            t.insert(&mut ctx, k, &v);
        }
        t.check_invariants(&ctx).unwrap();
        let h = ctx.peek(fld(PmAddr::new(ctx.peek(fld(t.root, 0))), 3));
        assert!(h <= 12, "AVL height {h} too large for 256 keys");
    }

    #[test]
    fn crash_recovery_recomputes_heights() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(120, 32, 2);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        ctx.crash_and_recover();
        t.recover(&mut ctx);
        ctx.gc(&t.reachable(&ctx));
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 120);
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), value_for(op.key, 32));
        }
        for op in ycsb_load(30, 32, 77) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn compiler_finds_heights_misses_counter() {
        let (table, _) = slpmt_annotate::analyze(&AvlTree::ir());
        assert!(table.get(sites::NODE_KEY).is_selective());
        assert_eq!(table.get(sites::HEIGHT_UPD), Annotation::Lazy);
        assert_eq!(table.get(sites::SIZE), Annotation::Plain);
        assert_eq!(table.get(sites::CHILD_UPD), Annotation::Plain);
    }

    #[test]
    fn compiler_annotations_preserve_correctness() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Compiler);
        for op in ycsb_load(100, 32, 3) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
        ctx.crash_and_recover();
        t.recover(&mut ctx);
        ctx.gc(&t.reachable(&ctx));
        t.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn ir_is_valid() {
        assert!(AvlTree::ir().validate().is_ok());
    }
}
