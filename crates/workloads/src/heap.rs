//! Array-based max-heap (Table II: "max heap using an array to store
//! all the nodes").
//!
//! The log-free opportunity here is the *append beyond the committed
//! count*: the slot at index `count` holds dead data until the logged
//! `count` update commits, so writing it needs no undo record —
//! rolling back `count` is the undo. Sift-up swaps touch live entries
//! and stay logged. Growing the array copies into a fresh allocation
//! (log-free) and frees the old one (the Pattern 1 `free` case; the
//! free is deferred to commit).
//!
//! ### Persistent layout
//!
//! ```text
//! root:  [0]=array [1]=capacity [2]=count
//! entry: 2 words: [0]=key [1]=value-blob pointer
//! blob:  value bytes
//! ```

use crate::ctx::{AnnotationSource, PmContext};
use crate::runner::DurableIndex;
use slpmt_annotate::{Annotation, AnnotationTable, Operand, ParamKind, TxnIr, TxnIrBuilder};
use slpmt_pmem::PmAddr;

/// Store sites of the insert transaction.
pub mod sites {
    use slpmt_annotate::SiteId;
    /// New entry's key, written at index `count` (dead slot).
    pub const SLOT_KEY: SiteId = SiteId(0);
    /// New entry's value pointer (dead slot).
    pub const SLOT_VPTR: SiteId = SiteId(1);
    /// Value blob payload (fresh allocation).
    pub const VALUE: SiteId = SiteId(2);
    /// The count commit point (always logged and eager).
    pub const COUNT: SiteId = SiteId(3);
    /// Sift-up swap: key of a live entry.
    pub const SWAP_KEY: SiteId = SiteId(4);
    /// Sift-up swap: value pointer of a live entry.
    pub const SWAP_VPTR: SiteId = SiteId(5);
    /// Growth copy into the fresh, larger array.
    pub const GROW_COPY: SiteId = SiteId(6);
    /// Root array pointer switch after growth.
    pub const GROW_ROOT_ARR: SiteId = SiteId(7);
    /// Root capacity update after growth.
    pub const GROW_CAP: SiteId = SiteId(8);
    /// Entry moved into the vacated slot on removal.
    pub const RM_MOVE: SiteId = SiteId(9);
    /// Value-pointer swap on update (copy-on-write blob replace).
    pub const UPD_VPTR: SiteId = SiteId(10);
}

const INITIAL_CAPACITY: u64 = 16;
const CMP_COST: u64 = 5;

fn fld(base: PmAddr, i: u64) -> PmAddr {
    base.add(i * 8)
}

fn entry(array: PmAddr, i: u64) -> PmAddr {
    array.add(i * 16)
}

/// The durable array max-heap.
#[derive(Debug, Clone)]
pub struct MaxHeap {
    root: PmAddr,
    value_bytes: u64,
}

impl MaxHeap {
    /// Hand-written annotations: appends beyond `count` and the fresh
    /// value blob are log-free; growth copies are log-free (fresh
    /// array).
    pub fn manual_table() -> AnnotationTable {
        use sites::*;
        [
            (SLOT_KEY, Annotation::LogFree),
            (SLOT_VPTR, Annotation::LogFree),
            (VALUE, Annotation::LogFree),
            (GROW_COPY, Annotation::LogFree),
        ]
        .into_iter()
        .collect()
    }

    /// IR for the compiler. The append-beyond-count slots require the
    /// semantic knowledge that `count` guards slot validity, which the
    /// compiler does not have: it sees stores into an existing array
    /// and leaves them plain (a Figure 13 miss). The value blob and
    /// the growth copy are ordinary Pattern 1 hits.
    pub fn ir() -> TxnIr {
        use sites::*;
        let mut b = TxnIrBuilder::new("heap-insert");
        let root = b.param(ParamKind::PersistentPtr);
        let key = b.param(ParamKind::Key);
        let val = b.param(ParamKind::Value);
        let arr = b.load(root, 0);
        let count = b.load(root, 2);
        let slot = b.compute(vec![Operand::Value(arr), Operand::Value(count)]);
        let blob = b.alloc();
        b.store_at(VALUE, blob, 0, Operand::Value(val));
        b.store_at(SLOT_KEY, slot, 0, Operand::Value(key));
        b.store_at(SLOT_VPTR, slot, 1, Operand::Value(blob));
        let count2 = b.compute(vec![Operand::Value(count), Operand::Const(1)]);
        b.store_at(COUNT, root, 2, Operand::Value(count2));
        // Sift-up swap of a live entry: a two-way *exchange*. The
        // parent cell is read and then overwritten by the other half
        // of the swap, so the moved values' pre-images are destroyed —
        // the location-stability rule keeps both halves eager.
        let pslot = b.compute(vec![Operand::Value(arr), Operand::Value(count)]);
        let pk = b.load(pslot, 0);
        let pv = b.load(pslot, 1);
        b.store_at(SWAP_KEY, slot, 2, Operand::Value(pk));
        b.store_at(SWAP_VPTR, slot, 3, Operand::Value(pv));
        b.store_at(SWAP_KEY, pslot, 0, Operand::Value(key));
        b.store_at(SWAP_VPTR, pslot, 1, Operand::Value(blob));
        // Growth: copy into a fresh array, retire the old one.
        let newarr = b.alloc();
        let ok = b.load(arr, 0);
        b.store_at(GROW_COPY, newarr, 0, Operand::Value(ok));
        b.store_at(GROW_ROOT_ARR, root, 0, Operand::Value(newarr));
        b.store_at(GROW_CAP, root, 1, Operand::Const(32));
        b.free(arr);
        b.build()
    }

    /// Builds an empty heap (untimed setup).
    ///
    /// # Panics
    ///
    /// Panics if `value_size` is not a multiple of 8.
    pub fn new(ctx: &mut PmContext, value_size: usize, source: AnnotationSource) -> Self {
        assert!(
            value_size.is_multiple_of(8),
            "value size must be whole words"
        );
        ctx.set_table(source.resolve(&Self::manual_table(), &Self::ir()));
        let root = ctx.setup_alloc(3 * 8);
        let arr = ctx.setup_alloc(INITIAL_CAPACITY * 16);
        ctx.recovery_write(fld(root, 0), arr.raw());
        ctx.recovery_write(fld(root, 1), INITIAL_CAPACITY);
        MaxHeap {
            root,
            value_bytes: value_size as u64,
        }
    }

    fn grow(&self, ctx: &mut PmContext, arr: PmAddr, capacity: u64, count: u64) -> PmAddr {
        use sites::*;
        let new_cap = capacity * 2;
        let new_arr = ctx.alloc(new_cap * 16);
        for i in 0..count {
            let k = ctx.load(entry(arr, i));
            let v = ctx.load(entry(arr, i).add(8));
            ctx.store(entry(new_arr, i), k, GROW_COPY);
            ctx.store(entry(new_arr, i).add(8), v, GROW_COPY);
        }
        ctx.store(fld(self.root, 0), new_arr.raw(), GROW_ROOT_ARR);
        ctx.store(fld(self.root, 1), new_cap, GROW_CAP);
        ctx.free(arr);
        new_arr
    }
}

impl DurableIndex for MaxHeap {
    fn name(&self) -> &'static str {
        "heap"
    }

    fn insert(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let mut arr = PmAddr::new(ctx.load(fld(self.root, 0)));
        let capacity = ctx.load(fld(self.root, 1));
        let count = ctx.load(fld(self.root, 2));
        if count == capacity {
            arr = self.grow(ctx, arr, capacity, count);
        }
        // Value blob + append into the dead slot at index `count`.
        let blob = ctx.alloc(self.value_bytes);
        ctx.store_bytes(blob, value, VALUE);
        ctx.store(entry(arr, count), key, SLOT_KEY);
        ctx.store(entry(arr, count).add(8), blob.raw(), SLOT_VPTR);
        ctx.store(fld(self.root, 2), count + 1, COUNT);
        // Sift up (swaps of live entries are logged).
        let mut i = count;
        let ikey = key;
        let iv = blob.raw();
        while i > 0 {
            let p = (i - 1) / 2;
            ctx.compute(CMP_COST);
            let pk = ctx.load(entry(arr, p));
            if pk >= ikey {
                break;
            }
            let pv = ctx.load(entry(arr, p).add(8));
            ctx.store(entry(arr, i), pk, SWAP_KEY);
            ctx.store(entry(arr, i).add(8), pv, SWAP_VPTR);
            ctx.store(entry(arr, p), ikey, SWAP_KEY);
            ctx.store(entry(arr, p).add(8), iv, SWAP_VPTR);
            // The inserted element now sits at p with unchanged fields.
            i = p;
        }
        ctx.tx_commit();
    }

    fn remove(&mut self, ctx: &mut PmContext, key: u64) -> bool {
        use sites::*;
        ctx.tx_begin();
        let arr = PmAddr::new(ctx.load(fld(self.root, 0)));
        let count = ctx.load(fld(self.root, 2));
        // Linear scan for the key (heaps do not index by key).
        let mut pos = None;
        for i in 0..count {
            ctx.compute(CMP_COST);
            if ctx.load(entry(arr, i)) == key {
                pos = Some(i);
                break;
            }
        }
        let Some(i) = pos else {
            ctx.tx_commit();
            return false;
        };
        let blob = ctx.load(entry(arr, i).add(8));
        ctx.free(PmAddr::new(blob));
        let last = count - 1;
        ctx.store(fld(self.root, 2), last, COUNT);
        if i != last {
            // Move the final entry into the vacated slot, then restore
            // heap order by sifting in whichever direction is needed.
            let mk = ctx.load(entry(arr, last));
            let mv = ctx.load(entry(arr, last).add(8));
            ctx.store(entry(arr, i), mk, RM_MOVE);
            ctx.store(entry(arr, i).add(8), mv, RM_MOVE);
            // Sift up.
            let mut j = i;
            while j > 0 {
                let p = (j - 1) / 2;
                ctx.compute(CMP_COST);
                let pk = ctx.load(entry(arr, p));
                let jk = ctx.load(entry(arr, j));
                if pk >= jk {
                    break;
                }
                let pv = ctx.load(entry(arr, p).add(8));
                let jv = ctx.load(entry(arr, j).add(8));
                ctx.store(entry(arr, j), pk, SWAP_KEY);
                ctx.store(entry(arr, j).add(8), pv, SWAP_VPTR);
                ctx.store(entry(arr, p), jk, SWAP_KEY);
                ctx.store(entry(arr, p).add(8), jv, SWAP_VPTR);
                j = p;
            }
            // Sift down.
            loop {
                let (l, r) = (2 * j + 1, 2 * j + 2);
                let mut largest = j;
                let mut lk = ctx.load(entry(arr, j));
                if l < last {
                    ctx.compute(CMP_COST);
                    let k = ctx.load(entry(arr, l));
                    if k > lk {
                        largest = l;
                        lk = k;
                    }
                }
                if r < last {
                    ctx.compute(CMP_COST);
                    let k = ctx.load(entry(arr, r));
                    if k > lk {
                        largest = r;
                    }
                }
                if largest == j {
                    break;
                }
                let jk = ctx.load(entry(arr, j));
                let jv = ctx.load(entry(arr, j).add(8));
                let gk = ctx.load(entry(arr, largest));
                let gv = ctx.load(entry(arr, largest).add(8));
                ctx.store(entry(arr, j), gk, SWAP_KEY);
                ctx.store(entry(arr, j).add(8), gv, SWAP_VPTR);
                ctx.store(entry(arr, largest), jk, SWAP_KEY);
                ctx.store(entry(arr, largest).add(8), jv, SWAP_VPTR);
                j = largest;
            }
        }
        ctx.tx_commit();
        true
    }

    fn update(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) -> bool {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        ctx.tx_begin();
        let arr = PmAddr::new(ctx.load(fld(self.root, 0)));
        let count = ctx.load(fld(self.root, 2));
        for i in 0..count {
            ctx.compute(CMP_COST);
            if ctx.load(entry(arr, i)) == key {
                let old = ctx.load(entry(arr, i).add(8));
                let blob = ctx.alloc(self.value_bytes);
                ctx.store_bytes(blob, value, VALUE);
                ctx.store(entry(arr, i).add(8), blob.raw(), UPD_VPTR);
                ctx.free(PmAddr::new(old));
                ctx.tx_commit();
                return true;
            }
        }
        ctx.tx_commit();
        false
    }

    fn get(&mut self, ctx: &mut PmContext, key: u64) -> Option<Vec<u8>> {
        let arr = PmAddr::new(ctx.load(fld(self.root, 0)));
        let count = ctx.load(fld(self.root, 2));
        for i in 0..count {
            ctx.compute(CMP_COST);
            if ctx.load(entry(arr, i)) == key {
                let blob = PmAddr::new(ctx.load(entry(arr, i).add(8)));
                let mut v = vec![0u8; self.value_bytes as usize];
                ctx.load_bytes(blob, &mut v);
                return Some(v);
            }
        }
        None
    }

    fn contains(&self, ctx: &PmContext, key: u64) -> bool {
        self.value_of(ctx, key).is_some()
    }

    fn value_of(&self, ctx: &PmContext, key: u64) -> Option<Vec<u8>> {
        let arr = PmAddr::new(ctx.peek(fld(self.root, 0)));
        let count = ctx.peek(fld(self.root, 2));
        for i in 0..count {
            if ctx.peek(entry(arr, i)) == key {
                let blob = PmAddr::new(ctx.peek(entry(arr, i).add(8)));
                let mut v = vec![0u8; self.value_bytes as usize];
                ctx.peek_bytes(blob, &mut v);
                return Some(v);
            }
        }
        None
    }

    fn len(&self, ctx: &PmContext) -> usize {
        ctx.peek(fld(self.root, 2)) as usize
    }

    fn check_invariants(&self, ctx: &PmContext) -> Result<(), String> {
        let arr = PmAddr::new(ctx.peek(fld(self.root, 0)));
        let capacity = ctx.peek(fld(self.root, 1));
        let count = ctx.peek(fld(self.root, 2));
        if count > capacity {
            return Err(format!("count {count} exceeds capacity {capacity}"));
        }
        for i in 1..count {
            let p = (i - 1) / 2;
            let pk = ctx.peek(entry(arr, p));
            let ck = ctx.peek(entry(arr, i));
            if pk < ck {
                return Err(format!(
                    "heap order violated: parent {pk} < child {ck} at {i}"
                ));
            }
        }
        Ok(())
    }

    fn reachable(&self, ctx: &PmContext) -> Vec<PmAddr> {
        let arr = PmAddr::new(ctx.peek(fld(self.root, 0)));
        let count = ctx.peek(fld(self.root, 2));
        let mut out = vec![self.root, arr];
        for i in 0..count {
            out.push(PmAddr::new(ctx.peek(entry(arr, i).add(8))));
        }
        out
    }

    fn recover(&mut self, _ctx: &mut PmContext) {
        // Nothing is lazily persistent: the logged count is the commit
        // point and undo replay already restored it.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{value_for, ycsb_load};
    use slpmt_core::Scheme;

    fn fresh(source: AnnotationSource) -> (PmContext, MaxHeap) {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let h = MaxHeap::new(&mut ctx, 32, source);
        (ctx, h)
    }

    #[test]
    fn insert_preserves_heap_order_and_content() {
        let (mut ctx, mut h) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(100, 32, 1);
        for op in &ops {
            h.insert(&mut ctx, op.key, &op.value);
        }
        h.check_invariants(&ctx).unwrap();
        assert_eq!(h.len(&ctx), 100);
        for op in &ops {
            assert_eq!(h.value_of(&ctx, op.key).unwrap(), op.value);
        }
        // Growth happened (initial capacity 16).
        assert!(ctx.peek(fld(h.root, 1)) > INITIAL_CAPACITY);
    }

    #[test]
    fn max_is_at_the_top() {
        let (mut ctx, mut h) = fresh(AnnotationSource::Manual);
        let v = value_for(0, 32);
        for k in [5u64, 99, 3, 42, 100, 7] {
            h.insert(&mut ctx, k, &v);
        }
        let arr = PmAddr::new(ctx.peek(fld(h.root, 0)));
        assert_eq!(ctx.peek(entry(arr, 0)), 100);
    }

    #[test]
    fn crash_mid_stream_recovers() {
        let (mut ctx, mut h) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(50, 32, 2);
        for op in &ops[..30] {
            h.insert(&mut ctx, op.key, &op.value);
        }
        ctx.crash_and_recover();
        h.recover(&mut ctx);
        ctx.gc(&h.reachable(&ctx));
        h.check_invariants(&ctx).unwrap();
        assert_eq!(h.len(&ctx), 30);
        for op in &ops[..30] {
            assert_eq!(h.value_of(&ctx, op.key).unwrap(), value_for(op.key, 32));
        }
        for op in &ops[30..] {
            h.insert(&mut ctx, op.key, &op.value);
        }
        assert_eq!(h.len(&ctx), 50);
        h.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn growth_frees_old_array() {
        let (mut ctx, mut h) = fresh(AnnotationSource::Manual);
        let first_arr = PmAddr::new(ctx.peek(fld(h.root, 0)));
        let v = value_for(0, 32);
        for k in 0..=INITIAL_CAPACITY {
            h.insert(&mut ctx, k + 1, &v);
        }
        assert!(!ctx.heap().is_live(first_arr), "old array freed at commit");
    }

    #[test]
    fn compiler_finds_blob_and_copy_misses_dead_slots() {
        let (table, _) = slpmt_annotate::analyze(&MaxHeap::ir());
        assert!(table.get(sites::VALUE).is_selective());
        assert!(table.get(sites::GROW_COPY).is_selective());
        assert_eq!(
            table.get(sites::SLOT_KEY),
            Annotation::Plain,
            "needs count semantics"
        );
        assert_eq!(table.get(sites::COUNT), Annotation::Plain);
    }

    #[test]
    fn selective_logging_reduces_records() {
        let count = |source| {
            let (mut ctx, mut h) = fresh(source);
            for op in ycsb_load(40, 32, 3) {
                h.insert(&mut ctx, op.key, &op.value);
            }
            ctx.machine().stats().log_records_created
        };
        assert!(count(AnnotationSource::Manual) < count(AnnotationSource::None));
    }

    #[test]
    fn ir_is_valid() {
        assert!(MaxHeap::ir().validate().is_ok());
    }
}
