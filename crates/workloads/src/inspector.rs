//! Persistent-heap inspector — the analogue of PMDK's leaked-object
//! inspector the paper's recovery story relies on ("the recovery uses
//! a garbage collector or a persistent inspector from PMDK to reclaim
//! the leaked variable x", §IV-B).
//!
//! [`inspect`] diffs the allocator's live set against a reachable set
//! produced by the structure's root walk, classifying every leak —
//! exactly what a post-crash administrator (or the GC) wants to see
//! before reclaiming.

use crate::ctx::PmContext;
use slpmt_pmem::PmAddr;
use std::collections::BTreeSet;
use std::fmt;

/// One leaked allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leak {
    /// Start address.
    pub addr: PmAddr,
    /// Allocation size in bytes.
    pub bytes: u64,
}

/// The inspector's findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapReport {
    /// Allocations the heap considers live.
    pub live: usize,
    /// Of those, allocations reachable from the structure's roots.
    pub reachable: usize,
    /// Live but unreachable allocations (Pattern 1 leaks from
    /// interrupted transactions).
    pub leaks: Vec<Leak>,
    /// Reachable addresses that are *not* allocation starts (interior
    /// pointers — e.g. nodes living inside a resize block).
    pub interior_pointers: usize,
}

impl HeapReport {
    /// Total leaked bytes.
    pub fn leaked_bytes(&self) -> u64 {
        self.leaks.iter().map(|l| l.bytes).sum()
    }

    /// `true` when nothing leaked.
    pub fn is_clean(&self) -> bool {
        self.leaks.is_empty()
    }
}

impl fmt::Display for HeapReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} live allocations, {} reachable, {} leaked ({} B), {} interior pointers",
            self.live,
            self.reachable,
            self.leaks.len(),
            self.leaked_bytes(),
            self.interior_pointers
        )
    }
}

/// Diffs the heap's live allocations against `reachable` (the
/// structure's root walk). Does not modify anything — pair with
/// [`PmContext::gc`] to actually reclaim.
pub fn inspect(ctx: &PmContext, reachable: &[PmAddr]) -> HeapReport {
    let reach: BTreeSet<u64> = reachable.iter().map(|a| a.raw()).collect();
    let mut report = HeapReport::default();
    let mut reachable_allocs = 0;
    for (addr, bytes) in ctx.heap().iter() {
        report.live += 1;
        if reach.contains(&addr.raw()) {
            reachable_allocs += 1;
        } else {
            report.leaks.push(Leak { addr, bytes });
        }
    }
    report.reachable = reachable_allocs;
    report.interior_pointers = reachable
        .iter()
        .filter(|a| !ctx.heap().is_live(**a))
        .count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::IndexKind;
    use crate::{ycsb_load, AnnotationSource};
    use slpmt_annotate::AnnotationTable;
    use slpmt_core::Scheme;

    #[test]
    fn clean_structure_reports_no_leaks() {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = IndexKind::KvCtree.build(&mut ctx, 32, AnnotationSource::Manual);
        for op in ycsb_load(30, 32, 1) {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        let report = inspect(&ctx, &idx.reachable(&ctx));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.live, report.reachable);
    }

    #[test]
    fn manual_leak_is_found_and_sized() {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = IndexKind::KvCtree.build(&mut ctx, 32, AnnotationSource::Manual);
        for op in ycsb_load(10, 32, 2) {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        let stray = ctx.alloc(48);
        let report = inspect(&ctx, &idx.reachable(&ctx));
        assert_eq!(report.leaks.len(), 1);
        assert_eq!(report.leaks[0].addr, stray);
        assert_eq!(report.leaks[0].bytes, 48);
        assert_eq!(report.leaked_bytes(), 48);
        // GC reclaims exactly what the inspector found.
        let reclaimed = ctx.gc(&idx.reachable(&ctx));
        assert_eq!(reclaimed, 1);
        assert!(inspect(&ctx, &idx.reachable(&ctx)).is_clean());
    }

    #[test]
    fn interior_pointers_are_classified() {
        // Hashtable resize blocks hold nodes that are interior to one
        // big allocation: the root walk reports their addresses, the
        // inspector classifies them as interior pointers, not leaks.
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = IndexKind::Hashtable.build(&mut ctx, 32, AnnotationSource::Manual);
        for op in ycsb_load(40, 32, 3) {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        let report = inspect(&ctx, &idx.reachable(&ctx));
        assert!(report.interior_pointers > 0, "{report}");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn display_is_informative() {
        let ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let report = inspect(&ctx, &[]);
        assert!(format!("{report}").contains("0 live allocations"));
    }
}
