//! Red-black tree with parent pointers and colours (Table II).
//!
//! "Each node contains a pointer to the parent and an integer
//! recording the color." Parent pointers are the paper's flagship lazy
//! candidates (§VI-D4): their values are rebuildable from the child
//! pointers, so updates use `storeT(lazy)` and recovery re-derives
//! them by walking the tree. Colour updates are likewise annotated
//! lazy by hand; if a crash loses deferred colours, recovery recolours
//! the durable *shape* with a black-height dynamic program (any valid
//! red-black colouring restores the invariant — colours are a balance
//! hint, not data).
//!
//! ### Persistent layout
//!
//! ```text
//! root:  [0]=tree root pointer  [1]=size
//! node:  [0]=key [1]=left [2]=right [3]=parent [4]=color (0 = black)
//!        [5..]=value
//! ```

use crate::ctx::{AnnotationSource, PmContext};
use crate::runner::DurableIndex;
use slpmt_annotate::{Annotation, AnnotationTable, Operand, ParamKind, TxnIr, TxnIrBuilder};
use slpmt_pmem::PmAddr;
use std::collections::BTreeMap;

/// Store sites of the insert transaction.
pub mod sites {
    use slpmt_annotate::SiteId;
    /// New node's key.
    pub const NODE_KEY: SiteId = SiteId(0);
    /// New node's value payload.
    pub const NODE_VALUE: SiteId = SiteId(1);
    /// New node's left/right initialisation (null).
    pub const NODE_CHILD_INIT: SiteId = SiteId(2);
    /// New node's parent pointer.
    pub const NODE_PARENT_NEW: SiteId = SiteId(3);
    /// New node's colour (red).
    pub const NODE_COLOR_NEW: SiteId = SiteId(4);
    /// Existing node's child pointer linking in the new node.
    pub const LINK_CHILD: SiteId = SiteId(5);
    /// Root object's tree-root pointer.
    pub const ROOT_PTR: SiteId = SiteId(6);
    /// Root object's size counter.
    pub const SIZE: SiteId = SiteId(7);
    /// Colour update on an existing node (fix-up recolouring).
    pub const FIX_COLOR: SiteId = SiteId(8);
    /// Child pointer update on an existing node (rotation).
    pub const ROT_CHILD: SiteId = SiteId(9);
    /// Parent pointer update on an existing node (rotation/fix-up).
    pub const PARENT_UPD: SiteId = SiteId(10);
    /// Poison store into the node being freed (Pattern 1, free case).
    pub const RM_POISON: SiteId = SiteId(11);
    /// In-place value overwrite on update (logged).
    pub const UPD_VALUE: SiteId = SiteId(12);
}

const RED: u64 = 1;
const BLACK: u64 = 0;
const CMP_COST: u64 = 6;

fn fld(base: PmAddr, i: u64) -> PmAddr {
    base.add(i * 8)
}

/// The durable red-black tree.
#[derive(Debug, Clone)]
pub struct Rbtree {
    root: PmAddr,
    value_words: u64,
}

impl Rbtree {
    /// Hand-written annotations: new-node fields are log-free; parent
    /// pointers and colours are lazily persistent (rebuildable).
    pub fn manual_table() -> AnnotationTable {
        use sites::*;
        [
            (NODE_KEY, Annotation::LogFree),
            (NODE_VALUE, Annotation::LogFree),
            (NODE_CHILD_INIT, Annotation::LogFree),
            (NODE_PARENT_NEW, Annotation::LogFree),
            (NODE_COLOR_NEW, Annotation::LogFree),
            (FIX_COLOR, Annotation::Lazy),
            (PARENT_UPD, Annotation::Lazy),
            (RM_POISON, Annotation::LazyLogFree),
        ]
        .into_iter()
        .collect()
    }

    /// IR of the insert transaction for the compiler pass: the
    /// new-node pattern, the rotation's parent-pointer update (flow-out
    /// and recoverable → lazy), and the colour computation marked
    /// opaque (the compiler "fails to infer deeper semantics").
    pub fn ir() -> TxnIr {
        use sites::*;
        let mut b = TxnIrBuilder::new("rbtree-insert");
        let root = b.param(ParamKind::PersistentPtr);
        let key = b.param(ParamKind::Key);
        let val = b.param(ParamKind::Value);
        let pos = b.load(root, 0); // insertion parent found by descent
        let node = b.alloc();
        b.store_at(NODE_KEY, node, 0, Operand::Value(key));
        b.store_at(NODE_VALUE, node, 5, Operand::Value(val));
        b.store_at(NODE_CHILD_INIT, node, 1, Operand::Const(0));
        b.store_at(NODE_PARENT_NEW, node, 3, Operand::Value(pos));
        b.store_at(NODE_COLOR_NEW, node, 4, Operand::Const(RED));
        b.store_at(LINK_CHILD, pos, 1, Operand::Value(node));
        let size = b.load(root, 1);
        let size2 = b.compute_opaque(vec![Operand::Value(size)]);
        b.store_at(SIZE, root, 1, Operand::Value(size2));
        // Fix-up portion: rotate around pos's parent. Which pointer
        // lands where is decided by the re-balancing logic, which the
        // compiler cannot analyse — the rotated child pointers and the
        // new tree root flow through opaque computations (so they stay
        // eagerly logged) while the parent back-pointer is a plain
        // recoverable value the compiler *does* find (§VI-D4).
        let gp = b.load(pos, 3);
        let uncle = b.load(gp, 2);
        let color = b.compute_opaque(vec![Operand::Value(uncle)]);
        b.store_at(FIX_COLOR, uncle, 4, Operand::Value(color));
        let rotated = b.compute_opaque(vec![Operand::Value(uncle), Operand::Value(gp)]);
        b.store_at(ROT_CHILD, gp, 1, Operand::Value(rotated));
        b.store_at(PARENT_UPD, uncle, 3, Operand::Value(gp));
        let new_root = b.compute_opaque(vec![Operand::Value(gp)]);
        b.store_at(ROOT_PTR, root, 0, Operand::Value(new_root));
        b.build()
    }

    /// Builds an empty tree (untimed setup), installing the resolved
    /// annotation table.
    ///
    /// # Panics
    ///
    /// Panics if `value_size` is not a multiple of 8.
    pub fn new(ctx: &mut PmContext, value_size: usize, source: AnnotationSource) -> Self {
        assert!(
            value_size.is_multiple_of(8),
            "value size must be whole words"
        );
        ctx.set_table(source.resolve(&Self::manual_table(), &Self::ir()));
        let root = ctx.setup_alloc(2 * 8);
        Rbtree {
            root,
            value_words: (value_size / 8) as u64,
        }
    }

    fn node_bytes(&self) -> u64 {
        (5 + self.value_words) * 8
    }

    // Timed accessors -------------------------------------------------

    fn child(&self, ctx: &mut PmContext, n: PmAddr, dir: u64) -> u64 {
        ctx.load(fld(n, 1 + dir))
    }

    fn set_child(&self, ctx: &mut PmContext, n: PmAddr, dir: u64, v: u64) {
        ctx.store(fld(n, 1 + dir), v, sites::ROT_CHILD);
    }

    fn parent(&self, ctx: &mut PmContext, n: PmAddr) -> u64 {
        ctx.load(fld(n, 3))
    }

    fn set_parent(&self, ctx: &mut PmContext, n: PmAddr, v: u64) {
        ctx.store(fld(n, 3), v, sites::PARENT_UPD);
    }

    fn color(&self, ctx: &mut PmContext, n: u64) -> u64 {
        if n == 0 {
            BLACK
        } else {
            ctx.load(fld(PmAddr::new(n), 4))
        }
    }

    fn set_color(&self, ctx: &mut PmContext, n: PmAddr, c: u64) {
        ctx.store(fld(n, 4), c, sites::FIX_COLOR);
    }

    /// Rotates around `x` in direction `dir` (0 = left, 1 = right).
    fn rotate(&self, ctx: &mut PmContext, x: PmAddr, dir: u64) {
        let y = PmAddr::new(self.child(ctx, x, 1 - dir));
        let beta = self.child(ctx, y, dir);
        self.set_child(ctx, x, 1 - dir, beta);
        if beta != 0 {
            self.set_parent(ctx, PmAddr::new(beta), x.raw());
        }
        let xp = self.parent(ctx, x);
        self.set_parent(ctx, y, xp);
        if xp == 0 {
            ctx.store(fld(self.root, 0), y.raw(), sites::ROOT_PTR);
        } else {
            let p = PmAddr::new(xp);
            if self.child(ctx, p, 0) == x.raw() {
                self.set_child(ctx, p, 0, y.raw());
            } else {
                self.set_child(ctx, p, 1, y.raw());
            }
        }
        self.set_child(ctx, y, dir, x.raw());
        self.set_parent(ctx, x, y.raw());
    }

    /// CLRS insert fix-up.
    fn fixup(&self, ctx: &mut PmContext, mut z: PmAddr) {
        loop {
            let zp = self.parent(ctx, z);
            if zp == 0 || self.color(ctx, zp) == BLACK {
                break;
            }
            let p = PmAddr::new(zp);
            let gp_raw = self.parent(ctx, p);
            debug_assert_ne!(gp_raw, 0, "red parent implies a grandparent");
            let g = PmAddr::new(gp_raw);
            let dir = if self.child(ctx, g, 0) == zp {
                0u64
            } else {
                1u64
            };
            let uncle = self.child(ctx, g, 1 - dir);
            if self.color(ctx, uncle) == RED {
                self.set_color(ctx, p, BLACK);
                self.set_color(ctx, PmAddr::new(uncle), BLACK);
                self.set_color(ctx, g, RED);
                z = g;
            } else {
                if self.child(ctx, p, 1 - dir) == z.raw() {
                    z = p;
                    self.rotate(ctx, z, dir);
                }
                let zp2 = PmAddr::new(self.parent(ctx, z));
                let g2 = PmAddr::new(self.parent(ctx, zp2));
                self.set_color(ctx, zp2, BLACK);
                self.set_color(ctx, g2, RED);
                self.rotate(ctx, g2, 1 - dir);
            }
        }
        let r = ctx.load(fld(self.root, 0));
        if self.color(ctx, r) == RED {
            self.set_color(ctx, PmAddr::new(r), BLACK);
        }
    }

    /// Replaces the subtree rooted at `u` with the one rooted at `v`
    /// (CLRS `RB-TRANSPLANT`); `v` may be null.
    fn transplant(&self, ctx: &mut PmContext, u: PmAddr, v: u64) {
        let up = self.parent(ctx, u);
        if up == 0 {
            ctx.store(fld(self.root, 0), v, sites::ROOT_PTR);
        } else {
            let p = PmAddr::new(up);
            if self.child(ctx, p, 0) == u.raw() {
                self.set_child(ctx, p, 0, v);
            } else {
                self.set_child(ctx, p, 1, v);
            }
        }
        if v != 0 {
            self.set_parent(ctx, PmAddr::new(v), up);
        }
    }

    /// CLRS `RB-DELETE-FIXUP`, generalised over direction; `x` may be
    /// null, so its parent is tracked explicitly.
    fn delete_fixup(&self, ctx: &mut PmContext, mut x: u64, mut xp: u64) {
        loop {
            let root = ctx.load(fld(self.root, 0));
            if x == root || self.color(ctx, x) == RED {
                break;
            }
            let p = PmAddr::new(xp);
            let dir = if self.child(ctx, p, 0) == x {
                0u64
            } else {
                1u64
            };
            let mut w = PmAddr::new(self.child(ctx, p, 1 - dir));
            debug_assert_ne!(w.raw(), 0, "doubly-black node must have a sibling");
            if self.color(ctx, w.raw()) == RED {
                self.set_color(ctx, w, BLACK);
                self.set_color(ctx, p, RED);
                self.rotate(ctx, p, dir);
                w = PmAddr::new(self.child(ctx, p, 1 - dir));
            }
            let near = self.child(ctx, w, dir);
            let far = self.child(ctx, w, 1 - dir);
            if self.color(ctx, near) == BLACK && self.color(ctx, far) == BLACK {
                self.set_color(ctx, w, RED);
                x = p.raw();
                xp = self.parent(ctx, p);
            } else {
                if self.color(ctx, far) == BLACK {
                    if near != 0 {
                        self.set_color(ctx, PmAddr::new(near), BLACK);
                    }
                    self.set_color(ctx, w, RED);
                    self.rotate(ctx, w, 1 - dir);
                    w = PmAddr::new(self.child(ctx, p, 1 - dir));
                }
                let pc = self.color(ctx, p.raw());
                self.set_color(ctx, w, pc);
                self.set_color(ctx, p, BLACK);
                let far2 = self.child(ctx, w, 1 - dir);
                if far2 != 0 {
                    self.set_color(ctx, PmAddr::new(far2), BLACK);
                }
                self.rotate(ctx, p, dir);
                break;
            }
        }
        if x != 0 {
            self.set_color(ctx, PmAddr::new(x), BLACK);
        }
    }

    // Untimed helpers --------------------------------------------------

    fn peek_node(&self, ctx: &PmContext, n: u64) -> Option<(u64, u64, u64, u64, u64)> {
        if n == 0 {
            return None;
        }
        let a = PmAddr::new(n);
        Some((
            ctx.peek(fld(a, 0)), // key
            ctx.peek(fld(a, 1)), // left
            ctx.peek(fld(a, 2)), // right
            ctx.peek(fld(a, 3)), // parent
            ctx.peek(fld(a, 4)), // color
        ))
    }

    fn for_each(&self, ctx: &PmContext, mut f: impl FnMut(u64)) {
        let mut stack = vec![ctx.peek(fld(self.root, 0))];
        while let Some(n) = stack.pop() {
            if n == 0 {
                continue;
            }
            f(n);
            let a = PmAddr::new(n);
            stack.push(ctx.peek(fld(a, 1)));
            stack.push(ctx.peek(fld(a, 2)));
        }
    }

    /// Black-height dynamic program: the set of black-heights each
    /// node's subtree supports per colour. `None` means uncolourable.
    fn feasible(
        &self,
        ctx: &PmContext,
        n: u64,
        memo: &mut BTreeMap<u64, Vec<(u64, u64)>>,
    ) -> Vec<(u64, u64)> {
        if n == 0 {
            return vec![(BLACK, 1)];
        }
        if let Some(v) = memo.get(&n) {
            return v.clone();
        }
        let a = PmAddr::new(n);
        let l = self.feasible(ctx, ctx.peek(fld(a, 1)), memo);
        let r = self.feasible(ctx, ctx.peek(fld(a, 2)), memo);
        let mut out = Vec::new();
        for &(lc, lh) in &l {
            for &(rc, rh) in &r {
                if lh != rh {
                    continue;
                }
                // Node black: children any colour.
                out.push((BLACK, lh + 1));
                // Node red: both children black.
                if lc == BLACK && rc == BLACK {
                    out.push((RED, lh));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        memo.insert(n, out.clone());
        out
    }

    /// Assigns a concrete colouring consistent with `feasible`.
    fn assign_colors(&self, ctx: &mut PmContext, n: u64, color: u64, bh: u64) {
        if n == 0 {
            return;
        }
        let a = PmAddr::new(n);
        ctx.recovery_write(fld(a, 4), color);
        let child_bh = if color == BLACK { bh - 1 } else { bh };
        let mut memo = BTreeMap::new();
        for dir in [1u64, 2] {
            let c = ctx.peek(fld(a, dir));
            let feas = self.feasible(ctx, c, &mut memo);
            // Prefer black children; red only when black is infeasible
            // or the parent is black and red is needed for the height.
            // A red parent forces black children; a black parent
            // prefers black children when feasible.
            let child_color = if color == RED || feas.contains(&(BLACK, child_bh)) {
                BLACK
            } else {
                RED
            };
            let choice = (child_color, child_bh);
            debug_assert!(
                c == 0 || feas.contains(&choice),
                "recolouring DP inconsistency at node {c:#x}"
            );
            self.assign_colors(ctx, c, choice.0, choice.1);
        }
    }

    fn recolor_tree(&self, ctx: &mut PmContext) {
        let r = ctx.peek(fld(self.root, 0));
        if r == 0 {
            return;
        }
        let mut memo = BTreeMap::new();
        let feas = self.feasible(ctx, r, &mut memo);
        let (_, bh) = *feas
            .iter()
            .find(|(c, _)| *c == BLACK)
            .expect("a red-black-insertable shape admits a black root colouring");
        self.assign_colors(ctx, r, BLACK, bh);
    }

    fn rb_violations(&self, ctx: &PmContext) -> Option<String> {
        let r = ctx.peek(fld(self.root, 0));
        if r == 0 {
            return None;
        }
        if ctx.peek(fld(PmAddr::new(r), 4)) == RED {
            return Some("root is red".into());
        }
        // Iterative check: red-red and black-height balance.
        fn bh(ctx: &PmContext, n: u64) -> Result<u64, String> {
            if n == 0 {
                return Ok(1);
            }
            let a = PmAddr::new(n);
            let c = ctx.peek(fld(a, 4));
            let l = ctx.peek(fld(a, 1));
            let rt = ctx.peek(fld(a, 2));
            if c == RED {
                for ch in [l, rt] {
                    if ch != 0 && ctx.peek(fld(PmAddr::new(ch), 4)) == RED {
                        return Err(format!("red-red violation at {n:#x}"));
                    }
                }
            }
            let lb = bh(ctx, l)?;
            let rb = bh(ctx, rt)?;
            if lb != rb {
                return Err(format!("black-height mismatch at {n:#x}"));
            }
            Ok(lb + if c == BLACK { 1 } else { 0 })
        }
        bh(ctx, r).err()
    }
}

impl DurableIndex for Rbtree {
    fn name(&self) -> &'static str {
        "rbtree"
    }

    fn scan_range(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        Some(crate::runner::RangeIndex::scan(self, ctx, lo, hi))
    }

    fn insert(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_words * 8);
        ctx.tx_begin();
        // Descend to the insertion point.
        let mut parent = 0u64;
        let mut cur = ctx.load(fld(self.root, 0));
        let mut dir = 0u64;
        while cur != 0 {
            ctx.compute(CMP_COST);
            let k = ctx.load(fld(PmAddr::new(cur), 0));
            parent = cur;
            dir = if key < k { 0 } else { 1 };
            cur = self.child(ctx, PmAddr::new(cur), dir);
        }
        // Build the new node (log-free: Pattern 1).
        let node = ctx.alloc(self.node_bytes());
        ctx.store(fld(node, 0), key, NODE_KEY);
        ctx.store(fld(node, 1), 0, NODE_CHILD_INIT);
        ctx.store(fld(node, 2), 0, NODE_CHILD_INIT);
        ctx.store(fld(node, 3), parent, NODE_PARENT_NEW);
        ctx.store(fld(node, 4), RED, NODE_COLOR_NEW);
        ctx.store_bytes(fld(node, 5), value, NODE_VALUE);
        // Publish.
        if parent == 0 {
            ctx.store(fld(self.root, 0), node.raw(), ROOT_PTR);
        } else {
            ctx.store(fld(PmAddr::new(parent), 1 + dir), node.raw(), LINK_CHILD);
        }
        let size = ctx.load(fld(self.root, 1)) + 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        self.fixup(ctx, node);
        ctx.tx_commit();
    }

    fn remove(&mut self, ctx: &mut PmContext, key: u64) -> bool {
        use sites::*;
        ctx.tx_begin();
        // Find the node.
        let mut cur = ctx.load(fld(self.root, 0));
        while cur != 0 {
            ctx.compute(CMP_COST);
            let a = PmAddr::new(cur);
            let k = ctx.load(fld(a, 0));
            if k == key {
                break;
            }
            cur = self.child(ctx, a, if key < k { 0 } else { 1 });
        }
        if cur == 0 {
            ctx.tx_commit();
            return false;
        }
        let z = PmAddr::new(cur);
        // CLRS RB-DELETE.
        let (zl, zr) = (self.child(ctx, z, 0), self.child(ctx, z, 1));
        let y_color;
        let x;
        let xp;
        if zl == 0 {
            y_color = self.color(ctx, z.raw());
            x = zr;
            xp = self.parent(ctx, z);
            self.transplant(ctx, z, zr);
        } else if zr == 0 {
            y_color = self.color(ctx, z.raw());
            x = zl;
            xp = self.parent(ctx, z);
            self.transplant(ctx, z, zl);
        } else {
            // Successor: leftmost of the right subtree.
            let mut y = PmAddr::new(zr);
            loop {
                let l = self.child(ctx, y, 0);
                if l == 0 {
                    break;
                }
                ctx.compute(CMP_COST);
                y = PmAddr::new(l);
            }
            y_color = self.color(ctx, y.raw());
            x = self.child(ctx, y, 1);
            if self.parent(ctx, y) == z.raw() {
                xp = y.raw();
            } else {
                xp = self.parent(ctx, y);
                self.transplant(ctx, y, x);
                let zr2 = self.child(ctx, z, 1);
                self.set_child(ctx, y, 1, zr2);
                self.set_parent(ctx, PmAddr::new(zr2), y.raw());
            }
            self.transplant(ctx, z, y.raw());
            let zl2 = self.child(ctx, z, 0);
            self.set_child(ctx, y, 0, zl2);
            self.set_parent(ctx, PmAddr::new(zl2), y.raw());
            let zc = self.color(ctx, z.raw());
            self.set_color(ctx, y, zc);
        }
        if y_color == BLACK {
            self.delete_fixup(ctx, x, xp);
        }
        // Poison the dying node (Pattern 1, free case) and retire it.
        ctx.store(fld(z, 0), 0, RM_POISON);
        ctx.free(z);
        let size = ctx.load(fld(self.root, 1)) - 1;
        ctx.store(fld(self.root, 1), size, SIZE);
        ctx.tx_commit();
        true
    }

    fn update(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) -> bool {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_words * 8);
        ctx.tx_begin();
        let mut cur = ctx.load(fld(self.root, 0));
        while cur != 0 {
            ctx.compute(CMP_COST);
            let a = PmAddr::new(cur);
            let k = ctx.load(fld(a, 0));
            if k == key {
                // In-place overwrite: the undo log captures the old
                // value, so a crash rolls the update back atomically.
                ctx.store_bytes(fld(a, 5), value, UPD_VALUE);
                ctx.tx_commit();
                return true;
            }
            cur = self.child(ctx, a, if key < k { 0 } else { 1 });
        }
        ctx.tx_commit();
        false
    }

    fn get(&mut self, ctx: &mut PmContext, key: u64) -> Option<Vec<u8>> {
        let mut cur = ctx.load(fld(self.root, 0));
        while cur != 0 {
            ctx.compute(CMP_COST);
            let a = PmAddr::new(cur);
            let k = ctx.load(fld(a, 0));
            if k == key {
                let mut v = vec![0u8; (self.value_words * 8) as usize];
                ctx.load_bytes(fld(a, 5), &mut v);
                return Some(v);
            }
            cur = self.child(ctx, a, if key < k { 0 } else { 1 });
        }
        None
    }

    fn contains(&self, ctx: &PmContext, key: u64) -> bool {
        self.value_of(ctx, key).is_some()
    }

    fn value_of(&self, ctx: &PmContext, key: u64) -> Option<Vec<u8>> {
        let mut cur = ctx.peek(fld(self.root, 0));
        while cur != 0 {
            let a = PmAddr::new(cur);
            let k = ctx.peek(fld(a, 0));
            if k == key {
                let mut v = vec![0u8; (self.value_words * 8) as usize];
                ctx.peek_bytes(fld(a, 5), &mut v);
                return Some(v);
            }
            cur = ctx.peek(fld(a, if key < k { 1 } else { 2 }));
        }
        None
    }

    fn len(&self, ctx: &PmContext) -> usize {
        let mut count = 0;
        self.for_each(ctx, |_| count += 1);
        count
    }

    fn check_invariants(&self, ctx: &PmContext) -> Result<(), String> {
        // BST order + parent-pointer consistency.
        let mut stack = vec![(ctx.peek(fld(self.root, 0)), u64::MIN, u64::MAX, 0u64)];
        let mut count = 0usize;
        while let Some((n, lo, hi, expect_parent)) = stack.pop() {
            if n == 0 {
                continue;
            }
            count += 1;
            let (key, l, r, p, _c) = self.peek_node(ctx, n).expect("non-null");
            if key < lo || key > hi {
                return Err(format!("BST violation: key {key} outside [{lo}, {hi}]"));
            }
            if p != expect_parent {
                return Err(format!(
                    "parent pointer of {n:#x} is {p:#x}, expected {expect_parent:#x}"
                ));
            }
            stack.push((l, lo, key.saturating_sub(1), n));
            stack.push((r, key.saturating_add(1), hi, n));
        }
        let size = ctx.peek(fld(self.root, 1));
        if size as usize != count {
            return Err(format!("size {size} != node count {count}"));
        }
        if let Some(v) = self.rb_violations(ctx) {
            return Err(v);
        }
        Ok(())
    }

    fn reachable(&self, ctx: &PmContext) -> Vec<PmAddr> {
        let mut out = vec![self.root];
        self.for_each(ctx, |n| out.push(PmAddr::new(n)));
        out
    }

    fn recover(&mut self, ctx: &mut PmContext) {
        // Rebuild parent pointers (lazy) from the durable shape.
        let r = ctx.peek(fld(self.root, 0));
        let mut stack = vec![(r, 0u64)];
        let mut count = 0u64;
        while let Some((n, parent)) = stack.pop() {
            if n == 0 {
                continue;
            }
            count += 1;
            let a = PmAddr::new(n);
            ctx.recovery_write(fld(a, 3), parent);
            stack.push((ctx.peek(fld(a, 1)), n));
            stack.push((ctx.peek(fld(a, 2)), n));
        }
        ctx.recovery_write(fld(self.root, 1), count);
        // Recolour only if deferred colour updates were lost.
        if self.rb_violations(ctx).is_some() {
            self.recolor_tree(ctx);
        }
    }
}

impl crate::runner::RangeIndex for Rbtree {
    fn scan(&mut self, ctx: &mut PmContext, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        // In-order walk pruning subtrees outside [lo, hi].
        let mut stack = vec![(ctx.load(fld(self.root, 0)), false)];
        while let Some((n, expanded)) = stack.pop() {
            if n == 0 {
                continue;
            }
            let a = PmAddr::new(n);
            if expanded {
                let k = ctx.load(fld(a, 0));
                if (lo..=hi).contains(&k) {
                    let mut v = vec![0u8; (self.value_words * 8) as usize];
                    ctx.load_bytes(fld(a, 5), &mut v);
                    out.push((k, v));
                }
                continue;
            }
            ctx.compute(CMP_COST);
            let k = ctx.load(fld(a, 0));
            if k < hi {
                stack.push((ctx.load(fld(a, 2)), false));
            }
            stack.push((n, true));
            if k > lo {
                stack.push((ctx.load(fld(a, 1)), false));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{value_for, ycsb_load};
    use slpmt_core::Scheme;

    fn fresh(source: AnnotationSource) -> (PmContext, Rbtree) {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let t = Rbtree::new(&mut ctx, 32, source);
        (ctx, t)
    }

    #[test]
    fn insert_lookup_and_invariants() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        for op in ycsb_load(200, 32, 1) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 200);
        for op in ycsb_load(200, 32, 1) {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), op.value);
        }
    }

    #[test]
    fn sequential_keys_stay_balanced() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let v = value_for(1, 32);
        for k in 1..=128u64 {
            t.insert(&mut ctx, k, &v);
        }
        t.check_invariants(&ctx).unwrap();
        // A red-black tree of 128 sequential inserts must be shallow.
        let mut max_depth = 0;
        fn depth(ctx: &PmContext, n: u64, d: usize, max: &mut usize) {
            if n == 0 {
                *max = (*max).max(d);
                return;
            }
            let a = PmAddr::new(n);
            depth(ctx, ctx.peek(fld(a, 1)), d + 1, max);
            depth(ctx, ctx.peek(fld(a, 2)), d + 1, max);
        }
        depth(&ctx, ctx.peek(fld(t.root, 0)), 0, &mut max_depth);
        assert!(max_depth <= 2 * 8, "depth {max_depth} too deep for RB tree");
    }

    #[test]
    fn crash_recovery_rebuilds_parents_and_colors() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Manual);
        let ops = ycsb_load(120, 32, 2);
        for op in &ops {
            t.insert(&mut ctx, op.key, &op.value);
        }
        ctx.crash_and_recover();
        t.recover(&mut ctx);
        ctx.gc(&t.reachable(&ctx));
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 120);
        for op in &ops {
            assert_eq!(t.value_of(&ctx, op.key).unwrap(), value_for(op.key, 32));
        }
        // Still insertable after recovery.
        for op in ycsb_load(30, 32, 99) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn compiler_annotations_preserve_correctness() {
        let (mut ctx, mut t) = fresh(AnnotationSource::Compiler);
        for op in ycsb_load(100, 32, 3) {
            t.insert(&mut ctx, op.key, &op.value);
        }
        t.check_invariants(&ctx).unwrap();
        ctx.crash_and_recover();
        t.recover(&mut ctx);
        ctx.gc(&t.reachable(&ctx));
        t.check_invariants(&ctx).unwrap();
        assert_eq!(t.len(&ctx), 100);
    }

    #[test]
    fn compiler_finds_parent_pointer_misses_color() {
        let (table, _) = slpmt_annotate::analyze(&Rbtree::ir());
        assert!(table.get(sites::NODE_KEY).is_selective());
        assert_eq!(table.get(sites::PARENT_UPD), Annotation::Lazy);
        assert_eq!(
            table.get(sites::FIX_COLOR),
            Annotation::Plain,
            "colour is opaque"
        );
        assert_eq!(table.get(sites::LINK_CHILD), Annotation::Plain);
    }

    #[test]
    fn selective_logging_reduces_records() {
        let count = |source| {
            let (mut ctx, mut t) = fresh(source);
            for op in ycsb_load(50, 32, 4) {
                t.insert(&mut ctx, op.key, &op.value);
            }
            ctx.machine().stats().log_records_created
        };
        assert!(count(AnnotationSource::Manual) < count(AnnotationSource::None));
    }

    #[test]
    fn ir_is_valid() {
        assert!(Rbtree::ir().validate().is_ok());
    }
}
