//! Seeded KV-service client generators.
//!
//! The service front end (`slpmt-kv`) is driven by the same YCSB mix
//! family as the offline drivers: a [`MixSpec`] trace is mapped
//! one-to-one onto abstract service requests ([`KvRequest`]), so the
//! [`StreamingOracle`](crate::crashsweep::StreamingOracle) that models
//! a mixed trace models the request stream too — recovery correctness
//! can be proven at the service boundary with the engine's own
//! machinery.
//!
//! Two pacing models, both deterministic:
//!
//! * **Closed loop** — each client session issues its next request the
//!   moment the previous response lands; there is no arrival schedule.
//! * **Open loop** — arrivals follow a seeded inter-arrival schedule
//!   ([`open_loop_arrivals`]) independent of completions, so a stalled
//!   WPQ makes queueing delay (and tail latency) visible instead of
//!   silently slowing the generator down.

use crate::ycsb::{ycsb_mix, MixSpec, MixedOp};
use slpmt_prng::{splitmix64, SimRng};

/// One abstract service request, protocol-independent. The
/// memcached-text encoding lives in `slpmt-kv`; generators produce
/// this form so `slpmt-workloads` stays below the service crate in
/// the dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvRequest {
    /// Point read.
    Get {
        /// Target key.
        key: u64,
    },
    /// Point read returning a CAS token.
    Gets {
        /// Target key.
        key: u64,
    },
    /// Unconditional store (insert or replace).
    Set {
        /// Target key.
        key: u64,
        /// Raw value payload (pre-encoding).
        value: Vec<u8>,
    },
    /// Read-modify-write: fetch the current CAS token with `gets`,
    /// then store conditionally against it (the YCSB-F shape).
    Cas {
        /// Target key.
        key: u64,
        /// Raw replacement payload (pre-encoding).
        value: Vec<u8>,
    },
    /// Key removal.
    Delete {
        /// Target key.
        key: u64,
    },
    /// Range scan over the live keys the generator materialised
    /// (ascending, never empty) — ordered backends serve it with one
    /// range walk, hash backends degrade to point reads.
    Scan {
        /// Expected result keys, ascending.
        keys: Vec<u64>,
    },
}

impl KvRequest {
    /// Short stable verb label (matches the latency-class names the
    /// serve reports print).
    pub fn verb(&self) -> &'static str {
        match self {
            KvRequest::Get { .. } => "get",
            KvRequest::Gets { .. } => "gets",
            KvRequest::Set { .. } => "set",
            KvRequest::Cas { .. } => "cas",
            KvRequest::Delete { .. } => "delete",
            KvRequest::Scan { .. } => "scan",
        }
    }

    /// The key sharded dispatch routes on (a scan's first expected
    /// key; scans are partitioned per shard before dispatch, so by
    /// then every key in the scan belongs to the target shard).
    pub fn key(&self) -> u64 {
        match self {
            KvRequest::Get { key }
            | KvRequest::Gets { key }
            | KvRequest::Set { key, .. }
            | KvRequest::Cas { key, .. }
            | KvRequest::Delete { key } => *key,
            KvRequest::Scan { keys } => keys[0],
        }
    }

    /// `true` when the request mutates logical state (refused inside
    /// the degraded window, retried with backoff).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            KvRequest::Set { .. } | KvRequest::Cas { .. } | KvRequest::Delete { .. }
        )
    }

    /// Maps one mixed-trace operation onto its service request:
    /// inserts and updates are unconditional `set`s, reads are `get`s,
    /// read-modify-writes are `gets`+`cas` pairs, removes are
    /// `delete`s. The mapping preserves the operation's effect on
    /// logical state, so the mixed trace's oracle models the request
    /// stream verbatim.
    pub fn from_mixed(op: &MixedOp) -> KvRequest {
        match op {
            MixedOp::Insert(o) | MixedOp::Update(o) => KvRequest::Set {
                key: o.key,
                value: o.value.clone(),
            },
            MixedOp::Read(k) => KvRequest::Get { key: *k },
            MixedOp::Rmw(o) => KvRequest::Cas {
                key: o.key,
                value: o.value.clone(),
            },
            MixedOp::Remove(k) => KvRequest::Delete { key: *k },
            MixedOp::Scan { keys } => KvRequest::Scan { keys: keys.clone() },
        }
    }
}

/// The deterministic service trace of a `(load, mix)` pair: the mix's
/// load-phase inserts followed by its seeded operation stream, both as
/// mixed operations (the oracle's input) and as the mapped request
/// stream (the service's input). Index `i` of both vectors describes
/// the same logical operation.
pub fn service_trace(
    load: usize,
    ops: usize,
    value_size: usize,
    seed: u64,
    spec: &MixSpec,
) -> (Vec<MixedOp>, Vec<KvRequest>) {
    let (loaded, mixed) = ycsb_mix(load, ops, value_size, seed, spec);
    let mut all: Vec<MixedOp> = loaded.into_iter().map(MixedOp::Insert).collect();
    all.extend(mixed);
    let reqs = all.iter().map(KvRequest::from_mixed).collect();
    (all, reqs)
}

/// Seeded open-loop arrival schedule: `n` cumulative arrival cycles
/// with inter-arrival gaps uniform in `1..=2 * mean_gap - 1` (mean
/// `mean_gap`), starting at cycle 0. `mean_gap = 0` degenerates to
/// all-at-once arrivals (maximum pressure).
pub fn open_loop_arrivals(n: usize, mean_gap: u64, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x0A11_0A11_0A11_0A11);
    let mut at = 0u64;
    let mut arrivals = Vec::with_capacity(n);
    for _ in 0..n {
        arrivals.push(at);
        at += if mean_gap == 0 {
            0
        } else {
            rng.gen_range(1..2 * mean_gap)
        };
    }
    arrivals
}

/// Round-robin session assignment for request `i` of a shard's stream.
pub fn session_of(i: usize, sessions: usize) -> u32 {
    (i % sessions.max(1)) as u32
}

/// Seeded deterministic client retry policy: capped exponential
/// backoff measured in **simulated cycles**, with per-(request,
/// attempt) jitter derived from the seed alone — two clients with the
/// same seed back off identically, so a retried serve run stays
/// byte-identical across host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry backoff (cycles); also the jitter span.
    pub base_cycles: u64,
    /// Backoff ceiling (cycles) the exponential curve saturates at.
    pub cap_cycles: u64,
    /// Attempts before the client gives a request up for lost.
    pub max_attempts: u32,
    /// Jitter seed (deterministic, not entropy).
    pub seed: u64,
}

impl RetryPolicy {
    /// The default chaos-harness policy: 500-cycle base, 64k-cycle
    /// cap, 32 attempts.
    pub fn new(seed: u64) -> Self {
        RetryPolicy {
            base_cycles: 500,
            cap_cycles: 64_000,
            max_attempts: 32,
            seed,
        }
    }

    /// Backoff before attempt `attempt` (1-based) of request `seq`:
    /// `min(cap, base * 2^(attempt-1))` plus seeded jitter in
    /// `[0, base)`. Attempt 0 (the original send) waits nothing.
    pub fn backoff(&self, seq: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = (attempt - 1).min(20);
        let raw = self
            .base_cycles
            .saturating_mul(1u64 << exp)
            .min(self.cap_cycles);
        let mut state = self.seed
            ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(attempt).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let jitter = splitmix64(&mut state) % self.base_cycles.max(1);
        raw + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crashsweep::StreamingOracle;

    #[test]
    fn trace_maps_one_to_one_and_is_deterministic() {
        let (ops, reqs) = service_trace(20, 80, 16, 7, &MixSpec::YCSB_A);
        assert_eq!(ops.len(), reqs.len());
        assert_eq!(reqs, service_trace(20, 80, 16, 7, &MixSpec::YCSB_A).1);
        for (op, req) in ops.iter().zip(&reqs) {
            match (op, req) {
                (MixedOp::Insert(o), KvRequest::Set { key, value })
                | (MixedOp::Update(o), KvRequest::Set { key, value })
                | (MixedOp::Rmw(o), KvRequest::Cas { key, value }) => {
                    assert_eq!((o.key, &o.value), (*key, value));
                }
                (MixedOp::Read(k), KvRequest::Get { key }) => assert_eq!(k, key),
                (MixedOp::Remove(k), KvRequest::Delete { key }) => assert_eq!(k, key),
                (MixedOp::Scan { keys }, KvRequest::Scan { keys: got }) => assert_eq!(keys, got),
                other => panic!("mismatched mapping: {other:?}"),
            }
        }
    }

    #[test]
    fn oracle_models_the_request_stream() {
        // The whole point of the 1:1 mapping: the streaming oracle
        // over the mixed ops is the ground truth for the requests.
        let (ops, reqs) = service_trace(10, 60, 16, 3, &MixSpec::DELETE_HEAVY);
        let mut oracle = StreamingOracle::new(&ops);
        oracle.advance_to(ops.len());
        // Replay requests against a plain map; must agree with the
        // oracle's final state.
        let mut model = std::collections::BTreeMap::new();
        for req in &reqs {
            match req {
                KvRequest::Set { key, value } | KvRequest::Cas { key, value } => {
                    model.insert(*key, value.clone());
                }
                KvRequest::Delete { key } => {
                    model.remove(key);
                }
                _ => {}
            }
        }
        assert_eq!(model.len(), oracle.len());
        for (k, v) in oracle.iter() {
            assert_eq!(model.get(&k).map(|v| v.as_slice()), Some(v));
        }
    }

    #[test]
    fn arrivals_are_monotone_and_seeded() {
        let a = open_loop_arrivals(100, 50, 9);
        assert_eq!(a, open_loop_arrivals(100, 50, 9));
        assert_ne!(a, open_loop_arrivals(100, 50, 10));
        assert_eq!(a[0], 0);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // Mean gap lands near the nominal value.
        let mean = (a[99] - a[0]) / 99;
        assert!((35..=65).contains(&mean), "mean gap {mean}");
        // Degenerate all-at-once schedule.
        assert!(open_loop_arrivals(5, 0, 1).iter().all(|&t| t == 0));
    }

    #[test]
    fn backoff_is_capped_exponential_and_seeded() {
        let p = RetryPolicy::new(42);
        assert_eq!(p.backoff(7, 0), 0, "original send waits nothing");
        // Deterministic per (seq, attempt).
        assert_eq!(p.backoff(7, 1), p.backoff(7, 1));
        assert_ne!(p.backoff(7, 1), p.backoff(8, 1), "jitter varies by seq");
        assert_ne!(
            RetryPolicy::new(1).backoff(7, 1),
            RetryPolicy::new(2).backoff(7, 1),
            "jitter varies by seed"
        );
        // Exponential below the cap: attempt n is in
        // [base * 2^(n-1), base * 2^(n-1) + base).
        for attempt in 1..6u32 {
            let raw = p.base_cycles << (attempt - 1);
            let b = p.backoff(3, attempt);
            assert!(
                b >= raw && b < raw + p.base_cycles,
                "attempt {attempt}: {b}"
            );
        }
        // Saturates at the cap (+ jitter) and never overflows.
        assert!(p.backoff(3, 30) <= p.cap_cycles + p.base_cycles);
        assert!(p.backoff(3, u32::MAX) <= p.cap_cycles + p.base_cycles);
    }

    #[test]
    fn write_requests_are_classified() {
        assert!(KvRequest::Set {
            key: 1,
            value: vec![]
        }
        .is_write());
        assert!(KvRequest::Cas {
            key: 1,
            value: vec![]
        }
        .is_write());
        assert!(KvRequest::Delete { key: 1 }.is_write());
        assert!(!KvRequest::Get { key: 1 }.is_write());
        assert!(!KvRequest::Gets { key: 1 }.is_write());
        assert!(!KvRequest::Scan { keys: vec![1] }.is_write());
    }

    #[test]
    fn sessions_round_robin() {
        assert_eq!(session_of(0, 4), 0);
        assert_eq!(session_of(5, 4), 1);
        assert_eq!(session_of(7, 1), 0);
        assert_eq!(session_of(3, 0), 0);
    }
}
