//! Execution context: machine + persistent heap + annotation table.
//!
//! [`PmContext`] is what the workloads program against. It wraps the
//! simulated [`Machine`], a [`PmHeap`] carved out of the device's
//! address space, and the active [`AnnotationTable`]. Stores are issued
//! through *site*-tagged helpers: the site is looked up in the table
//! and lowered to the corresponding `store`/`storeT` flavour, exactly
//! as compiled code would execute the rewritten instruction stream.
//!
//! Frees inside a transaction are *deferred to commit* (as PMDK's
//! `pmemobj_tx_free` does): the memory of a region freed by an
//! uncommitted transaction may be needed for recovery, so it must not
//! be reused before the transaction is durable.

use slpmt_annotate::{Annotation, AnnotationTable, SiteId, TxnIr};
use slpmt_core::{Machine, MachineConfig, SchemeKind, StoreKind};
use slpmt_pmem::{PmAddr, PmHeap};
use slpmt_ptm::SoftState;

/// Where a run's `storeT` annotations come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnnotationSource {
    /// Hand-written annotations (the kernel-benchmark default, §VI-A).
    #[default]
    Manual,
    /// Annotations produced by the `slpmt-annotate` compiler pass over
    /// the structure's IR description.
    Compiler,
    /// No annotations: every store is a plain `store`.
    None,
}

impl AnnotationSource {
    /// Resolves this source into a concrete table for a structure with
    /// the given manual table and IR description.
    pub fn resolve(self, manual: &AnnotationTable, ir: &TxnIr) -> AnnotationTable {
        match self {
            AnnotationSource::Manual => manual.clone(),
            AnnotationSource::Compiler => slpmt_annotate::analyze(ir).0,
            AnnotationSource::None => AnnotationTable::new(),
        }
    }
}

fn lower(a: Annotation) -> StoreKind {
    match a {
        Annotation::Plain => StoreKind::Store,
        Annotation::LogFree => StoreKind::log_free(),
        Annotation::Lazy => StoreKind::lazy_logged(),
        Annotation::LazyLogFree => StoreKind::lazy_log_free(),
    }
}

/// The workload execution context.
#[derive(Debug, Clone)]
pub struct PmContext {
    machine: Machine,
    heap: PmHeap,
    table: AnnotationTable,
    pending_frees: Vec<PmAddr>,
    /// Software persistent-transaction runtime, present when the
    /// configuration simulates a [`SchemeKind::Software`] flavour.
    /// All transactional traffic then routes through its explicit
    /// store/flush/fence protocol instead of the hardware engine.
    soft: Option<SoftState>,
    /// Logical payload bytes the workload asked to store (the WAF
    /// denominator), independent of how the scheme persisted them.
    logical_bytes: u64,
}

/// Heap base: the low region is reserved for structure roots created
/// at setup time.
const HEAP_BASE: u64 = 0x1000;

impl PmContext {
    /// Builds a context simulating a hardware scheme or software PTM
    /// flavour with the given annotation table already resolved.
    pub fn new(kind: impl Into<SchemeKind>, table: AnnotationTable) -> Self {
        Self::with_config(MachineConfig::for_kind(kind), table)
    }

    /// Builds a context from an explicit machine configuration.
    pub fn with_config(cfg: MachineConfig, table: AnnotationTable) -> Self {
        let capacity = cfg.pm.pm_capacity;
        let software = cfg.software;
        let mut machine = Machine::new(cfg);
        let soft = software.map(|f| SoftState::new(f, &mut machine));
        // Software flavours reserve the top of the device for their
        // log arena; the heap must never allocate into it.
        let heap_top = match soft {
            Some(_) => capacity - slpmt_ptm::ARENA_BYTES,
            None => capacity,
        };
        PmContext {
            machine,
            heap: PmHeap::new(PmAddr::new(HEAP_BASE), heap_top - HEAP_BASE),
            table,
            pending_frees: Vec::new(),
            soft,
            logical_bytes: 0,
        }
    }

    /// Sizes the heap arena up front: pre-faults the durable image's
    /// backing pages for the first `bytes` bytes of the heap (clamped
    /// to capacity), so a run's host-side page allocations happen here
    /// instead of lazily inside the measured loop — and, for parallel
    /// sharded runs, outside the phase where every shard allocates
    /// concurrently. Simulation-invisible: no cycles, no state change.
    pub fn prefault_heap(&mut self, bytes: u64) {
        self.machine.prefault_image(PmAddr::new(HEAP_BASE), bytes);
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine (timing sweeps, crash injection).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The scheme kind this context simulates.
    pub fn scheme_kind(&self) -> SchemeKind {
        self.machine.config().kind()
    }

    /// The software PTM runtime, when one is active.
    pub fn soft(&self) -> Option<&SoftState> {
        self.soft.as_ref()
    }

    /// Logical payload bytes stored so far (the write-amplification
    /// denominator): 8 per word store, `len` per byte-buffer store.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Sequence number of the last transaction begun — hardware txn
    /// register or the software runtime's counter.
    pub fn txn_seq(&self) -> u64 {
        match &self.soft {
            Some(s) => s.txn_seq(),
            None => self.machine.txn_seq(),
        }
    }

    /// Highest durably committed transaction sequence number readable
    /// from the persistent image alone (the crash-sweep oracle marker):
    /// hardware commit markers in the log region, or the software
    /// arena's header/marker/commit-record resolution.
    pub fn durable_commit_seq(&self) -> u64 {
        match &self.soft {
            Some(s) => s.durable_commit_seq(&self.machine),
            None => self.machine.device().log().max_committed_seq(),
        }
    }

    /// The persistent heap.
    pub fn heap(&self) -> &PmHeap {
        &self.heap
    }

    /// Replaces the active annotation table.
    pub fn set_table(&mut self, table: AnnotationTable) {
        self.table = table;
    }

    /// The `storeT` flavour site `site` executes under the active
    /// table.
    pub fn kind_of(&self, site: SiteId) -> StoreKind {
        lower(self.table.get(site))
    }

    // ------------------------------------------------------------------
    // Transactions

    /// Opens a durable transaction.
    pub fn tx_begin(&mut self) {
        match self.soft.as_mut() {
            Some(s) => s.tx_begin(&mut self.machine),
            None => self.machine.tx_begin(),
        }
    }

    /// Commits the open transaction and applies deferred frees.
    ///
    /// Deferred frees apply only when the commit actually reached the
    /// persistence domain: after an armed crash trips, the commit
    /// record (like every later durable mutation) was dropped, the
    /// transaction will be rolled back by recovery, and the rolled-back
    /// structure may still reference the cells it freed — applying the
    /// frees would let a post-recovery allocation alias a live cell.
    /// Such frees are dropped with the rest of the volatile state.
    pub fn tx_commit(&mut self) {
        match self.soft.as_mut() {
            Some(s) => s.tx_commit(&mut self.machine),
            None => self.machine.tx_commit(),
        }
        if self.machine.crash_tripped() {
            self.pending_frees.clear();
        } else {
            for addr in self.pending_frees.drain(..) {
                self.heap.free(addr);
            }
        }
    }

    /// Aborts the open transaction, dropping deferred frees.
    pub fn tx_abort(&mut self) {
        match self.soft.as_mut() {
            Some(s) => s.tx_abort(&mut self.machine),
            None => self.machine.tx_abort(),
        }
        self.pending_frees.clear();
    }

    // ------------------------------------------------------------------
    // Memory

    /// Allocates `bytes` of persistent memory (timed as allocator
    /// work).
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> PmAddr {
        self.machine.compute(40); // allocator bookkeeping
        self.heap
            .alloc(bytes)
            .unwrap_or_else(|| panic!("persistent heap exhausted allocating {bytes} B"))
    }

    /// Frees `addr`. Inside a transaction the free is deferred to
    /// commit; outside it applies immediately.
    pub fn free(&mut self, addr: PmAddr) {
        self.machine.compute(20);
        if self.in_txn() {
            self.pending_frees.push(addr);
        } else {
            self.heap.free(addr);
        }
    }

    /// `true` while a transaction (hardware or software) is open.
    pub fn in_txn(&self) -> bool {
        match &self.soft {
            Some(s) => s.in_txn(),
            None => self.machine.in_txn(),
        }
    }

    // ------------------------------------------------------------------
    // Timed accesses

    /// Loads the word at `addr`.
    pub fn load(&mut self, addr: PmAddr) -> u64 {
        match self.soft.as_mut() {
            Some(s) => s.load(&mut self.machine, addr),
            None => self.machine.load_u64(addr),
        }
    }

    /// Stores `value` at `addr` through site `site`'s annotation.
    /// Software flavours log every store regardless of annotation —
    /// they have no `storeT` ISA to act on the hints.
    pub fn store(&mut self, addr: PmAddr, value: u64, site: SiteId) {
        self.logical_bytes += 8;
        let kind = self.kind_of(site);
        match self.soft.as_mut() {
            Some(s) => s.store(&mut self.machine, addr, value),
            None => self.machine.store_u64(addr, value, kind),
        }
    }

    /// Stores a byte buffer word-by-word through site `site`.
    pub fn store_bytes(&mut self, addr: PmAddr, data: &[u8], site: SiteId) {
        self.logical_bytes += data.len() as u64;
        let kind = self.kind_of(site);
        match self.soft.as_mut() {
            Some(s) => s.store_bytes(&mut self.machine, addr, data),
            None => self.machine.store_bytes(addr, data, kind),
        }
    }

    /// Loads `buf.len()` bytes word-by-word (timed).
    pub fn load_bytes(&mut self, addr: PmAddr, buf: &mut [u8]) {
        match self.soft.as_mut() {
            Some(s) => s.load_bytes(&mut self.machine, addr, buf),
            None => self.machine.load_bytes(addr, buf),
        }
    }

    /// Charges pure compute cycles (hashing, comparisons, …).
    pub fn compute(&mut self, cycles: u64) {
        self.machine.compute(cycles);
    }

    /// Forces every outstanding lazily-persistent transaction durable
    /// (the §III-C4 empty-transaction idiom). Structures use it to
    /// close a re-execution recovery window before an operation that
    /// would invalidate it.
    pub fn drain_lazy(&mut self) {
        self.machine.drain_lazy();
    }

    // ------------------------------------------------------------------
    // Untimed access (invariant checkers, recovery)

    /// Reads the current logical word at `addr` without timing. Under
    /// a redo-family software flavour the open transaction's overlay
    /// is part of the logical state.
    pub fn peek(&self, addr: PmAddr) -> u64 {
        match &self.soft {
            Some(s) => s.peek(&self.machine, addr),
            None => self.machine.peek_u64(addr),
        }
    }

    /// Reads logical bytes without timing.
    pub fn peek_bytes(&self, addr: PmAddr, buf: &mut [u8]) {
        match &self.soft {
            Some(s) => s.peek_bytes(&self.machine, addr, buf),
            None => self.machine.peek_bytes(addr, buf),
        }
    }

    /// Recovery-time write: directly repairs the persistent image.
    /// Only meaningful after a crash (caches empty).
    pub fn recovery_write(&mut self, addr: PmAddr, value: u64) {
        self.machine.setup_write(addr, &value.to_le_bytes());
    }

    /// Recovery-time byte write.
    pub fn recovery_write_bytes(&mut self, addr: PmAddr, data: &[u8]) {
        self.machine.setup_write(addr, data);
    }

    /// Out-of-band setup allocation + initialisation: allocates and
    /// zero-fills without timing (used when building a structure's
    /// root before measurement starts).
    pub fn setup_alloc(&mut self, bytes: u64) -> PmAddr {
        let addr = self
            .heap
            .alloc(bytes)
            .unwrap_or_else(|| panic!("persistent heap exhausted allocating {bytes} B"));
        self.machine.setup_write(addr, &vec![0u8; bytes as usize]);
        addr
    }

    // ------------------------------------------------------------------
    // Crash & recovery plumbing

    /// Simulates a power failure and replays the undo log. The caller
    /// must then run the structure's own recovery and
    /// [`gc`](Self::gc) the heap.
    pub fn crash_and_recover(&mut self) -> slpmt_core::RecoveryReport {
        self.crash();
        self.recover()
    }

    /// Simulates the power failure alone: volatile state (including
    /// deferred frees) is lost, the durable image and log survive.
    /// Lets a caller inspect the surviving durable state (e.g. which
    /// commit markers made it) before log replay runs.
    pub fn crash(&mut self) {
        self.machine.crash();
        if let Some(s) = self.soft.as_mut() {
            s.on_crash();
        }
        self.pending_frees.clear();
    }

    /// Replays the log after [`crash`](Self::crash). The caller must
    /// then run the structure's own recovery and [`gc`](Self::gc) the
    /// heap.
    pub fn recover(&mut self) -> slpmt_core::RecoveryReport {
        match self.soft.as_mut() {
            Some(s) => s.recover(&mut self.machine),
            None => self.machine.recover(),
        }
    }

    /// Garbage-collects the heap: only allocations in `reachable`
    /// survive. Returns the number of leaked allocations reclaimed.
    pub fn gc(&mut self, reachable: &[PmAddr]) -> usize {
        self.heap.rebuild(reachable)
    }

    // ------------------------------------------------------------------
    // Event tracing

    /// Turns on event tracing on the underlying machine (per-core ring
    /// capacity `capacity_per_core`); see `slpmt_core::Machine`.
    pub fn enable_tracing(&mut self, capacity_per_core: usize) -> slpmt_core::TraceHandle {
        self.machine.enable_tracing(capacity_per_core)
    }

    /// Drains every captured trace record in deterministic order.
    pub fn take_trace(&mut self) -> Vec<slpmt_core::TraceRecord> {
        self.machine.take_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_annotate::TxnIrBuilder;
    use slpmt_core::Scheme;

    fn ctx() -> PmContext {
        PmContext::new(Scheme::Slpmt, AnnotationTable::new())
    }

    #[test]
    fn annotation_lowering() {
        assert_eq!(lower(Annotation::Plain), StoreKind::Store);
        assert_eq!(lower(Annotation::LogFree), StoreKind::log_free());
        assert_eq!(lower(Annotation::Lazy), StoreKind::lazy_logged());
        assert_eq!(lower(Annotation::LazyLogFree), StoreKind::lazy_log_free());
    }

    #[test]
    fn store_respects_table() {
        let mut table = AnnotationTable::new();
        table.set(SiteId(0), Annotation::LogFree);
        let mut c = PmContext::new(Scheme::Slpmt, table);
        let a = c.alloc(64);
        c.tx_begin();
        c.store(a, 1, SiteId(0)); // log-free: no record
        c.store(a.add(8), 2, SiteId(1)); // plain: record
        c.tx_commit();
        assert_eq!(c.machine().stats().log_records_created, 1);
    }

    #[test]
    fn deferred_free_applies_at_commit() {
        let mut c = ctx();
        let a = c.alloc(64);
        c.tx_begin();
        c.free(a);
        assert!(c.heap().is_live(a), "free deferred");
        c.tx_commit();
        assert!(!c.heap().is_live(a));
    }

    #[test]
    fn abort_drops_deferred_frees() {
        let mut c = ctx();
        let a = c.alloc(64);
        c.tx_begin();
        c.free(a);
        c.tx_abort();
        assert!(c.heap().is_live(a), "freed region survives abort");
    }

    #[test]
    fn source_resolution() {
        let mut manual = AnnotationTable::new();
        manual.set(SiteId(0), Annotation::Lazy);
        let mut b = TxnIrBuilder::new("t");
        let n = b.alloc();
        b.store(n, 0, slpmt_annotate::Operand::Const(1));
        let ir = b.build();
        assert_eq!(
            AnnotationSource::Manual
                .resolve(&manual, &ir)
                .get(SiteId(0)),
            Annotation::Lazy
        );
        assert_eq!(
            AnnotationSource::Compiler
                .resolve(&manual, &ir)
                .get(SiteId(0)),
            Annotation::LogFree
        );
        assert_eq!(
            AnnotationSource::None.resolve(&manual, &ir).get(SiteId(0)),
            Annotation::Plain
        );
    }

    #[test]
    fn gc_reclaims_unreachable() {
        let mut c = ctx();
        let keep = c.alloc(32);
        let _leak = c.alloc(32);
        assert_eq!(c.gc(&[keep]), 1);
        assert!(c.heap().is_live(keep));
    }

    #[test]
    fn setup_alloc_zeroes() {
        let mut c = ctx();
        let a = c.setup_alloc(128);
        assert_eq!(c.peek(a), 0);
        assert_eq!(c.peek(a.add(120)), 0);
    }
}
