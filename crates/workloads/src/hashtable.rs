//! Chained hash table with load-factor-3 resizing (Table II).
//!
//! The STAMP-derived kernel: a chained hash table that resizes when
//! buckets average three records. Inserts push at the front of a
//! bucket chain; the resize *moves* every record into a freshly
//! allocated node block — the data-movement pattern §VI-D1 highlights:
//! the copies are `storeT(lazy, log-free)` because the old table is
//! neither deleted nor overwritten inside the transaction, so a crash
//! that loses the deferred copies is repaired by re-executing the
//! rehash from the (durable) old generation.
//!
//! ### Persistent layout
//!
//! ```text
//! root:  [0]=buckets  [1]=nbuckets  [2]=size
//!        [3]=old_buckets [4]=old_nbuckets (previous generation, kept
//!            for rehash re-execution) [5]=block [6]=block_count
//! node:  [0]=key [1]=next [2]=value-blob pointer
//! blob:  value bytes
//! ```
//!
//! Nodes created by a resize live densely inside one `block`
//! allocation at deterministic offsets, so recovery can re-derive
//! every copied node's address from the durable `block` pointer and
//! the old generation's iteration order.

use crate::ctx::{AnnotationSource, PmContext};
use crate::runner::DurableIndex;
use slpmt_annotate::{Annotation, AnnotationTable, Operand, ParamKind, TxnIr, TxnIrBuilder};
use slpmt_pmem::PmAddr;
use std::collections::BTreeSet;

/// Store sites of the insert (and embedded resize) transaction.
pub mod sites {
    use slpmt_annotate::SiteId;
    /// New node's key field.
    pub const NODE_KEY: SiteId = SiteId(0);
    /// New node's next pointer.
    pub const NODE_NEXT: SiteId = SiteId(1);
    /// New node's value payload.
    pub const NODE_VALUE: SiteId = SiteId(2);
    /// Bucket-array head update (publishes the new node).
    pub const BUCKET_HEAD: SiteId = SiteId(3);
    /// Root size counter.
    pub const SIZE: SiteId = SiteId(4);
    /// New bucket-array entry written during resize.
    pub const RS_ARRAY: SiteId = SiteId(5);
    /// Moved node's key (resize copy).
    pub const RS_COPY_KEY: SiteId = SiteId(6);
    /// Moved node's next pointer (resize copy).
    pub const RS_COPY_NEXT: SiteId = SiteId(7);
    /// Moved node's value payload (resize copy).
    pub const RS_COPY_VALUE: SiteId = SiteId(8);
    /// Root bucket-array pointer switch.
    pub const RS_ROOT_BUCKETS: SiteId = SiteId(9);
    /// Root bucket-count switch.
    pub const RS_ROOT_NB: SiteId = SiteId(10);
    /// Root old-generation array pointer.
    pub const RS_OLD_BUCKETS: SiteId = SiteId(11);
    /// Root old-generation bucket count.
    pub const RS_OLD_NB: SiteId = SiteId(12);
    /// Root node-block pointer.
    pub const RS_BLOCK: SiteId = SiteId(13);
    /// Root node-block population count.
    pub const RS_BLOCK_COUNT: SiteId = SiteId(14);
    /// New node's value-blob pointer.
    pub const NODE_VPTR: SiteId = SiteId(15);
    /// Unlink store on removal (predecessor's next or bucket head).
    pub const RM_UNLINK: SiteId = SiteId(16);
    /// Poison store into the node being freed (Pattern 1, free case).
    pub const RM_POISON: SiteId = SiteId(17);
    /// Value-pointer swap on update (copy-on-write blob replace).
    pub const UPD_VPTR: SiteId = SiteId(18);
}

const INITIAL_BUCKETS: u64 = 8;
const LOAD_FACTOR: u64 = 3;
const HASH_COST: u64 = 12;
const CMP_COST_RM: u64 = 5;

fn fld(base: PmAddr, i: u64) -> PmAddr {
    base.add(i * 8)
}

fn hash(key: u64, nbuckets: u64) -> u64 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % nbuckets
}

/// The durable chained hash table.
#[derive(Debug, Clone)]
pub struct Hashtable {
    root: PmAddr,
    value_bytes: u64,
}

impl Hashtable {
    /// Hand-written annotations (§VI-A): new-node and new-array stores
    /// are log-free; resize copies are lazy log-free (data movement);
    /// the size counter is lazily persistent (recountable).
    pub fn manual_table() -> AnnotationTable {
        use sites::*;
        [
            (NODE_KEY, Annotation::LogFree),
            (NODE_NEXT, Annotation::LogFree),
            (NODE_VALUE, Annotation::LogFree),
            (NODE_VPTR, Annotation::LogFree),
            (RS_ARRAY, Annotation::LogFree),
            (RS_COPY_KEY, Annotation::LazyLogFree),
            (RS_COPY_NEXT, Annotation::LazyLogFree),
            (RS_COPY_VALUE, Annotation::LazyLogFree),
            (RM_POISON, Annotation::LazyLogFree),
        ]
        .into_iter()
        .collect()
    }

    /// IR description of the insert-with-resize transaction for the
    /// compiler pass. The resize loop is represented by one iteration;
    /// the load-factor bookkeeping is opaque (the compiler cannot see
    /// that `size` is recountable), so the compiler misses the counter
    /// — the Figure 13 gap.
    pub fn ir() -> TxnIr {
        use sites::*;
        let mut b = TxnIrBuilder::new("hashtable-insert");
        let root = b.param(ParamKind::PersistentPtr);
        let key = b.param(ParamKind::Key);
        let val = b.param(ParamKind::Value);
        let buckets = b.load(root, 0);
        let n = b.load(root, 1);
        let h = b.compute(vec![Operand::Value(key), Operand::Value(n)]);
        let slot = b.compute(vec![Operand::Value(buckets), Operand::Value(h)]);
        let head = b.load(slot, 0);
        let blob = b.alloc();
        b.store_at(NODE_VALUE, blob, 0, Operand::Value(val));
        let node = b.alloc();
        b.store_at(NODE_KEY, node, 0, Operand::Value(key));
        b.store_at(NODE_NEXT, node, 1, Operand::Value(head));
        b.store_at(NODE_VPTR, node, 2, Operand::Value(blob));
        b.store_at(BUCKET_HEAD, slot, 0, Operand::Value(node));
        let size = b.load(root, 2);
        let size2 = b.compute_opaque(vec![Operand::Value(size)]);
        b.store_at(SIZE, root, 2, Operand::Value(size2));
        // Resize portion (one representative moved node).
        let newarr = b.alloc();
        let block = b.alloc();
        let onode = b.load(slot, 0); // a node of the old generation
        let ok = b.load(onode, 0);
        let ov = b.load(onode, 2);
        let bn = b.compute(vec![Operand::Value(block), Operand::Const(0)]);
        let nh = b.compute(vec![Operand::Value(ok), Operand::Const(2)]);
        let nslot = b.compute(vec![Operand::Value(newarr), Operand::Value(nh)]);
        let nhead = b.load(nslot, 0);
        b.store_at(RS_COPY_KEY, bn, 0, Operand::Value(ok));
        b.store_at(RS_COPY_NEXT, bn, 1, Operand::Value(nhead));
        b.store_at(RS_COPY_VALUE, bn, 2, Operand::Value(ov));
        b.store_at(RS_ARRAY, nslot, 1, Operand::Value(bn));
        b.store_at(RS_ROOT_BUCKETS, root, 3, Operand::Value(newarr));
        b.store_at(RS_ROOT_NB, root, 4, Operand::Const(16));
        b.store_at(RS_OLD_BUCKETS, root, 5, Operand::Value(buckets));
        b.store_at(RS_OLD_NB, root, 6, Operand::Value(n));
        b.store_at(RS_BLOCK, root, 7, Operand::Value(block));
        b.store_at(RS_BLOCK_COUNT, root, 8, Operand::Value(size2));
        b.build()
    }

    /// Builds an empty table (setup is untimed) and installs the
    /// resolved annotation table into `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `value_size` is not a multiple of 8.
    pub fn new(ctx: &mut PmContext, value_size: usize, source: AnnotationSource) -> Self {
        assert!(
            value_size.is_multiple_of(8),
            "value size must be whole words"
        );
        ctx.set_table(source.resolve(&Self::manual_table(), &Self::ir()));
        let root = ctx.setup_alloc(9 * 8);
        let buckets = ctx.setup_alloc(INITIAL_BUCKETS * 8);
        ctx.recovery_write(fld(root, 0), buckets.raw());
        ctx.recovery_write(fld(root, 1), INITIAL_BUCKETS);
        Hashtable {
            root,
            value_bytes: value_size as u64,
        }
    }

    fn node_bytes(&self) -> u64 {
        3 * 8
    }

    fn resize(&self, ctx: &mut PmContext, old_buckets: PmAddr, old_n: u64, size: u64) {
        use sites::*;
        let new_n = old_n * 2;
        let new_arr = ctx.alloc(new_n * 8);
        let block = ctx.alloc(size * self.node_bytes());
        // Compute the new chains while copying nodes into the block at
        // deterministic offsets (old-generation iteration order).
        let mut heads = vec![0u64; new_n as usize];
        let mut bi = 0u64;
        for bkt in 0..old_n {
            let mut cur = ctx.load(fld(old_buckets, bkt));
            while cur != 0 {
                let node = PmAddr::new(cur);
                let k = ctx.load(fld(node, 0));
                let next = ctx.load(fld(node, 1));
                let vptr = ctx.load(fld(node, 2));
                ctx.compute(HASH_COST);
                let nh = hash(k, new_n) as usize;
                let copy = block.add(bi * self.node_bytes());
                bi += 1;
                ctx.store(fld(copy, 0), k, RS_COPY_KEY);
                ctx.store(fld(copy, 1), heads[nh], RS_COPY_NEXT);
                ctx.store(fld(copy, 2), vptr, RS_COPY_VALUE);
                heads[nh] = copy.raw();
                cur = next;
            }
        }
        for (i, &head) in heads.iter().enumerate() {
            ctx.store(fld(new_arr, i as u64), head, RS_ARRAY);
        }
        let root = self.root;
        ctx.store(fld(root, 3), old_buckets.raw(), RS_OLD_BUCKETS);
        ctx.store(fld(root, 4), old_n, RS_OLD_NB);
        ctx.store(fld(root, 5), block.raw(), RS_BLOCK);
        ctx.store(fld(root, 6), bi, RS_BLOCK_COUNT);
        ctx.store(fld(root, 0), new_arr.raw(), RS_ROOT_BUCKETS);
        ctx.store(fld(root, 1), new_n, RS_ROOT_NB);
    }

    /// Walks one generation's chains, calling `f` on each node address.
    fn walk(&self, ctx: &PmContext, buckets: PmAddr, n: u64, mut f: impl FnMut(PmAddr)) {
        for bkt in 0..n {
            let mut cur = ctx.peek(fld(buckets, bkt));
            let mut guard = 0;
            while cur != 0 {
                f(PmAddr::new(cur));
                cur = ctx.peek(fld(PmAddr::new(cur), 1));
                guard += 1;
                assert!(guard < 1_000_000, "cycle in hashtable chain");
            }
        }
    }
}

impl DurableIndex for Hashtable {
    fn name(&self) -> &'static str {
        "hashtable"
    }

    fn insert(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) {
        use sites::*;
        assert_eq!(
            value.len() as u64,
            self.value_bytes,
            "value size fixed at creation"
        );
        ctx.tx_begin();
        let root = self.root;
        let buckets = PmAddr::new(ctx.load(fld(root, 0)));
        let n = ctx.load(fld(root, 1));
        ctx.compute(HASH_COST);
        let slot = fld(buckets, hash(key, n));
        let head = ctx.load(slot);
        let blob = ctx.alloc(self.value_bytes);
        ctx.store_bytes(blob, value, NODE_VALUE);
        let node = ctx.alloc(self.node_bytes());
        ctx.store(fld(node, 0), key, NODE_KEY);
        ctx.store(fld(node, 1), head, NODE_NEXT);
        ctx.store(fld(node, 2), blob.raw(), NODE_VPTR);
        ctx.store(slot, node.raw(), BUCKET_HEAD);
        let size = ctx.load(fld(root, 2)) + 1;
        ctx.store(fld(root, 2), size, SIZE);
        if size > LOAD_FACTOR * n {
            self.resize(ctx, buckets, n, size);
        }
        ctx.tx_commit();
    }

    fn remove(&mut self, ctx: &mut PmContext, key: u64) -> bool {
        use sites::*;
        // A removal may rewrite chain links inside the resize block,
        // which the rehash re-execution recovery would clobber: close
        // the redo window first (force the moved data durable, then
        // retire the old generation).
        if ctx.peek(fld(self.root, 3)) != 0 {
            ctx.drain_lazy();
            ctx.tx_begin();
            ctx.store(fld(self.root, 3), 0, RS_OLD_BUCKETS);
            ctx.store(fld(self.root, 4), 0, RS_OLD_NB);
            ctx.tx_commit();
        }
        ctx.tx_begin();
        let buckets = PmAddr::new(ctx.load(fld(self.root, 0)));
        let n = ctx.load(fld(self.root, 1));
        ctx.compute(HASH_COST);
        let slot = fld(buckets, hash(key, n));
        let mut prev: Option<PmAddr> = None;
        let mut cur = ctx.load(slot);
        while cur != 0 {
            let node = PmAddr::new(cur);
            ctx.compute(CMP_COST_RM);
            if ctx.load(fld(node, 0)) == key {
                let next = ctx.load(fld(node, 1));
                match prev {
                    Some(p) => ctx.store(fld(p, 1), next, RM_UNLINK),
                    None => ctx.store(slot, next, RM_UNLINK),
                }
                // Poison the dying node: a store into a region the
                // transaction frees needs neither log nor persistence.
                let blob = ctx.load(fld(node, 2));
                ctx.store(fld(node, 2), 0, RM_POISON);
                ctx.free(PmAddr::new(blob));
                // Resize-block residents are not separate allocations
                // (careful: the block's slot 0 shares the block's own
                // start address); only free an allocation that is
                // exactly one node.
                if ctx.heap().allocation_size(node) == Some(self.node_bytes()) {
                    ctx.free(node);
                }
                let size = ctx.load(fld(self.root, 2)) - 1;
                ctx.store(fld(self.root, 2), size, SIZE);
                ctx.tx_commit();
                return true;
            }
            prev = Some(node);
            cur = ctx.load(fld(node, 1));
        }
        ctx.tx_commit();
        false
    }

    fn update(&mut self, ctx: &mut PmContext, key: u64, value: &[u8]) -> bool {
        use sites::*;
        assert_eq!(value.len() as u64, self.value_bytes);
        // Like removal, an update rewrites a moved node's value-blob
        // pointer inside the resize block; the rehash re-execution
        // recovery would clobber it back to the retired blob. Close
        // the redo window first.
        if ctx.peek(fld(self.root, 3)) != 0 {
            ctx.drain_lazy();
            ctx.tx_begin();
            ctx.store(fld(self.root, 3), 0, RS_OLD_BUCKETS);
            ctx.store(fld(self.root, 4), 0, RS_OLD_NB);
            ctx.tx_commit();
        }
        ctx.tx_begin();
        let buckets = PmAddr::new(ctx.load(fld(self.root, 0)));
        let n = ctx.load(fld(self.root, 1));
        ctx.compute(HASH_COST);
        let mut cur = ctx.load(fld(buckets, hash(key, n)));
        while cur != 0 {
            let node = PmAddr::new(cur);
            ctx.compute(CMP_COST_RM);
            if ctx.load(fld(node, 0)) == key {
                // Copy-on-write: fresh blob (log-free), logged pointer
                // swap, retire the old blob.
                let old = ctx.load(fld(node, 2));
                let blob = ctx.alloc(self.value_bytes);
                ctx.store_bytes(blob, value, NODE_VALUE);
                ctx.store(fld(node, 2), blob.raw(), UPD_VPTR);
                ctx.free(PmAddr::new(old));
                ctx.tx_commit();
                return true;
            }
            cur = ctx.load(fld(node, 1));
        }
        ctx.tx_commit();
        false
    }

    fn get(&mut self, ctx: &mut PmContext, key: u64) -> Option<Vec<u8>> {
        let buckets = PmAddr::new(ctx.load(fld(self.root, 0)));
        let n = ctx.load(fld(self.root, 1));
        ctx.compute(HASH_COST);
        let mut cur = ctx.load(fld(buckets, hash(key, n)));
        while cur != 0 {
            let node = PmAddr::new(cur);
            ctx.compute(CMP_COST_RM);
            if ctx.load(fld(node, 0)) == key {
                let blob = PmAddr::new(ctx.load(fld(node, 2)));
                let mut val = vec![0u8; self.value_bytes as usize];
                ctx.load_bytes(blob, &mut val);
                return Some(val);
            }
            cur = ctx.load(fld(node, 1));
        }
        None
    }

    fn contains(&self, ctx: &PmContext, key: u64) -> bool {
        self.value_of(ctx, key).is_some()
    }

    fn value_of(&self, ctx: &PmContext, key: u64) -> Option<Vec<u8>> {
        let buckets = PmAddr::new(ctx.peek(fld(self.root, 0)));
        let n = ctx.peek(fld(self.root, 1));
        let mut cur = ctx.peek(fld(buckets, hash(key, n)));
        while cur != 0 {
            let node = PmAddr::new(cur);
            if ctx.peek(fld(node, 0)) == key {
                let blob = PmAddr::new(ctx.peek(fld(node, 2)));
                let mut val = vec![0u8; self.value_bytes as usize];
                ctx.peek_bytes(blob, &mut val);
                return Some(val);
            }
            cur = ctx.peek(fld(node, 1));
        }
        None
    }

    fn len(&self, ctx: &PmContext) -> usize {
        let buckets = PmAddr::new(ctx.peek(fld(self.root, 0)));
        let n = ctx.peek(fld(self.root, 1));
        let mut count = 0;
        self.walk(ctx, buckets, n, |_| count += 1);
        count
    }

    fn check_invariants(&self, ctx: &PmContext) -> Result<(), String> {
        let buckets = PmAddr::new(ctx.peek(fld(self.root, 0)));
        let n = ctx.peek(fld(self.root, 1));
        if n == 0 || buckets.raw() == 0 {
            return Err("root not initialised".into());
        }
        let mut seen = BTreeSet::new();
        for bkt in 0..n {
            let mut cur = ctx.peek(fld(buckets, bkt));
            while cur != 0 {
                if !seen.insert(cur) {
                    return Err(format!("node {cur:#x} appears twice (cycle or cross-link)"));
                }
                let node = PmAddr::new(cur);
                let key = ctx.peek(fld(node, 0));
                if hash(key, n) != bkt {
                    return Err(format!("key {key} in wrong bucket {bkt}"));
                }
                cur = ctx.peek(fld(node, 1));
            }
        }
        let size = ctx.peek(fld(self.root, 2));
        if size as usize != seen.len() {
            return Err(format!("size counter {size} != node count {}", seen.len()));
        }
        Ok(())
    }

    fn reachable(&self, ctx: &PmContext) -> Vec<PmAddr> {
        let mut out = vec![self.root];
        let buckets = PmAddr::new(ctx.peek(fld(self.root, 0)));
        let n = ctx.peek(fld(self.root, 1));
        out.push(buckets);
        self.walk(ctx, buckets, n, |node| {
            out.push(node);
            out.push(PmAddr::new(ctx.peek(fld(node, 2))));
        });
        let block = ctx.peek(fld(self.root, 5));
        if block != 0 {
            out.push(PmAddr::new(block));
        }
        let old = ctx.peek(fld(self.root, 3));
        if old != 0 {
            let old_n = ctx.peek(fld(self.root, 4));
            out.push(PmAddr::new(old));
            self.walk(ctx, PmAddr::new(old), old_n, |node| out.push(node));
        }
        out
    }

    fn recover(&mut self, ctx: &mut PmContext) {
        let root = self.root;
        let old = ctx.peek(fld(root, 3));
        if old != 0 {
            // Re-execute the rehash from the durable old generation:
            // identical iteration order reproduces every block offset
            // and chain, so the writes are idempotent repairs of any
            // lazily-lost copy.
            let old_buckets = PmAddr::new(old);
            let old_n = ctx.peek(fld(root, 4));
            let block = PmAddr::new(ctx.peek(fld(root, 5)));
            let new_arr = PmAddr::new(ctx.peek(fld(root, 0)));
            let new_n = ctx.peek(fld(root, 1));
            let mut heads = vec![0u64; new_n as usize];
            let mut bi = 0u64;
            let mut copies: Vec<(PmAddr, u64, u64, u64)> = Vec::new();
            self.walk(ctx, old_buckets, old_n, |node| {
                let k = ctx.peek(fld(node, 0));
                let vptr = ctx.peek(fld(node, 2));
                let nh = hash(k, new_n) as usize;
                let copy = block.add(bi * self.node_bytes());
                bi += 1;
                copies.push((copy, k, heads[nh], vptr));
                heads[nh] = copy.raw();
            });
            for (copy, k, next, vptr) in copies {
                ctx.recovery_write(fld(copy, 0), k);
                ctx.recovery_write(fld(copy, 1), next);
                ctx.recovery_write(fld(copy, 2), vptr);
            }
            // The bucket-array entries were written eagerly (log-free,
            // Pattern 1) and are durable — and inserts committed after
            // the resize may have prepended to them — so they must NOT
            // be rewritten to the resize-time heads.
            let _ = (heads, new_arr);
            // The old generation is no longer needed: everything it
            // backs is now durably in the image.
            ctx.recovery_write(fld(root, 3), 0);
            ctx.recovery_write(fld(root, 4), 0);
        }
        // The size counter is lazily persistent: recount.
        let count = self.len(ctx) as u64;
        ctx.recovery_write(fld(root, 2), count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VS: usize = 32;
    use crate::runner::DurableIndex;
    use crate::ycsb::{value_for, ycsb_load};
    use slpmt_core::Scheme;

    fn fresh(source: AnnotationSource, value_size: usize) -> (PmContext, Hashtable) {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let ht = Hashtable::new(&mut ctx, value_size, source);
        (ctx, ht)
    }

    #[test]
    fn insert_and_lookup() {
        let (mut ctx, mut ht) = fresh(AnnotationSource::Manual, VS);
        for op in ycsb_load(50, 32, 1) {
            ht.insert(&mut ctx, op.key, &op.value);
        }
        assert_eq!(ht.len(&ctx), 50);
        for op in ycsb_load(50, 32, 1) {
            assert_eq!(ht.value_of(&ctx, op.key).unwrap(), op.value);
        }
        assert!(!ht.contains(&ctx, 0xDEAD_BEEF));
        ht.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn resize_happens_and_preserves_content() {
        let (mut ctx, mut ht) = fresh(AnnotationSource::Manual, VS);
        // 8 initial buckets × load factor 3 = resize beyond 24 keys.
        for op in ycsb_load(100, 32, 2) {
            ht.insert(&mut ctx, op.key, &op.value);
        }
        let n = ctx.peek(fld(ht.root, 1));
        assert!(n > INITIAL_BUCKETS, "table resized (n = {n})");
        assert_eq!(ht.len(&ctx), 100);
        ht.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn selective_logging_reduces_records_vs_plain() {
        let count = |source| {
            let (mut ctx, mut ht) = fresh(source, VS);
            for op in ycsb_load(30, 32, 3) {
                ht.insert(&mut ctx, op.key, &op.value);
            }
            ctx.machine().stats().log_records_created
        };
        assert!(count(AnnotationSource::Manual) < count(AnnotationSource::None));
    }

    #[test]
    fn crash_recovery_mid_stream() {
        let (mut ctx, mut ht) = fresh(AnnotationSource::Manual, VS);
        let ops = ycsb_load(60, 32, 4);
        for op in &ops[..40] {
            ht.insert(&mut ctx, op.key, &op.value);
        }
        ctx.crash_and_recover();
        ht.recover(&mut ctx);
        let reachable = ht.reachable(&ctx);
        ctx.gc(&reachable);
        ht.check_invariants(&ctx).unwrap();
        assert_eq!(ht.len(&ctx), 40);
        for op in &ops[..40] {
            assert_eq!(
                ht.value_of(&ctx, op.key).unwrap(),
                value_for(op.key, 32),
                "committed key {} lost",
                op.key
            );
        }
        // The table remains usable after recovery.
        for op in &ops[40..] {
            ht.insert(&mut ctx, op.key, &op.value);
        }
        assert_eq!(ht.len(&ctx), 60);
        ht.check_invariants(&ctx).unwrap();
    }

    #[test]
    fn crash_right_after_resize_commit_recovers_lazy_copies() {
        let (mut ctx, mut ht) = fresh(AnnotationSource::Manual, VS);
        let ops = ycsb_load(25, 32, 5);
        // 25 inserts: the 25th (> 3 × 8) triggers the first resize.
        for op in &ops {
            ht.insert(&mut ctx, op.key, &op.value);
        }
        assert!(ctx.peek(fld(ht.root, 3)) != 0, "old generation recorded");
        // Crash with the lazy copies still volatile.
        ctx.crash_and_recover();
        ht.recover(&mut ctx);
        ctx.gc(&ht.reachable(&ctx));
        ht.check_invariants(&ctx).unwrap();
        assert_eq!(ht.len(&ctx), 25);
        for op in &ops {
            assert_eq!(ht.value_of(&ctx, op.key).unwrap(), value_for(op.key, 32));
        }
    }

    #[test]
    fn compiler_annotations_preserve_correctness() {
        let (mut ctx, mut ht) = fresh(AnnotationSource::Compiler, VS);
        let ops = ycsb_load(40, 32, 6);
        for op in &ops {
            ht.insert(&mut ctx, op.key, &op.value);
        }
        ht.check_invariants(&ctx).unwrap();
        ctx.crash_and_recover();
        ht.recover(&mut ctx);
        ctx.gc(&ht.reachable(&ctx));
        ht.check_invariants(&ctx).unwrap();
        assert_eq!(ht.len(&ctx), 40);
    }

    #[test]
    fn compiler_finds_log_free_misses_lazy_movement() {
        let (table, _) = slpmt_annotate::analyze(&Hashtable::ir());
        assert!(table.get(sites::NODE_KEY).is_selective());
        assert!(table.get(sites::NODE_VALUE).is_selective());
        assert!(table.get(sites::RS_COPY_KEY).is_selective());
        // The opaque load-factor bookkeeping hides the counter.
        assert_eq!(table.get(sites::SIZE), Annotation::Plain);
        // The linking store must stay plain.
        assert_eq!(table.get(sites::BUCKET_HEAD), Annotation::Plain);
        let report = table.compare_to_manual(&Hashtable::manual_table());
        // The compiler analyses the insert transaction: it finds every
        // insert-path annotation in some form but not the removal-path
        // poison site, and the movement copies only as eager log-free.
        assert_eq!(report.found, report.total_manual - 1);
        assert!(report.exact < report.found);
    }

    #[test]
    fn ir_is_valid() {
        assert!(Hashtable::ir().validate().is_ok());
    }
}
