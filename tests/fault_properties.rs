//! Fault-injection properties (issue 4): deterministic replay and the
//! CI fault-sweep gate.
//!
//! * **Replay is bit-identical.** A [`FaultPlan`] is a pure function
//!   of its seed: running the same `(case, k, plan)` tuple twice must
//!   produce the same [`RecoveryReport`] and the same recovered image,
//!   word for word — that is what makes every printed failure tuple a
//!   complete reproducer.
//! * **The gate.** A capped scheme × workload × plan matrix (≥200
//!   fault points) must satisfy the degradation rules on every point:
//!   recovery never panics, nothing is lost that an injected fault
//!   cannot explain, and fully-absorbed faults leave the strict crash
//!   oracle intact. The `#[ignore]`d variant widens the matrix for
//!   nightly runs.

use slpmt::bench::faultsweep::{fault_cases, run_fault_sweep};
use slpmt::core::RecoveryReport;
use slpmt::pmem::{FaultPlan, PmAddr};
use slpmt::workloads::crashsweep::{trace_ops, SweepCase, SWEEP_SCHEMES};
use slpmt::workloads::faultsweep::{fault_points, FaultCase};
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::{AnnotationSource, MixedOp, PmContext};
use slpmt_prng::{splitmix64, SimRng};

/// Runs one `(case, k)` fault point to completion — trace, crash,
/// log replay — and returns the recovery report, a fold of every
/// touched word of the recovered image, and the persist-event count.
fn run_once(case: &FaultCase, k: u64) -> (RecoveryReport, u64, u64) {
    let ops = trace_ops(&case.base);
    let mut ctx = PmContext::new(case.base.scheme, slpmt::annotate::AnnotationTable::new());
    let mut idx = case
        .base
        .kind
        .build(&mut ctx, case.base.value_size, AnnotationSource::Manual);
    ctx.machine_mut().set_fault_plan(case.plan);
    ctx.machine_mut().arm_crash_at_event(k);
    for op in &ops {
        match op {
            MixedOp::Insert(o) => idx.insert(&mut ctx, o.key, &o.value),
            MixedOp::Read(key) => {
                idx.get(&mut ctx, *key);
            }
            MixedOp::Remove(key) => {
                idx.remove(&mut ctx, *key);
            }
            MixedOp::Update(o) => {
                idx.update(&mut ctx, o.key, &o.value);
            }
            MixedOp::Rmw(o) => {
                idx.get(&mut ctx, o.key);
                idx.update(&mut ctx, o.key, &o.value);
            }
            MixedOp::Scan { keys } => {
                for key in keys {
                    idx.get(&mut ctx, *key);
                }
            }
        }
        if ctx.machine().crash_tripped() {
            break;
        }
    }
    ctx.crash();
    let report = ctx.recover();
    let mut hash = 0x5EED_F00Du64;
    for line in ctx.machine().device().image().touched_line_addrs() {
        for w in 0..8u64 {
            hash ^= ctx
                .machine()
                .device()
                .image()
                .read_u64(PmAddr::new(line + w * 8));
            hash = splitmix64(&mut hash);
            hash ^= line;
        }
    }
    let events = ctx.machine().device().event_count();
    (report, hash, events)
}

#[test]
fn fault_replay_is_bit_identical() {
    let mut rng = SimRng::seed_from_u64(0xFA17);
    let kinds = [IndexKind::Hashtable, IndexKind::Rbtree, IndexKind::Heap];
    for i in 0..6u64 {
        let plan = FaultPlan {
            seed: rng.next_u64(),
            tear: rng.gen_bool(0.5),
            tear_word: None,
            poison_lines: rng.gen_range(0..3) as u32,
            flip_records: rng.gen_range(0..2) as u32,
            jitter: if rng.gen_bool(0.5) { 300 } else { 0 },
        };
        let scheme = SWEEP_SCHEMES[(i as usize * 3) % SWEEP_SCHEMES.len()];
        let case = FaultCase {
            base: SweepCase::new(scheme, kinds[i as usize % kinds.len()], 7 + i, 12),
            plan,
        };
        for k in fault_points(&case, 2) {
            let a = run_once(&case, k);
            let b = run_once(&case, k);
            assert_eq!(a.0, b.0, "{case} k={k}: recovery report must replay");
            assert_eq!(a.1, b.1, "{case} k={k}: recovered image must replay");
            assert_eq!(a.2, b.2, "{case} k={k}: event count must replay");
        }
    }
}

#[test]
fn plan_seed_changes_where_faults_land() {
    // Two plans differing only in seed must not be the same failure —
    // otherwise the "seeded deterministic" claim is vacuous.
    let mk = |seed| FaultCase {
        base: SweepCase::new(slpmt::core::Scheme::Slpmt, IndexKind::Hashtable, 11, 14),
        plan: FaultPlan {
            seed,
            tear: true,
            poison_lines: 2,
            flip_records: 1,
            ..FaultPlan::NONE
        },
    };
    let (a, b) = (mk(1), mk(2));
    let k = fault_points(&a, 1)[0];
    let ra = run_once(&a, k);
    let rb = run_once(&b, k);
    assert!(
        ra.0 != rb.0 || ra.1 != rb.1,
        "different plan seeds should perturb different state"
    );
}

/// The CI gate: ≥200 fault points across the full scheme list, two
/// workloads, the default plan battery, two seeded crash points each.
#[test]
fn fault_sweep_gate() {
    let cases = fault_cases(
        &SWEEP_SCHEMES,
        &[IndexKind::Hashtable, IndexKind::Heap],
        42,
        12,
        &[],
    );
    let report = run_fault_sweep(&cases, 2);
    assert!(
        report.points >= 200,
        "gate must cover ≥200 points, got {}",
        report.points
    );
    assert!(report.is_clean(), "{report}");
}

/// The nightly matrix: every sweep workload, longer traces, more
/// crash points per cell.
#[test]
#[ignore = "wide fault matrix; run nightly or on demand"]
fn fault_sweep_nightly() {
    let cases = fault_cases(
        &SWEEP_SCHEMES,
        &[IndexKind::Hashtable, IndexKind::Rbtree, IndexKind::Heap],
        1234,
        30,
        &[],
    );
    let report = run_fault_sweep(&cases, 4);
    assert!(report.points >= 600);
    assert!(report.is_clean(), "{report}");
}
