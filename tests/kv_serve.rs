//! Determinism battery for the KV serve front end (issue 8
//! satellite): the same `(seed, mix, shards)` run must be
//! byte-identical at any host worker count, and pipelined request
//! ingestion must be indistinguishable — response bytes and recovered
//! durable state — from one-request-at-a-time delivery.

use slpmt::bench::serve::{run_serve_with, ServeRow};
use slpmt::core::Scheme;
use slpmt::kv::codec::{Codec, Parse};
use slpmt::kv::service::{
    dispatch, encode_request, run_shard_service, shard_streams, ServeConfig, TokenModel,
};
use slpmt::kv::store::KvStore;
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::ycsb::MixSpec;

fn cfg(mix: MixSpec, shards: usize, seed: u64) -> ServeConfig {
    let mut c = ServeConfig::new(Scheme::Slpmt, IndexKind::KvBtree, mix);
    c.load = 60;
    c.requests = 250;
    c.value_size = 16;
    c.seed = seed;
    c.shards = shards;
    c
}

// -------------------------------------------------------------------
// Worker-count invisibility: the SLPMT_THREADS contract, exercised
// in-process with explicit worker counts across the acceptance matrix
// (mixes A/B/C at 1 and 4 shards).

#[test]
fn serve_is_byte_identical_across_worker_counts() {
    for mix in [MixSpec::YCSB_A, MixSpec::YCSB_B, MixSpec::YCSB_C] {
        for shards in [1usize, 4] {
            let c = cfg(mix, shards, 42);
            let (serial, rep1): (ServeRow, _) = run_serve_with(&c, 1);
            let (fanned, rep4): (ServeRow, _) = run_serve_with(&c, 4);
            assert_eq!(
                serial.digest, fanned.digest,
                "digest drift at {shards} shards"
            );
            assert_eq!(serial.total_sim_cycles, fanned.total_sim_cycles);
            assert_eq!(serial.makespan_cycles, fanned.makespan_cycles);
            assert_eq!(serial.overall, fanned.overall);
            assert_eq!(serial.per_verb, fanned.per_verb);
            assert_eq!(rep1.len(), rep4.len());
            for (a, b) in rep1.iter().zip(&rep4) {
                assert_eq!(a.responses, b.responses, "response bytes diverged");
                assert_eq!(a.admission, b.admission);
                assert_eq!(a.samples, b.samples);
            }
        }
    }
}

#[test]
fn reruns_are_bit_identical_and_seeds_matter() {
    let c = cfg(MixSpec::YCSB_A, 2, 7);
    let (a, _) = run_serve_with(&c, 2);
    let (b, _) = run_serve_with(&c, 2);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.total_sim_cycles, b.total_sim_cycles);
    let (other, _) = run_serve_with(&cfg(MixSpec::YCSB_A, 2, 8), 2);
    assert_ne!(a.digest, other.digest, "seed must reshape the stream");
}

#[test]
fn open_loop_pacing_keeps_response_bytes() {
    // Arrival pacing stretches the simulated clock but cannot change
    // what the server answers.
    let closed = cfg(MixSpec::YCSB_B, 2, 11);
    let mut open = closed.clone();
    open.open_loop = true;
    open.mean_gap = 400;
    let (rc, repc) = run_serve_with(&closed, 2);
    let (ro, repo) = run_serve_with(&open, 2);
    assert_eq!(rc.digest, ro.digest);
    for (a, b) in repc.iter().zip(&repo) {
        assert_eq!(a.responses, b.responses);
    }
    assert!(
        ro.makespan_cycles > rc.makespan_cycles,
        "pacing must cost simulated time ({} vs {})",
        ro.makespan_cycles,
        rc.makespan_cycles
    );
}

// -------------------------------------------------------------------
// Pipelined vs one-at-a-time equivalence, including recovered state.

/// Replays one shard's stream one request at a time — encode, parse,
/// dispatch, repeat — with no session pipelining, and returns the
/// response bytes plus the store (for post-crash state comparison).
fn one_at_a_time(c: &ServeConfig, shard: usize) -> (Vec<u8>, KvStore) {
    let (loads, reqs) = shard_streams(c);
    let mut store = KvStore::open(c.scheme, c.kind, c.value_size);
    store.prefault(loads[shard].len() + reqs[shard].len());
    let mut model = TokenModel::default();
    for op in &loads[shard] {
        store.set(op.key, &op.value);
        model.on_load(op);
    }
    let ordered = store.scan(0, 0).is_some();
    let codec = Codec::new(c.value_size);
    let (mut wire, mut out) = (Vec::new(), Vec::new());
    for req in &reqs[shard] {
        wire.clear();
        encode_request(req, &mut model, ordered, &mut wire);
        let mut pos = 0;
        while pos < wire.len() {
            let (n, parse) = codec.parse(&wire[pos..]);
            pos += n;
            match parse {
                Parse::Req(r) => dispatch(&mut store, &r, &mut out),
                other => panic!("generated wire must parse, got {other:?}"),
            }
        }
    }
    (out, store)
}

/// Replays the same stream fully pipelined: every request's wire
/// bytes land in one session buffer up front, then the drain loop
/// parses and dispatches them back to back. Returns the responses and
/// the store.
fn pipelined(c: &ServeConfig, shard: usize) -> (Vec<u8>, KvStore) {
    use slpmt::kv::session::Session;
    let (loads, reqs) = shard_streams(c);
    let mut store = KvStore::open(c.scheme, c.kind, c.value_size);
    store.prefault(loads[shard].len() + reqs[shard].len());
    let mut model = TokenModel::default();
    for op in &loads[shard] {
        store.set(op.key, &op.value);
        model.on_load(op);
    }
    let ordered = store.scan(0, 0).is_some();
    let codec = Codec::new(c.value_size);
    let mut sess = Session::new(0);
    let mut wire = Vec::new();
    for req in &reqs[shard] {
        wire.clear();
        encode_request(req, &mut model, ordered, &mut wire);
        sess.feed(&wire);
    }
    while let Some(step) = sess.next_request(&codec) {
        let req = step.expect("generated wire must parse");
        let mut out = std::mem::take(&mut sess.wbuf);
        dispatch(&mut store, &req, &mut out);
        sess.wbuf = out;
    }
    (sess.take_responses(), store)
}

/// The recovered view of a store: crash, recover through the facade,
/// then every key with its decoded value in key order.
fn recovered_view(store: &mut KvStore) -> Vec<(u64, Vec<u8>)> {
    store.crash();
    store.recover();
    store.check_invariants().expect("recovered invariants");
    // scan is total on ordered backends; the serve tests pin KvBtree.
    store.scan(0, u64::MAX).expect("ordered backend")
}

#[test]
fn pipelined_equals_one_at_a_time_including_recovery() {
    // One session so the pipelined run serialises onto a single
    // response stream comparable with the serial replay.
    let mut c = cfg(MixSpec::YCSB_A, 1, 13);
    c.sessions = 1;
    let (loads, reqs) = shard_streams(&c);
    let report = run_shard_service(&c, 0, &loads[0], &reqs[0]);
    assert_eq!(report.served, report.requests, "nothing shed at defaults");

    let (pipe_out, mut pipe_store) = pipelined(&c, 0);
    let (serial_out, mut serial_store) = one_at_a_time(&c, 0);
    assert_eq!(
        pipe_out, serial_out,
        "pipelined and one-at-a-time responses diverged"
    );
    assert_eq!(
        report.responses, serial_out,
        "service loop diverged from the reference replay"
    );

    // Recovered durable state must match key-for-key, value-for-value.
    let pipe_view = recovered_view(&mut pipe_store);
    let serial_view = recovered_view(&mut serial_store);
    assert_eq!(pipe_view, serial_view, "recovered state diverged");
    assert!(!serial_view.is_empty(), "YCSB-A leaves keys behind");
}

#[test]
#[ignore = "nightly long soak: every named mix at soak-sized request counts"]
fn serve_long_soak_every_named_mix() {
    for &(name, mix) in MixSpec::NAMED.iter() {
        let mut c = cfg(mix, 4, 0x50AC_0008);
        c.load = 300;
        c.requests = 3000;
        let (row1, rep1) = run_serve_with(&c, 1);
        let (row4, rep4) = run_serve_with(&c, 4);
        assert_eq!(row1.digest, row4.digest, "mix {name}: digest drift");
        assert_eq!(row1.total_sim_cycles, row4.total_sim_cycles, "mix {name}");
        assert_eq!(row1.overall, row4.overall, "mix {name}");
        for (a, b) in rep1.iter().zip(&rep4) {
            assert_eq!(a.responses, b.responses, "mix {name}: shard bytes");
        }
        assert_eq!(row1.served + row1.shed, row1.requests, "mix {name}");
        assert!(row1.overall.p50 > 0, "mix {name}: latency cannot be free");
    }
}

#[test]
fn scan_heavy_mix_stays_deterministic() {
    // YCSB-E drives the scan path (ordered backend) through the wire;
    // worker fan-out must still be invisible.
    let mut c = cfg(MixSpec::YCSB_E, 4, 21);
    c.requests = 150;
    let (a, ra) = run_serve_with(&c, 1);
    let (b, rb) = run_serve_with(&c, 4);
    assert_eq!(a.digest, b.digest);
    for (x, y) in ra.iter().zip(&rb) {
        assert_eq!(x.responses, y.responses);
    }
    // Scans actually ran: the scan verb class has samples.
    let scan_class = a.per_verb.last().expect("scan class");
    assert!(scan_class.count > 0, "YCSB-E must exercise scan");
}
