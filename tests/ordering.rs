//! Figure 4 persist-ordering assertions, checked against the device's
//! persist-event trace.
//!
//! Undo discipline: within a transaction's persist window (its first
//! log record up to its commit marker), the *data* of a logged line
//! must not reach the persistence domain before the transaction's
//! first log record for that line — and the commit marker must follow
//! every record. Log-free lines may persist at any point.

use slpmt::core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt::pmem::{PersistEvent, PmAddr};
use std::collections::BTreeMap;

/// Per-transaction window check (for schemes without lazy persistency,
/// where no foreign forced persist can interleave): inside txn T's
/// window, `DataLine(L)` events for lines T logs must come after T's
/// first record for L.
fn assert_undo_windows(m: &Machine) {
    let events = m.device().events();
    // Find each txn's window and first-record-per-line map.
    let mut window_start: BTreeMap<u64, usize> = BTreeMap::new();
    let mut window_end: BTreeMap<u64, usize> = BTreeMap::new();
    let mut first_record: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        match e {
            PersistEvent::LogRecord { txn, addr, .. } => {
                window_start.entry(*txn).or_insert(i);
                first_record.entry((*txn, addr.line().raw())).or_insert(i);
            }
            PersistEvent::CommitMarker { txn } => {
                window_end.insert(*txn, i);
            }
            PersistEvent::DataLine { .. } | PersistEvent::LogTruncate => {}
        }
    }
    assert!(!window_end.is_empty(), "trace must contain commits");
    for (&txn, &start) in &window_start {
        let end = *window_end
            .get(&txn)
            .unwrap_or_else(|| panic!("txn {txn} logged but never committed in trace"));
        assert!(start < end, "txn {txn}: marker before its first record");
        // Every record of txn must precede the marker.
        for (i, e) in events.iter().enumerate() {
            if let PersistEvent::LogRecord { txn: t, .. } = e {
                if *t == txn {
                    assert!(i < end, "txn {txn}: record at {i} after marker at {end}");
                }
            }
        }
        // Data of logged lines must not persist inside the window
        // before the first covering record.
        for (i, e) in events.iter().enumerate().take(end).skip(start) {
            if let PersistEvent::DataLine { addr } = e {
                if let Some(&r) = first_record.get(&(txn, addr.line().raw())) {
                    assert!(
                        r <= i || r >= end,
                        "txn {txn}: data of line {addr} at {i} precedes its record at {r}"
                    );
                }
            }
        }
    }
}

/// Marker-after-records check, valid for every scheme.
fn assert_markers_follow_records(m: &Machine) {
    let events = m.device().events();
    let mut last_record: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        match e {
            PersistEvent::LogRecord { txn, .. } => {
                last_record.insert(*txn, i);
            }
            PersistEvent::CommitMarker { txn } => {
                if let Some(&r) = last_record.get(txn) {
                    assert!(r < i, "txn {txn}: marker at {i} before record at {r}");
                }
            }
            PersistEvent::DataLine { .. } | PersistEvent::LogTruncate => {}
        }
    }
}

#[test]
fn simple_commit_orders_log_before_data() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Fg));
    m.tx_begin();
    for i in 0..16u64 {
        m.store_u64(PmAddr::new(0x10000 + i * 8), i, StoreKind::Store);
    }
    m.tx_commit();
    assert_undo_windows(&m);
    assert_markers_follow_records(&m);
}

#[test]
fn stolen_lines_are_ordered_too() {
    // Tiny caches force mid-transaction overflow: even then, a line's
    // log records must beat its data to the persistence domain.
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Fg).with_tiny_caches());
    m.tx_begin();
    for i in 0..256u64 {
        m.store_u64(PmAddr::new(0x10000 + i * 64), i, StoreKind::Store);
    }
    m.tx_commit();
    assert_undo_windows(&m);
}

#[test]
fn ordering_holds_across_many_transactions_and_schemes() {
    for scheme in [Scheme::Fg, Scheme::Atom, Scheme::Ede, Scheme::FgCl] {
        let mut m = Machine::new(MachineConfig::for_scheme(scheme).with_tiny_caches());
        for t in 0..32u64 {
            m.tx_begin();
            for i in 0..8u64 {
                let a = PmAddr::new(0x10000 + ((t * 13 + i * 7) % 128) * 64);
                m.store_u64(a, t * 100 + i, StoreKind::Store);
            }
            m.tx_commit();
        }
        assert_undo_windows(&m);
        assert_markers_follow_records(&m);
    }
}

#[test]
fn selective_logging_keeps_marker_ordering() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt).with_tiny_caches());
    for t in 0..24u64 {
        m.tx_begin();
        let base = PmAddr::new(0x10000 + (t % 32) * 256);
        m.store_u64(base, t, StoreKind::Store); // logged
        m.store_u64(base.add(64), t, StoreKind::log_free()); // log-free, any order
        m.store_u64(base.add(128), t, StoreKind::lazy_log_free()); // deferred
        m.tx_commit();
    }
    m.drain_lazy();
    assert_markers_follow_records(&m);
}

#[test]
fn workload_level_ordering() {
    use slpmt::workloads::runner::IndexKind;
    use slpmt::workloads::{ycsb_load, AnnotationSource, PmContext};
    for kind in [IndexKind::Hashtable, IndexKind::Rbtree, IndexKind::KvBtree] {
        let mut ctx = PmContext::new(Scheme::Slpmt, slpmt::annotate::AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 32, AnnotationSource::Manual);
        for op in ycsb_load(80, 32, 3) {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        assert_markers_follow_records(ctx.machine());
    }
    // Without lazy features the strict window discipline holds at the
    // workload level too.
    for kind in [IndexKind::Hashtable, IndexKind::KvBtree] {
        let mut ctx = PmContext::new(Scheme::Fg, slpmt::annotate::AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 32, AnnotationSource::None);
        for op in ycsb_load(80, 32, 3) {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        assert_undo_windows(ctx.machine());
    }
}
