//! Crash and media-fault sweeps *through the service facade* (issue 8
//! satellite): every operation travels request → wire encoding →
//! codec parse → dispatch → facade transaction before the crash
//! lands, and recovery goes through `KvStore::recover`'s
//! crash-to-ready sequence. The oracle is the engine's
//! `StreamingOracle`, advanced monotonically over each case so the
//! whole sweep pays O(trace) model work.
//!
//! The battery samples ≥ 200 crash points across schemes, backends
//! and mixes, then runs the five-plan media-fault battery at sampled
//! points with the engine's degradation rules (no torn/corrupt state
//! without a matching knob, every lost line traced to an injected
//! fault, strict oracle when nothing was lost).

use slpmt::core::Scheme;
use slpmt::kv::sweep::{
    check_service_point, count_service_events, run_service_fault_at, service_ops, service_points,
    KvSweepCase,
};
use slpmt::workloads::crashsweep::{sample_points, StreamingOracle};
use slpmt::workloads::faultsweep::default_plans;
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::ycsb::MixSpec;

/// The sweep matrix: schemes × backends × mixes chosen to cover the
/// ordered and unordered dispatch paths, the delete-heavy free path,
/// and the CAS (read-modify-write) path.
fn cases() -> Vec<KvSweepCase> {
    vec![
        KvSweepCase::new(Scheme::Slpmt, IndexKind::KvBtree, 101, 70),
        KvSweepCase::new(Scheme::Slpmt, IndexKind::Hashtable, 102, 70),
        KvSweepCase::new(Scheme::Slpmt, IndexKind::KvBtree, 103, 70).with_mix(MixSpec::YCSB_F),
        KvSweepCase::new(Scheme::Fg, IndexKind::KvBtree, 104, 70).with_mix(MixSpec::DELETE_HEAVY),
        KvSweepCase::new(Scheme::Slpmt, IndexKind::KvBtree, 105, 60).with_mix(MixSpec::YCSB_E),
    ]
}

#[test]
fn service_crash_battery_two_hundred_points() {
    const POINTS_PER_CASE: usize = 48;
    let cases = cases();
    let mut total = 0usize;
    let mut failures = Vec::new();
    for case in &cases {
        let n = count_service_events(case);
        assert!(n > 0, "{case}: no persist events");
        let (ops, _) = service_ops(case);
        let mut oracle = StreamingOracle::new(&ops);
        for k in service_points(case, n, POINTS_PER_CASE) {
            total += 1;
            if let Some(fail) = check_service_point(case, &mut oracle, k) {
                failures.push(fail);
            }
        }
    }
    assert!(
        total >= 200,
        "battery must sample at least 200 crash points, got {total}"
    );
    assert!(
        failures.is_empty(),
        "{} of {total} facade crash points failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn service_fault_battery_five_plans() {
    // Two cases through every default plan: the write-heavy CAS mix on
    // the ordered backend and delete churn on the hash backend.
    let fault_cases = [
        KvSweepCase::new(Scheme::Slpmt, IndexKind::KvBtree, 201, 50).with_mix(MixSpec::YCSB_F),
        KvSweepCase::new(Scheme::Slpmt, IndexKind::Hashtable, 202, 50)
            .with_mix(MixSpec::DELETE_HEAVY),
    ];
    let plans = default_plans(0x8EED_FA17);
    assert_eq!(plans.len(), 5, "the battery is defined as five plans");
    let mut failures = Vec::new();
    for case in &fault_cases {
        let n = count_service_events(case);
        for (p, plan) in plans.iter().enumerate() {
            // Fresh seeded points per (case, plan): the fault path
            // re-replays from scratch, so no shared oracle is needed.
            for k in sample_points(case.seed ^ (p as u64) << 8, n, 6) {
                if let Err(e) = run_service_fault_at(case, plan, k) {
                    failures.push(format!("{case} plan[{p}] @k={k}: {e}"));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} fault points failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn crash_point_failures_would_be_reported() {
    // Sanity for the harness itself: an oracle advanced beyond the
    // committed prefix must make the check fail, proving the battery
    // can actually detect divergence (no vacuous pass).
    let case = KvSweepCase::new(Scheme::Slpmt, IndexKind::KvBtree, 301, 50);
    assert!(count_service_events(&case) > 0);
    let (ops, _) = service_ops(&case);
    let mut poisoned = StreamingOracle::new(&ops);
    // Advance the model to the full trace, then crash at the very
    // first persist event: the recovered store cannot match.
    poisoned.advance_to(ops.len());
    let fail = check_service_point(&case, &mut poisoned, 1);
    assert!(
        fail.is_some(),
        "a maximally advanced oracle must flag an early crash"
    );
}

#[test]
fn recovery_to_ready_is_idempotent() {
    // Crash-to-ready through the facade twice in a row: the second
    // recovery must see the same state (recovery leaves a committed
    // image behind).
    use slpmt::kv::store::KvStore;
    let mut s = KvStore::open(Scheme::Slpmt, IndexKind::KvBtree, 16);
    s.prefault(32);
    for k in 0..20u64 {
        s.set(k, format!("v{k:013}").as_bytes());
    }
    s.delete(3);
    s.crash();
    s.recover();
    let first: Vec<_> = s.scan(0, u64::MAX).expect("ordered");
    s.crash();
    s.recover();
    let second: Vec<_> = s.scan(0, u64::MAX).expect("ordered");
    assert_eq!(first, second, "second recovery diverged");
    assert_eq!(first.len(), 19);
    s.check_invariants()
        .expect("invariants after double recovery");
}
