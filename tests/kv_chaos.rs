//! Crash-during-serve chaos battery (issue 9 tentpole gate).
//!
//! Every point serves the pipelined session stream until a crash armed
//! at persist event `k` trips mid-dispatch (optionally with a media
//! fault plan), recovers, pins the zero-lost-acks contract, then
//! restarts the clients from their ack-journal watermarks and drives
//! the seeded retry/backoff tail through the degraded window to
//! oracle-checked convergence.
//!
//! The battery crosses three YCSB mixes with both SLPMT logging
//! disciplines (undo and redo), a clean crash plus the five-plan media
//! battery at nine sampled crash points each — 324 points — and
//! additionally proves:
//!
//! * non-vacuity: a deliberately poisoned recovered state fails;
//! * feature coverage: duplicate suppression, write refusal with
//!   backoff, and background scrub all actually fire;
//! * determinism: the whole sweep is byte-identical across worker
//!   counts (the `SLPMT_THREADS` contract).

use slpmt::bench::chaos::{chaos_cases, run_chaos_sweep_with, ChaosSweepReport};
use slpmt::core::Scheme;
use slpmt::workloads::faultsweep::default_plans;
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::ycsb::MixSpec;

const SEED: u64 = 0x009C_4A05;
const REQUESTS: usize = 40;
const POINTS_PER_PLAN: usize = 9;

fn battery(workers: usize) -> ChaosSweepReport {
    let cases = chaos_cases(
        &[Scheme::Slpmt, Scheme::SlpmtRedo],
        IndexKind::KvBtree,
        SEED,
        REQUESTS,
        &[MixSpec::YCSB_A, MixSpec::YCSB_B, MixSpec::DELETE_HEAVY],
    );
    let plans = default_plans(SEED ^ 0xFA17);
    run_chaos_sweep_with(&cases, &plans, POINTS_PER_PLAN, workers)
}

#[test]
fn chaos_battery_three_hundred_points() {
    let report = battery(0);
    assert!(
        report.points >= 300,
        "battery must sample at least 300 chaos points, got {}",
        report.points
    );
    assert!(report.is_clean(), "{report}");
    assert_eq!(
        report.strict + report.lossy,
        report.points,
        "every point must resolve strict or lossy"
    );
    assert_eq!(
        report.poison_caught, report.poison_checked,
        "every poisoned probe must be rejected"
    );
    assert!(report.poison_checked >= 6, "one poison probe per case");
    // The contract holds per point (a violation is a failure above);
    // the aggregate must also be consistent: every ack durable.
    assert!(
        report.totals.acked <= report.totals.durable,
        "aggregate ack-durability inverted: {} acked, {} durable",
        report.totals.acked,
        report.totals.durable
    );
    // Feature non-vacuity: the battery is only evidence if the paths
    // under test actually fire somewhere in the matrix.
    assert!(
        report.totals.suppressed > 0,
        "no retry was duplicate-suppressed — replay window untested"
    );
    assert!(
        report.totals.refused_writes > 0,
        "no write was refused — degraded window untested"
    );
    assert!(
        report.totals.scrubbed > 0,
        "no line was scrubbed — background scrub untested"
    );
    assert!(
        report.lossy > 0,
        "no injected plan cost a line — fault attribution untested"
    );
}

#[test]
fn chaos_battery_is_byte_identical_across_worker_counts() {
    let small = |workers: usize| {
        let cases = chaos_cases(
            &[Scheme::Slpmt, Scheme::SlpmtRedo],
            IndexKind::KvBtree,
            SEED ^ 1,
            24,
            &[MixSpec::YCSB_A],
        );
        let plans = default_plans(SEED);
        run_chaos_sweep_with(&cases, &plans, 3, workers)
    };
    let r1 = small(1);
    let r4 = small(4);
    assert_eq!(r1.digest, r4.digest);
    assert_eq!(r1.totals, r4.totals);
    assert_eq!(r1.strict, r4.strict);
    assert_eq!(r1.lossy, r4.lossy);
    assert_eq!(r1.failures, r4.failures);
    assert_eq!(r1.poison_caught, r4.poison_caught);
}
