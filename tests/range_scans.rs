//! Range-scan correctness for the ordered indexes, model-based against
//! a `BTreeMap` oracle (the ROART-style range queries the paper cites
//! as motivation for persistent ordered indexes). Seeded loops replace
//! `proptest` (unavailable offline).

use slpmt::annotate::AnnotationTable;
use slpmt::core::Scheme;
use slpmt::workloads::avl::AvlTree;
use slpmt::workloads::kv::btree::BtreeKv;
use slpmt::workloads::kv::ctree::CtreeKv;
use slpmt::workloads::kv::rtree::RtreeKv;
use slpmt::workloads::kv::skiplist::SkiplistKv;
use slpmt::workloads::rbtree::Rbtree;
use slpmt::workloads::runner::{DurableIndex, RangeIndex};
use slpmt::workloads::{ycsb_load, AnnotationSource, PmContext};
use slpmt_prng::SimRng;
use std::collections::BTreeMap;

fn check_against_oracle<I: RangeIndex>(
    mut idx: I,
    mut ctx: PmContext,
    n: usize,
    seed: u64,
    ranges: &[(u64, u64)],
) {
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for op in ycsb_load(n, 16, seed) {
        idx.insert(&mut ctx, op.key, &op.value);
        oracle.insert(op.key, op.value);
    }
    for &(a, b) in ranges {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let got = idx.scan(&mut ctx, lo, hi);
        let want: Vec<(u64, Vec<u8>)> = oracle
            .range(lo..=hi)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        assert_eq!(&got, &want, "{} range [{}, {}]", idx.name(), lo, hi);
    }
    // Full scan covers everything, in order.
    let all = idx.scan(&mut ctx, u64::MIN, u64::MAX);
    assert_eq!(all.len(), oracle.len());
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
}

#[test]
fn ordered_indexes_scan_like_the_oracle() {
    for case in 0..12u64 {
        let mut rng = SimRng::seed_from_u64(0x5CA2 ^ case);
        let n = rng.gen_usize(1..120);
        let seed = rng.gen_range(0..1000);
        let ranges: Vec<(u64, u64)> = (0..rng.gen_usize(1..6))
            .map(|_| (rng.next_u64(), rng.next_u64()))
            .collect();
        let which = rng.gen_usize(0..6);
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        match which {
            0 => {
                let idx = Rbtree::new(&mut ctx, 16, AnnotationSource::Manual);
                check_against_oracle(idx, ctx, n, seed, &ranges);
            }
            1 => {
                let idx = AvlTree::new(&mut ctx, 16, AnnotationSource::Manual);
                check_against_oracle(idx, ctx, n, seed, &ranges);
            }
            2 => {
                let idx = BtreeKv::new(&mut ctx, 16, AnnotationSource::Manual);
                check_against_oracle(idx, ctx, n, seed, &ranges);
            }
            3 => {
                let idx = CtreeKv::new(&mut ctx, 16, AnnotationSource::Manual);
                check_against_oracle(idx, ctx, n, seed, &ranges);
            }
            4 => {
                let idx = RtreeKv::new(&mut ctx, 16, AnnotationSource::Manual);
                check_against_oracle(idx, ctx, n, seed, &ranges);
            }
            _ => {
                let idx = SkiplistKv::new(&mut ctx, 16, AnnotationSource::Manual);
                check_against_oracle(idx, ctx, n, seed, &ranges);
            }
        }
    }
}

#[test]
fn scans_survive_crash_recovery() {
    let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
    let mut idx = SkiplistKv::new(&mut ctx, 16, AnnotationSource::Manual);
    let ops = ycsb_load(100, 16, 5);
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for op in &ops {
        idx.insert(&mut ctx, op.key, &op.value);
        oracle.insert(op.key, op.value.clone());
    }
    ctx.crash_and_recover();
    idx.recover(&mut ctx);
    ctx.gc(&idx.reachable(&ctx));
    let all = idx.scan(&mut ctx, u64::MIN, u64::MAX);
    let want: Vec<(u64, Vec<u8>)> = oracle.iter().map(|(k, v)| (*k, v.clone())).collect();
    assert_eq!(all, want);
}

#[test]
fn tight_and_empty_ranges() {
    let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
    let mut idx = BtreeKv::new(&mut ctx, 16, AnnotationSource::Manual);
    let ops = ycsb_load(50, 16, 6);
    for op in &ops {
        idx.insert(&mut ctx, op.key, &op.value);
    }
    let k = ops[25].key;
    assert_eq!(idx.scan(&mut ctx, k, k), vec![(k, ops[25].value.clone())]);
    // A hole between two adjacent keys is empty.
    let mut keys: Vec<u64> = ops.iter().map(|o| o.key).collect();
    keys.sort_unstable();
    for w in keys.windows(2) {
        if w[1] - w[0] > 2 {
            assert!(idx.scan(&mut ctx, w[0] + 1, w[1] - 1).is_empty());
            break;
        }
    }
}
