//! Crash-injection regression tests (issue 2 satellites): commit-phase
//! validation per discipline, recovery write accounting through the
//! device, crash-during-recovery idempotence, and signature
//! false-positive behaviour.

use slpmt::core::{CommitPhase, Machine, MachineConfig, Scheme, Signature, StoreKind};
use slpmt::pmem::{FaultPlan, MarkerState, PersistEvent, PmAddr};

const A: PmAddr = PmAddr::new(0x10000);
const B: PmAddr = PmAddr::new(0x10080);

fn machine(scheme: Scheme) -> Machine {
    Machine::new(MachineConfig::for_scheme(scheme))
}

fn battery(scheme: Scheme) -> Machine {
    Machine::new(MachineConfig::for_scheme(scheme).with_battery_backed_cache())
}

// -------------------------------------------------------------------
// Commit-phase validation: arming a phase the discipline never visits
// must fail loudly instead of letting the commit complete with the
// crash point still armed (a vacuously passing test).

#[test]
fn undo_accepts_its_phases() {
    let mut m = machine(Scheme::Fg);
    for p in [
        CommitPhase::AfterRecords,
        CommitPhase::AfterData,
        CommitPhase::AfterMarker,
    ] {
        m.set_commit_crash_point(Some(p));
    }
    m.set_commit_crash_point(None);
}

#[test]
#[should_panic(expected = "never visited")]
fn undo_rejects_after_log_free() {
    machine(Scheme::Fg).set_commit_crash_point(Some(CommitPhase::AfterLogFree));
}

#[test]
fn redo_accepts_its_phases() {
    let mut m = machine(Scheme::FgRedo);
    for p in [
        CommitPhase::AfterLogFree,
        CommitPhase::AfterRecords,
        CommitPhase::AfterMarker,
    ] {
        m.set_commit_crash_point(Some(p));
    }
}

#[test]
#[should_panic(expected = "never visited")]
fn redo_rejects_after_data() {
    machine(Scheme::FgRedo).set_commit_crash_point(Some(CommitPhase::AfterData));
}

#[test]
fn battery_accepts_records_and_marker() {
    let mut m = battery(Scheme::Slpmt);
    m.set_commit_crash_point(Some(CommitPhase::AfterRecords));
    m.set_commit_crash_point(Some(CommitPhase::AfterMarker));
}

#[test]
#[should_panic(expected = "never visited")]
fn battery_rejects_data_phase() {
    // Battery commit persists no data lines (§V-E).
    battery(Scheme::Slpmt).set_commit_crash_point(Some(CommitPhase::AfterData));
}

// -------------------------------------------------------------------
// Recovery write accounting: replay goes through the device's persist
// path, so it shows up in write traffic and the persist-event trace.

#[test]
fn recovery_replay_counts_in_device_traffic() {
    let mut m = machine(Scheme::Fg);
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    m.set_commit_crash_point(Some(CommitPhase::AfterData));
    m.tx_commit();
    let data_before = m.device().traffic().data_lines;
    let events_before = m.device().event_count();
    let report = m.recover();
    assert!(report.undo_applied > 0);
    assert!(report.lines_persisted > 0);
    assert_eq!(
        m.device().traffic().data_lines,
        data_before + report.lines_persisted as u64,
        "every replayed line is counted as data-line write traffic"
    );
    assert!(
        m.device().event_count() > events_before,
        "replay persists are numbered persist events"
    );
    assert_eq!(m.device().image().read_u64(A), 5, "rolled back");
}

// -------------------------------------------------------------------
// Crash during recovery: a persist-event crash mid-replay must leave a
// state from which a second recovery converges (replay is idempotent
// and the log survives until the post-replay reset).

#[test]
fn undo_recovery_crash_is_idempotent() {
    let mut m = machine(Scheme::Fg);
    m.setup_write(A, &5u64.to_le_bytes());
    m.setup_write(B, &6u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    m.store_u64(B, 100, StoreKind::Store);
    m.set_commit_crash_point(Some(CommitPhase::AfterData));
    m.tx_commit();
    // First recovery attempt dies after its first replay persist:
    // every later durable mutation (more replays, the log reset) is
    // dropped.
    m.arm_crash_at_event(m.device().event_count() + 1);
    let _ = m.recover();
    assert!(m.crash_tripped(), "the replay tripped the scheduler");
    m.crash();
    let report = m.recover();
    assert!(report.undo_applied > 0, "log survived the interrupted pass");
    assert_eq!(m.device().image().read_u64(A), 5);
    assert_eq!(m.device().image().read_u64(B), 6);
    // A third pass finds a clean log.
    assert_eq!(m.recover().undo_applied, 0);
}

#[test]
fn redo_recovery_crash_is_idempotent() {
    let mut m = machine(Scheme::FgRedo);
    m.setup_write(A, &5u64.to_le_bytes());
    m.setup_write(B, &6u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    m.store_u64(B, 100, StoreKind::Store);
    m.set_commit_crash_point(Some(CommitPhase::AfterMarker));
    m.tx_commit();
    m.arm_crash_at_event(m.device().event_count() + 1);
    let _ = m.recover();
    assert!(m.crash_tripped());
    m.crash();
    let report = m.recover();
    assert_eq!(report.replayed, vec![1]);
    assert_eq!(m.device().image().read_u64(A), 99);
    assert_eq!(m.device().image().read_u64(B), 100);
    assert_eq!(m.recover().redo_applied, 0);
}

// -------------------------------------------------------------------
// Torn commit markers: the 16-byte marker can tear at either of its
// two 8-byte words. In every discipline × persistency combination a
// torn marker must read as *absent* — the transaction stays
// uncommitted, recovery rolls it back (undo) or skips its replay
// (redo), and the pre-transaction value survives.

#[test]
fn torn_marker_leaves_txn_uncommitted_in_every_discipline() {
    for scheme in [Scheme::Fg, Scheme::FgLz, Scheme::FgRedo, Scheme::SlpmtRedo] {
        let run = |tear: Option<(u8, u64)>| -> Machine {
            let mut m = machine(scheme);
            m.setup_write(A, &5u64.to_le_bytes());
            if let Some((w, k)) = tear {
                m.set_fault_plan(FaultPlan {
                    seed: 7,
                    tear: true,
                    tear_word: Some(w),
                    ..FaultPlan::NONE
                });
                m.arm_crash_at_event(k);
            }
            m.tx_begin();
            m.store_u64(A, 99, StoreKind::Store);
            m.tx_commit();
            m
        };
        // Twin run locates the marker's persist-event number.
        let twin = run(None);
        let marker_k = twin
            .device()
            .events()
            .iter()
            .position(|e| matches!(e, PersistEvent::CommitMarker { .. }))
            .expect("commit persists a marker") as u64
            + 1;
        for w in [0u8, 1] {
            let mut m = run(Some((w, marker_k)));
            assert!(m.crash_tripped(), "{scheme} w={w}: tear trips the crash");
            m.crash();
            let log = m.device().log();
            assert!(
                matches!(log.marker_state(1), Some(MarkerState::Torn(_))),
                "{scheme} w={w}: marker must be durably torn"
            );
            assert!(
                !log.is_committed(1),
                "{scheme} w={w}: torn marker must not commit"
            );
            assert_eq!(
                log.max_committed_seq(),
                0,
                "{scheme} w={w}: no durably committed transaction"
            );
            let report = m.recover();
            assert_eq!(report.torn_markers, 1, "{scheme} w={w}");
            assert!(
                report.lost_lines.is_empty(),
                "{scheme} w={w}: no media loss"
            );
            assert_eq!(
                m.device().image().read_u64(A),
                5,
                "{scheme} w={w}: pre-transaction value survives"
            );
        }
    }
}

// -------------------------------------------------------------------
// Signature false positives: aliasing in the dependency signature may
// force-persist transactions that were not actually depended on, but
// must never change post-recovery values.

#[test]
fn signature_aliasing_forces_but_preserves_values() {
    // Find a line that aliases `probe` in a fresh signature.
    let probe = PmAddr::new(0x8000);
    let mut sig = Signature::new();
    sig.insert(probe);
    let alias = (1..1_000_000u64)
        .map(|i| PmAddr::new(0x8000 + i * 64))
        .find(|a| sig.maybe_contains(*a))
        .expect("a finite signature must alias some other line");

    let mut m = machine(Scheme::Slpmt);
    m.setup_write(probe, &1u64.to_le_bytes());
    // Txn 1 derives a lazily-persistent value from `probe`.
    m.tx_begin();
    let v = m.load_u64(probe);
    m.store_u64(A, v + 10, StoreKind::lazy_logged());
    m.tx_commit();
    assert_eq!(m.device().image().read_u64(A), 0, "deferred, not durable");
    // Txn 2 persists an unrelated line that merely *aliases* the
    // signature: the false positive forces txn 1's deferral durable.
    m.tx_begin();
    m.store_u64(alias, 42, StoreKind::Store);
    m.tx_commit();
    assert!(
        m.stats().lazy_lines_forced > 0,
        "the aliased persist forced the deferred line"
    );
    m.crash();
    m.recover();
    assert_eq!(m.device().image().read_u64(A), 11, "forced value correct");
    assert_eq!(m.device().image().read_u64(alias), 42);
}
