//! Crash-injection regression tests (issue 2 satellites): commit-phase
//! validation per discipline, recovery write accounting through the
//! device, crash-during-recovery idempotence, and signature
//! false-positive behaviour.

use slpmt::core::{CommitPhase, Machine, MachineConfig, Scheme, Signature, StoreKind};
use slpmt::pmem::{FaultPlan, MarkerState, PersistEvent, PmAddr};

const A: PmAddr = PmAddr::new(0x10000);
const B: PmAddr = PmAddr::new(0x10080);

fn machine(scheme: Scheme) -> Machine {
    Machine::new(MachineConfig::for_scheme(scheme))
}

fn battery(scheme: Scheme) -> Machine {
    Machine::new(MachineConfig::for_scheme(scheme).with_battery_backed_cache())
}

// -------------------------------------------------------------------
// Commit-phase validation: arming a phase the discipline never visits
// must fail loudly instead of letting the commit complete with the
// crash point still armed (a vacuously passing test).

#[test]
fn undo_accepts_its_phases() {
    let mut m = machine(Scheme::Fg);
    for p in [
        CommitPhase::AfterRecords,
        CommitPhase::AfterData,
        CommitPhase::AfterMarker,
    ] {
        m.set_commit_crash_point(Some(p));
    }
    m.set_commit_crash_point(None);
}

#[test]
#[should_panic(expected = "never visited")]
fn undo_rejects_after_log_free() {
    machine(Scheme::Fg).set_commit_crash_point(Some(CommitPhase::AfterLogFree));
}

#[test]
fn redo_accepts_its_phases() {
    let mut m = machine(Scheme::FgRedo);
    for p in [
        CommitPhase::AfterLogFree,
        CommitPhase::AfterRecords,
        CommitPhase::AfterMarker,
    ] {
        m.set_commit_crash_point(Some(p));
    }
}

#[test]
#[should_panic(expected = "never visited")]
fn redo_rejects_after_data() {
    machine(Scheme::FgRedo).set_commit_crash_point(Some(CommitPhase::AfterData));
}

#[test]
fn battery_accepts_records_and_marker() {
    let mut m = battery(Scheme::Slpmt);
    m.set_commit_crash_point(Some(CommitPhase::AfterRecords));
    m.set_commit_crash_point(Some(CommitPhase::AfterMarker));
}

#[test]
#[should_panic(expected = "never visited")]
fn battery_rejects_data_phase() {
    // Battery commit persists no data lines (§V-E).
    battery(Scheme::Slpmt).set_commit_crash_point(Some(CommitPhase::AfterData));
}

// -------------------------------------------------------------------
// Recovery write accounting: replay goes through the device's persist
// path, so it shows up in write traffic and the persist-event trace.

#[test]
fn recovery_replay_counts_in_device_traffic() {
    let mut m = machine(Scheme::Fg);
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    m.set_commit_crash_point(Some(CommitPhase::AfterData));
    m.tx_commit();
    let data_before = m.device().traffic().data_lines;
    let events_before = m.device().event_count();
    let report = m.recover();
    assert!(report.undo_applied > 0);
    assert!(report.lines_persisted > 0);
    assert_eq!(
        m.device().traffic().data_lines,
        data_before + report.lines_persisted as u64,
        "every replayed line is counted as data-line write traffic"
    );
    assert!(
        m.device().event_count() > events_before,
        "replay persists are numbered persist events"
    );
    assert_eq!(m.device().image().read_u64(A), 5, "rolled back");
}

// -------------------------------------------------------------------
// Crash during recovery: a persist-event crash mid-replay must leave a
// state from which a second recovery converges (replay is idempotent
// and the log survives until the post-replay reset).

#[test]
fn undo_recovery_crash_is_idempotent() {
    let mut m = machine(Scheme::Fg);
    m.setup_write(A, &5u64.to_le_bytes());
    m.setup_write(B, &6u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    m.store_u64(B, 100, StoreKind::Store);
    m.set_commit_crash_point(Some(CommitPhase::AfterData));
    m.tx_commit();
    // First recovery attempt dies after its first replay persist:
    // every later durable mutation (more replays, the log reset) is
    // dropped.
    m.arm_crash_at_event(m.device().event_count() + 1);
    let _ = m.recover();
    assert!(m.crash_tripped(), "the replay tripped the scheduler");
    m.crash();
    let report = m.recover();
    assert!(report.undo_applied > 0, "log survived the interrupted pass");
    assert_eq!(m.device().image().read_u64(A), 5);
    assert_eq!(m.device().image().read_u64(B), 6);
    // A third pass finds a clean log.
    assert_eq!(m.recover().undo_applied, 0);
}

#[test]
fn redo_recovery_crash_is_idempotent() {
    let mut m = machine(Scheme::FgRedo);
    m.setup_write(A, &5u64.to_le_bytes());
    m.setup_write(B, &6u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    m.store_u64(B, 100, StoreKind::Store);
    m.set_commit_crash_point(Some(CommitPhase::AfterMarker));
    m.tx_commit();
    m.arm_crash_at_event(m.device().event_count() + 1);
    let _ = m.recover();
    assert!(m.crash_tripped());
    m.crash();
    let report = m.recover();
    assert_eq!(report.replayed, vec![1]);
    assert_eq!(m.device().image().read_u64(A), 99);
    assert_eq!(m.device().image().read_u64(B), 100);
    assert_eq!(m.recover().redo_applied, 0);
}

// -------------------------------------------------------------------
// Torn commit markers: the 16-byte marker can tear at either of its
// two 8-byte words. In every discipline × persistency combination a
// torn marker must read as *absent* — the transaction stays
// uncommitted, recovery rolls it back (undo) or skips its replay
// (redo), and the pre-transaction value survives.

#[test]
fn torn_marker_leaves_txn_uncommitted_in_every_discipline() {
    for scheme in [Scheme::Fg, Scheme::FgLz, Scheme::FgRedo, Scheme::SlpmtRedo] {
        let run = |tear: Option<(u8, u64)>| -> Machine {
            let mut m = machine(scheme);
            m.setup_write(A, &5u64.to_le_bytes());
            if let Some((w, k)) = tear {
                m.set_fault_plan(FaultPlan {
                    seed: 7,
                    tear: true,
                    tear_word: Some(w),
                    ..FaultPlan::NONE
                });
                m.arm_crash_at_event(k);
            }
            m.tx_begin();
            m.store_u64(A, 99, StoreKind::Store);
            m.tx_commit();
            m
        };
        // Twin run locates the marker's persist-event number.
        let twin = run(None);
        let marker_k = twin
            .device()
            .events()
            .iter()
            .position(|e| matches!(e, PersistEvent::CommitMarker { .. }))
            .expect("commit persists a marker") as u64
            + 1;
        for w in [0u8, 1] {
            let mut m = run(Some((w, marker_k)));
            assert!(m.crash_tripped(), "{scheme} w={w}: tear trips the crash");
            m.crash();
            let log = m.device().log();
            assert!(
                matches!(log.marker_state(1), Some(MarkerState::Torn(_))),
                "{scheme} w={w}: marker must be durably torn"
            );
            assert!(
                !log.is_committed(1),
                "{scheme} w={w}: torn marker must not commit"
            );
            assert_eq!(
                log.max_committed_seq(),
                0,
                "{scheme} w={w}: no durably committed transaction"
            );
            let report = m.recover();
            assert_eq!(report.torn_markers, 1, "{scheme} w={w}");
            assert!(
                report.lost_lines.is_empty(),
                "{scheme} w={w}: no media loss"
            );
            assert_eq!(
                m.device().image().read_u64(A),
                5,
                "{scheme} w={w}: pre-transaction value survives"
            );
        }
    }
}

// -------------------------------------------------------------------
// Batched WPQ drains: with tracing off, the device timing-batches a
// log pack through `WritePendingQueue::push_chain` instead of looping
// per-record pushes. The batch must be invisible to everything the
// crash and fault machinery observes — persist-event numbering, WPQ
// stall/drain accounting, and the durable state an armed crash or
// fault plan leaves behind. Each test drives a plain machine (batched
// path) and a tracing twin (per-push path) through identical inputs
// and demands identical observables.

/// Commit-heavy FG workload: every store logs, every commit flushes a
/// multi-record pack through the batched drain.
fn drive(m: &mut Machine) {
    for t in 0..6u64 {
        m.tx_begin();
        for i in 0..10u64 {
            m.store_u64(
                PmAddr::new(0x2_0000 + (t * 10 + i) * 64),
                t * 100 + i + 1,
                StoreKind::Store,
            );
        }
        m.tx_commit();
    }
}

#[test]
fn batched_drain_matches_per_push_timing_and_numbering() {
    let mut plain = machine(Scheme::Fg);
    let mut traced = machine(Scheme::Fg);
    let _h = traced.enable_tracing(1 << 14);
    drive(&mut plain);
    drive(&mut traced);
    assert_eq!(plain.now(), traced.now(), "simulated clock");
    assert_eq!(
        plain.persist_event_count(),
        traced.persist_event_count(),
        "persist-event numbering"
    );
    assert_eq!(
        plain.device().wpq_stall_cycles(),
        traced.device().wpq_stall_cycles(),
        "full-queue stall accounting"
    );
    assert_eq!(
        plain.device().drained_by(plain.now()),
        traced.device().drained_by(traced.now()),
        "drained_by horizon"
    );
    assert_eq!(plain.device().traffic(), traced.device().traffic());
    assert_eq!(plain.stats(), traced.stats());
}

#[test]
fn batched_drain_matches_per_push_under_drain_jitter() {
    // A non-zero jitter window perturbs every drain completion via the
    // per-push counter — the exact state push_chain must thread
    // through the batch.
    let plan = FaultPlan {
        seed: 23,
        jitter: 700,
        ..FaultPlan::NONE
    };
    let mut plain = machine(Scheme::Fg);
    plain.set_fault_plan(plan);
    let mut traced = machine(Scheme::Fg);
    traced.set_fault_plan(plan);
    let _h = traced.enable_tracing(1 << 14);
    drive(&mut plain);
    drive(&mut traced);
    assert_eq!(plain.now(), traced.now());
    assert_eq!(
        plain.device().drained_by(plain.now()),
        traced.device().drained_by(traced.now())
    );
    assert_eq!(
        plain.device().wpq_stall_cycles(),
        traced.device().wpq_stall_cycles()
    );
}

#[test]
fn batched_drain_preserves_crash_point_semantics() {
    // Sweep every persist-event crash point of the workload: the
    // batched path must trip at the same event and leave the same
    // durable state as the per-push path, and both must recover to the
    // same image.
    let total = {
        let mut m = machine(Scheme::Fg);
        drive(&mut m);
        m.persist_event_count()
    };
    assert!(total > 12, "workload persists enough events to sweep");
    for k in 1..=total {
        let run = |tracing: bool| -> (bool, u64, Machine) {
            let mut m = machine(Scheme::Fg);
            if tracing {
                let _h = m.enable_tracing(1 << 14);
            }
            m.arm_crash_at_event(k);
            drive(&mut m);
            let tripped = m.crash_tripped();
            m.crash();
            (tripped, m.device().event_count(), m)
        };
        let (pt, pe, mut plain) = run(false);
        let (tt, te, mut traced) = run(true);
        assert_eq!(pt, tt, "k={k}: trip");
        assert_eq!(pe, te, "k={k}: durable event count");
        let pr = plain.recover();
        let tr = traced.recover();
        assert_eq!(pr.undo_applied, tr.undo_applied, "k={k}");
        assert_eq!(pr.rolled_back, tr.rolled_back, "k={k}");
        for t in 0..6u64 {
            for i in 0..10u64 {
                let a = PmAddr::new(0x2_0000 + (t * 10 + i) * 64);
                assert_eq!(
                    plain.device().image().read_u64(a),
                    traced.device().image().read_u64(a),
                    "k={k}: post-recovery image at {a:?}"
                );
            }
        }
    }
}

#[test]
fn batched_drain_preserves_fault_plan_outcomes() {
    // Tear + poison + flip at a mid-pack crash point: the injected
    // damage derives from persist-event numbering and the touched-line
    // set, both of which the batch must keep identical.
    let plan = FaultPlan {
        seed: 11,
        tear: true,
        tear_word: None,
        poison_lines: 2,
        flip_records: 1,
        jitter: 0,
    };
    let k = 9;
    let run = |tracing: bool| -> Machine {
        let mut m = machine(Scheme::Fg);
        if tracing {
            let _h = m.enable_tracing(1 << 14);
        }
        m.set_fault_plan(plan);
        m.arm_crash_at_event(k);
        drive(&mut m);
        assert!(m.crash_tripped());
        m.crash();
        m
    };
    let mut plain = run(false);
    let mut traced = run(true);
    assert_eq!(
        plain.device().poisoned_line_addrs(),
        traced.device().poisoned_line_addrs(),
        "poison targets"
    );
    let pr = plain.recover();
    let tr = traced.recover();
    assert_eq!(pr.torn_records, tr.torn_records);
    assert_eq!(pr.corrupt_records, tr.corrupt_records);
    assert_eq!(pr.salvaged_lines, tr.salvaged_lines);
    assert_eq!(pr.lost_lines, tr.lost_lines);
    for t in 0..6u64 {
        for i in 0..10u64 {
            let a = PmAddr::new(0x2_0000 + (t * 10 + i) * 64);
            assert_eq!(
                plain.device().image().read_u64(a),
                traced.device().image().read_u64(a),
                "post-recovery image at {a:?}"
            );
        }
    }
}

// -------------------------------------------------------------------
// Signature false positives: aliasing in the dependency signature may
// force-persist transactions that were not actually depended on, but
// must never change post-recovery values.

#[test]
fn signature_aliasing_forces_but_preserves_values() {
    // Find a line that aliases `probe` in a fresh signature.
    let probe = PmAddr::new(0x8000);
    let mut sig = Signature::new();
    sig.insert(probe);
    let alias = (1..1_000_000u64)
        .map(|i| PmAddr::new(0x8000 + i * 64))
        .find(|a| sig.maybe_contains(*a))
        .expect("a finite signature must alias some other line");

    let mut m = machine(Scheme::Slpmt);
    m.setup_write(probe, &1u64.to_le_bytes());
    // Txn 1 derives a lazily-persistent value from `probe`.
    m.tx_begin();
    let v = m.load_u64(probe);
    m.store_u64(A, v + 10, StoreKind::lazy_logged());
    m.tx_commit();
    assert_eq!(m.device().image().read_u64(A), 0, "deferred, not durable");
    // Txn 2 persists an unrelated line that merely *aliases* the
    // signature: the false positive forces txn 1's deferral durable.
    m.tx_begin();
    m.store_u64(alias, 42, StoreKind::Store);
    m.tx_commit();
    assert!(
        m.stats().lazy_lines_forced > 0,
        "the aliased persist forced the deferred line"
    );
    m.crash();
    m.recover();
    assert_eq!(m.device().image().read_u64(A), 11, "forced value correct");
    assert_eq!(m.device().image().read_u64(alias), 42);
}
