//! Exhaustive persist-event crash sweep (oracle-checked recovery).
//!
//! Every test enumerates *all* persist events of a fixed seeded trace
//! and crashes at each one — there is no sampling; see
//! `slpmt::workloads::crashsweep` for the crash-state model and the
//! oracle. Failures print reproducible `(scheme, workload, seed, k)`
//! tuples; re-run one with
//! `slpmt crashsweep --scheme S --ops N --at K`.
//!
//! The un-ignored tests are the PR gate: a scheme subset × three
//! workloads at a trace size that keeps the whole file comfortably
//! inside the CI budget (the sweep fans across `SLPMT_THREADS`
//! workers). The `#[ignore]`d test is the nightly exhaustive matrix:
//! all ten schemes, ≥50-transaction traces.

use slpmt::bench::crashsweep::{run_sweep, sweep_cases};
use slpmt::bench::runner::par_map;
use slpmt::core::multi::{mc_count_events, mc_sweep_serial};
use slpmt::core::{McSweepCase, Schedule, Scheme};
use slpmt::workloads::crashsweep::{count_events, sweep_serial, SweepCase};
use slpmt::workloads::runner::IndexKind;

const SEED: u64 = 42;

/// Gate subset: the undo baseline, each single-feature variant (the
/// `storeT` operand-degrade paths are where annotation soundness bugs
/// hide), full SLPMT, the line-granularity variant, and both redo
/// designs — every commit sequence in Figure 4 is represented.
const GATE_SCHEMES: [Scheme; 7] = [
    Scheme::Fg,
    Scheme::FgLg,
    Scheme::FgLz,
    Scheme::Slpmt,
    Scheme::SlpmtCl,
    Scheme::FgRedo,
    Scheme::SlpmtRedo,
];

const GATE_KINDS: [IndexKind; 3] = [IndexKind::Hashtable, IndexKind::Rbtree, IndexKind::Heap];

#[test]
fn gate_sweep_every_persist_event() {
    let cases = sweep_cases(&GATE_SCHEMES, &GATE_KINDS, SEED, 12);
    let report = run_sweep(&cases);
    assert!(report.points > 0);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn sweep_covers_lazy_and_selective_features() {
    // Serial spot-check of the scheme that exercises most machinery
    // (signatures, log-free stores, lazy drains) on the structure with
    // the most auxiliary transactions (hashtable resize + close-window
    // preliminary transactions).
    let failures = sweep_serial(&SweepCase::new(Scheme::Slpmt, IndexKind::Hashtable, 7, 10));
    assert!(
        failures.is_empty(),
        "{}",
        failures
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn event_counts_grow_with_trace_length() {
    let short = count_events(&SweepCase::new(Scheme::Fg, IndexKind::Heap, SEED, 5));
    let long = count_events(&SweepCase::new(Scheme::Fg, IndexKind::Heap, SEED, 20));
    assert!(short > 0);
    assert!(
        long > short,
        "longer traces must persist more ({short} vs {long})"
    );
}

// ---------------------------------------------------------------------
// Multi-core crash sweeps: two interleaved cores, a crash armed at
// every persist event, recovery checked against the admissible-value
// oracle (`slpmt::core::multi::mc_run_crash_at`). Failures print
// reproducible `(scheme, cores, seed, schedule, k)` tuples.

#[test]
fn gate_mc_sweep_every_persist_event() {
    let cases = [
        McSweepCase::new(Scheme::Slpmt, 2, SEED, Schedule::round_robin(3)),
        McSweepCase::new(Scheme::SlpmtRedo, 2, SEED, Schedule::weighted(3)),
        McSweepCase::new(Scheme::Fg, 2, SEED, Schedule::weighted(9)),
    ];
    let failures: Vec<String> = par_map(&cases, mc_sweep_serial)
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn mc_event_counts_grow_with_cores() {
    let one = mc_count_events(&McSweepCase::new(
        Scheme::Fg,
        1,
        SEED,
        Schedule::round_robin(0),
    ));
    let three = mc_count_events(&McSweepCase::new(
        Scheme::Fg,
        3,
        SEED,
        Schedule::round_robin(0),
    ));
    assert!(one > 0);
    assert!(
        three > one,
        "more cores must persist more ({one} vs {three})"
    );
}

/// Nightly exhaustive multi-core matrix: the gate schemes × 2–3 cores
/// × both scheduler policies, every persist event of every case. Run
/// with `cargo test --release --test crash_sweep -- --ignored`.
#[test]
#[ignore = "exhaustive matrix; run nightly or on demand"]
fn full_mc_sweep_all_schemes() {
    let mut cases = Vec::new();
    for scheme in GATE_SCHEMES {
        for cores in [2, 3] {
            for seed in [SEED, 7] {
                cases.push(McSweepCase::new(
                    scheme,
                    cores,
                    seed,
                    Schedule::round_robin(seed),
                ));
                cases.push(McSweepCase::new(
                    scheme,
                    cores,
                    seed,
                    Schedule::weighted(seed + 1),
                ));
            }
        }
    }
    let failures: Vec<String> = par_map(&cases, mc_sweep_serial)
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Nightly exhaustive matrix: all ten schemes × three workloads, ≥50
/// operations per trace, every persist event. Run with
/// `cargo test --release --test crash_sweep -- --ignored`.
#[test]
#[ignore = "exhaustive matrix; run nightly or on demand"]
fn full_sweep_all_schemes() {
    use slpmt::workloads::crashsweep::SWEEP_SCHEMES;
    let cases = sweep_cases(&SWEEP_SCHEMES, &GATE_KINDS, SEED, 50);
    let report = run_sweep(&cases);
    println!("{report}");
    assert!(report.is_clean(), "{report}");
}

/// Nightly seed diversity: shorter traces, but several seeds, so trace
/// shapes the fixed seed never produces (different resize points,
/// removal orders, signature collisions) still get swept.
#[test]
#[ignore = "exhaustive matrix; run nightly or on demand"]
fn full_sweep_multiple_seeds() {
    use slpmt::workloads::crashsweep::SWEEP_SCHEMES;
    for seed in [1, 7, 99, 1234] {
        let cases = sweep_cases(&SWEEP_SCHEMES, &GATE_KINDS, seed, 30);
        let report = run_sweep(&cases);
        println!("seed {seed}: {report}");
        assert!(report.is_clean(), "seed {seed}: {report}");
    }
}
