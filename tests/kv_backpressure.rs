//! Backpressure property battery (issue 8 satellite): under a
//! forced-stall WPQ (tiny queue, huge media latency) the admission
//! loop must terminate for every request (no deadlock), its live
//! decisions must agree exactly with the pure reference model replayed
//! over the recorded depth samples, and shed/queued counts must be
//! first-class, exactly-reproducible statistics. Drain jitter may only
//! push the latency tail upward.

use slpmt::bench::serve::run_serve_with;
use slpmt::core::{MachineConfig, Scheme};
use slpmt::kv::admission::{admit, reference_decision, Admission, AdmissionConfig, AdmissionStats};
use slpmt::kv::service::ServeConfig;
use slpmt::kv::store::KvStore;
use slpmt::pmem::PmConfig;
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::ycsb::MixSpec;

/// A device that backs up immediately: two WPQ entries draining at
/// 20k cycles each, so any write burst saturates the queue.
fn stall_pm() -> PmConfig {
    PmConfig {
        wpq_entries: 2,
        pm_write_cycles: 20_000,
        ..PmConfig::default()
    }
}

fn stall_cfg(queue_limit: u64) -> ServeConfig {
    let mut c = ServeConfig::new(Scheme::Slpmt, IndexKind::KvBtree, MixSpec::YCSB_A);
    c.load = 20;
    c.requests = 120;
    c.value_size = 16;
    c.seed = 33;
    c.shards = 1;
    c.pm = Some(stall_pm());
    c.admission = AdmissionConfig {
        high_watermark: 1,
        queue_limit,
        poll_cycles: 200,
    };
    c
}

// -------------------------------------------------------------------
// No deadlock + exact shed/queued accounting.

#[test]
fn forced_stall_terminates_and_counts_are_exact() {
    // Tight queueing budget: the loop is bounded by construction, so
    // this test *finishing* is the no-deadlock property; the counts
    // must then be exactly reproducible.
    let c = stall_cfg(2_000);
    let (row, reports) = run_serve_with(&c, 1);
    assert_eq!(row.requests, row.served + row.shed, "every request decided");
    assert!(row.shed > 0, "forced stall must shed under a tight budget");
    assert!(row.queued > 0, "forced stall must queue some admissions");
    assert_eq!(row.served, reports.iter().map(|r| r.served).sum::<u64>());
    // Exact reproducibility of the counts (same run, same numbers).
    let (again, _) = run_serve_with(&c, 4);
    assert_eq!(row.shed, again.shed);
    assert_eq!(row.queued, again.queued);
    assert_eq!(row.queued_cycles, again.queued_cycles);
    assert_eq!(row.digest, again.digest);
    // Shed responses are visible on the wire as SERVER_ERROR busy.
    let busy = reports[0]
        .responses
        .windows(17)
        .filter(|w| w == b"SERVER_ERROR busy")
        .count() as u64;
    assert_eq!(busy, row.shed, "one busy line per shed request");
}

#[test]
fn generous_budget_never_sheds() {
    // With an effectively unbounded budget the same stalled device
    // queues but never sheds — admission is work-conserving.
    let c = stall_cfg(100_000_000);
    let (row, _) = run_serve_with(&c, 1);
    assert_eq!(row.shed, 0, "nothing may be shed with budget to spare");
    assert_eq!(row.served, row.requests);
    assert!(row.queued > 0, "the stall still forces queueing");
}

// -------------------------------------------------------------------
// Live admission loop ≡ pure reference model on recorded depths.

/// Instrumented twin of `admit`: records the WPQ depth at every poll
/// step (the sample sequence the reference model consumes), then
/// returns both the live decision and the recorded depths.
fn admit_recording(store: &mut KvStore, cfg: &AdmissionConfig) -> (Admission, Vec<usize>) {
    let mut depths = Vec::new();
    let mut queued = 0u64;
    let decision = loop {
        depths.push(store.wpq_depth());
        if *depths.last().unwrap() < cfg.high_watermark {
            break Admission::Admit { queued };
        }
        if queued >= cfg.queue_limit {
            break Admission::Shed { queued };
        }
        let step = cfg.poll_cycles.max(1);
        store.compute(step);
        queued += step;
    };
    (decision, depths)
}

#[test]
fn live_decisions_match_the_reference_model() {
    let acfg = AdmissionConfig {
        high_watermark: 1,
        queue_limit: 1_800,
        poll_cycles: 200,
    };
    let mcfg = MachineConfig::for_scheme(Scheme::Slpmt).with_pm(stall_pm());
    let mut store = KvStore::with_config(mcfg, IndexKind::KvBtree, 16);
    store.prefault(160);
    let mut stats = AdmissionStats::default();
    let (mut admits, mut sheds) = (0u64, 0u64);
    for k in 0..120u64 {
        let (live, depths) = admit_recording(&mut store, &acfg);
        assert_eq!(
            live,
            reference_decision(&depths, &acfg),
            "live admission diverged from the reference at request {k} (depths {depths:?})"
        );
        stats.record(live);
        match live {
            Admission::Admit { .. } => {
                admits += 1;
                store.set(k, b"0123456789abcdef");
            }
            Admission::Shed { .. } => sheds += 1,
        }
    }
    assert_eq!(stats.decisions(), 120);
    assert_eq!(stats.immediate + stats.queued, admits);
    assert_eq!(stats.shed, sheds);
    assert!(sheds > 0, "the stalled device must shed at this budget");
    assert!(stats.queued > 0, "and queue");
}

#[test]
fn recording_twin_matches_plain_admit() {
    // The instrumented loop above must be behaviourally identical to
    // the production `admit` on an identical machine.
    let acfg = AdmissionConfig {
        high_watermark: 1,
        queue_limit: 2_000,
        poll_cycles: 150,
    };
    let build = || {
        let mcfg = MachineConfig::for_scheme(Scheme::Slpmt).with_pm(stall_pm());
        let mut s = KvStore::with_config(mcfg, IndexKind::KvBtree, 16);
        s.prefault(64);
        s
    };
    let mut a = build();
    let mut b = build();
    for k in 0..40u64 {
        let (da, _) = admit_recording(&mut a, &acfg);
        let db = admit(&mut b, &acfg);
        assert_eq!(da, db, "request {k}");
        assert_eq!(a.now(), b.now(), "clocks diverged at request {k}");
        if matches!(da, Admission::Admit { .. }) {
            a.set(k, b"0123456789abcdef");
            b.set(k, b"0123456789abcdef");
        }
    }
}

// -------------------------------------------------------------------
// Drain jitter only lengthens the tail.

#[test]
fn p999_is_monotone_in_drain_jitter() {
    // Same stream, same device, increasing drain-jitter windows: the
    // p999 request latency must be non-decreasing (jitter only ever
    // delays drains, never accelerates them).
    let mut base = ServeConfig::new(Scheme::Slpmt, IndexKind::KvBtree, MixSpec::YCSB_A);
    base.load = 30;
    base.requests = 200;
    base.value_size = 16;
    base.seed = 77;
    base.shards = 1;
    base.pm = Some(PmConfig {
        wpq_entries: 4,
        pm_write_cycles: 1_500,
        ..PmConfig::default()
    });
    let mut last_p999 = 0u64;
    let mut tails = Vec::new();
    for window in [0u64, 4_000, 40_000] {
        let mut c = base.clone();
        c.drain_jitter = window;
        let (row, _) = run_serve_with(&c, 1);
        assert_eq!(row.served, row.requests, "defaults must not shed");
        assert!(
            row.overall.p999 >= last_p999,
            "p999 regressed as jitter grew: {} cycles at window {window} \
             after {last_p999} (tails so far {tails:?})",
            row.overall.p999
        );
        last_p999 = row.overall.p999;
        tails.push((window, row.overall.p999));
    }
    assert!(
        tails.last().unwrap().1 > tails[0].1,
        "a 40k-cycle jitter window must visibly stretch the tail: {tails:?}"
    );
}
