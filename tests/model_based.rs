//! Model-based testing: every durable index must agree with a
//! `BTreeMap` oracle on random insert streams, for every scheme's
//! semantics (annotations never change results, only costs).

use proptest::prelude::*;
use slpmt::annotate::AnnotationTable;
use slpmt::core::Scheme;
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::{ycsb_load, AnnotationSource, PmContext};
use std::collections::BTreeMap;

const KINDS: [IndexKind; 8] = IndexKind::ALL;

proptest! {
    #![proptest_config(ProptestConfig { cases: 28, ..ProptestConfig::default() })]

    #[test]
    fn index_agrees_with_oracle(
        kind_idx in 0usize..8,
        n in 1usize..120,
        seed in 0u64..10_000,
        value_words in 1usize..9,
        scheme_idx in 0usize..3,
    ) {
        let kind = KINDS[kind_idx];
        let scheme = [Scheme::Slpmt, Scheme::Fg, Scheme::Atom][scheme_idx];
        let value_size = value_words * 8;
        let mut ctx = PmContext::new(scheme, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, value_size, AnnotationSource::Manual);
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ycsb_load(n, value_size, seed) {
            idx.insert(&mut ctx, op.key, &op.value);
            oracle.insert(op.key, op.value);
            // Interleaved spot checks keep shapes honest mid-stream.
            if oracle.len().is_multiple_of(17) {
                idx.check_invariants(&ctx)
                    .map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
            }
        }
        prop_assert_eq!(idx.len(&ctx), oracle.len());
        for (k, v) in &oracle {
            let got = idx.value_of(&ctx, *k);
            prop_assert_eq!(
                got.as_deref(),
                Some(v.as_slice()),
                "{} disagrees with oracle on key {}", kind, k
            );
        }
        // Negative lookups.
        for probe in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            if !oracle.contains_key(&probe) {
                prop_assert!(!idx.contains(&ctx, probe));
            }
        }
        idx.check_invariants(&ctx)
            .map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
    }

    #[test]
    fn heap_pops_match_sorted_oracle_order(
        n in 1usize..100,
        seed in 0u64..1000,
    ) {
        // The max-heap's array-level invariant is checked by
        // check_invariants; here we additionally verify the maximum is
        // always at index 0 against the oracle.
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut heap = slpmt::workloads::heap::MaxHeap::new(&mut ctx, 16, AnnotationSource::Manual);
        use slpmt::workloads::runner::DurableIndex;
        let mut max = 0u64;
        for op in ycsb_load(n, 16, seed) {
            heap.insert(&mut ctx, op.key, &op.value);
            max = max.max(op.key);
            prop_assert!(heap.contains(&ctx, max));
        }
        heap.check_invariants(&ctx)
            .map_err(TestCaseError::fail)?;
    }
}
