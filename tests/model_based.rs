//! Model-based testing: every durable index must agree with a
//! `BTreeMap` oracle on random insert streams, for every scheme's
//! semantics (annotations never change results, only costs).
//! Seeded loops replace `proptest` (unavailable offline).

use slpmt::annotate::AnnotationTable;
use slpmt::core::Scheme;
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::{ycsb_load, AnnotationSource, PmContext};
use slpmt_prng::SimRng;
use std::collections::BTreeMap;

const KINDS: [IndexKind; 8] = IndexKind::ALL;

#[test]
fn index_agrees_with_oracle() {
    for case in 0..28u64 {
        let mut rng = SimRng::seed_from_u64(0x0DE1 ^ case);
        let kind = KINDS[rng.gen_usize(0..KINDS.len())];
        let scheme = [Scheme::Slpmt, Scheme::Fg, Scheme::Atom][rng.gen_usize(0..3)];
        let n = rng.gen_usize(1..120);
        let seed = rng.gen_range(0..10_000);
        let value_size = rng.gen_usize(1..9) * 8;
        let mut ctx = PmContext::new(scheme, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, value_size, AnnotationSource::Manual);
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ycsb_load(n, value_size, seed) {
            idx.insert(&mut ctx, op.key, &op.value);
            oracle.insert(op.key, op.value);
            // Interleaved spot checks keep shapes honest mid-stream.
            if oracle.len().is_multiple_of(17) {
                if let Err(e) = idx.check_invariants(&ctx) {
                    panic!("case {case}: {kind}: {e}");
                }
            }
        }
        assert_eq!(idx.len(&ctx), oracle.len(), "case {case}: {kind}");
        for (k, v) in &oracle {
            let got = idx.value_of(&ctx, *k);
            assert_eq!(
                got.as_deref(),
                Some(v.as_slice()),
                "case {case}: {kind} disagrees with oracle on key {k}"
            );
        }
        // Negative lookups.
        for probe in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            if !oracle.contains_key(&probe) {
                assert!(!idx.contains(&ctx, probe), "case {case}: {kind}");
            }
        }
        if let Err(e) = idx.check_invariants(&ctx) {
            panic!("case {case}: {kind}: {e}");
        }
    }
}

#[test]
fn heap_pops_match_sorted_oracle_order() {
    for case in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(0x4EA2 ^ case);
        let n = rng.gen_usize(1..100);
        let seed = rng.gen_range(0..1000);
        // The max-heap's array-level invariant is checked by
        // check_invariants; here we additionally verify the maximum is
        // always at index 0 against the oracle.
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut heap = slpmt::workloads::heap::MaxHeap::new(&mut ctx, 16, AnnotationSource::Manual);
        use slpmt::workloads::runner::DurableIndex;
        let mut max = 0u64;
        for op in ycsb_load(n, 16, seed) {
            heap.insert(&mut ctx, op.key, &op.value);
            max = max.max(op.key);
            assert!(heap.contains(&ctx, max), "case {case}");
        }
        if let Err(e) = heap.check_invariants(&ctx) {
            panic!("case {case}: {e}");
        }
    }
}
