//! Software-PTM baseline gates: golden fence budgets, WAF invariants,
//! worker-count determinism, and the UndoLog/RedoLog crash batteries.
//!
//! The software flavours (`slpmt::ptm`) run as explicit
//! store/flush/fence instruction streams over the same simulated cache
//! hierarchy and PM device as the hardware schemes, so every gate here
//! goes through the full stack: `PmContext` dispatch, the bench
//! matrix/sweep drivers, and the streaming recovery oracle.

use slpmt::bench::crashsweep::{run_sweep, run_sweep_sampled, sweep_cases, sweep_cases_mixed};
use slpmt::bench::faultsweep::{fault_cases, run_fault_sweep};
use slpmt::bench::runner::{matrix, run_matrix_with};
use slpmt::core::{PtmFlavor, Scheme, SchemeKind};
use slpmt::workloads::runner::{run_inserts, IndexKind, RunResult};
use slpmt::workloads::ycsb::MixSpec;
use slpmt::workloads::ycsb_load;

const SEED: u64 = 42;

fn insert_run(kind: impl Into<SchemeKind>, ops: usize, value: usize) -> RunResult {
    run_inserts(
        kind,
        IndexKind::Hashtable,
        &ycsb_load(ops, value, SEED),
        value,
        slpmt::workloads::AnnotationSource::Manual,
        true,
    )
}

/// Golden per-transaction commit-fence budgets, measured through the
/// full workload stack: Quadra = 1, Trinity = 2, RedoLog = RomulusLog
/// = 4 — exactly, since every insert transaction runs the full commit
/// protocol — and UndoLog pays its per-record fences on top of the
/// 2-fence commit, so it lands strictly above 2 per transaction.
#[test]
fn golden_commit_fence_budgets() {
    for (flavor, budget) in [
        (PtmFlavor::Quadra, 1),
        (PtmFlavor::Trinity, 2),
        (PtmFlavor::RedoLog, 4),
        (PtmFlavor::RomulusLog, 4),
    ] {
        let r = insert_run(flavor, 200, 32);
        assert!(r.stats.tx_commits > 0);
        assert_eq!(
            r.stats.fences,
            budget * r.stats.tx_commits,
            "{flavor:?}: {} fences over {} txns (budget {budget})",
            r.stats.fences,
            r.stats.tx_commits
        );
    }
    let undo = insert_run(PtmFlavor::UndoLog, 200, 32);
    assert!(
        undo.stats.fences > 2 * undo.stats.tx_commits,
        "UndoLog must fence per record on top of the 2-fence commit: \
         {} fences over {} txns",
        undo.stats.fences,
        undo.stats.tx_commits
    );
}

/// Hardware schemes never execute explicit fences — commit ordering is
/// the hardware log's job — so the fence counter stays zero for every
/// registry entry with a hardware scheme.
#[test]
fn hardware_schemes_count_zero_fences() {
    for scheme in [Scheme::Fg, Scheme::Slpmt, Scheme::SlpmtRedo, Scheme::Atom] {
        let r = insert_run(scheme, 100, 32);
        assert_eq!(r.stats.fences, 0, "{scheme}: hardware scheme fenced");
        assert_eq!(r.stats.flushes, 0, "{scheme}: hardware scheme flushed");
    }
}

/// Write amplification is ≥ 1 for every registry entry: the media
/// cannot write fewer bytes than the workload logically stored, and
/// the denominator is non-trivial on an insert trace.
#[test]
fn waf_is_at_least_one_for_every_scheme() {
    for kind in SchemeKind::REGISTRY {
        let r = insert_run(kind, 150, 64);
        assert!(r.logical_bytes > 0, "{kind}: no logical bytes counted");
        assert!(
            r.waf() >= 1.0,
            "{kind}: waf {} < 1 ({} media bytes / {} logical)",
            r.waf(),
            r.traffic.data_bytes + r.traffic.log_bytes,
            r.logical_bytes
        );
    }
}

/// Software log traffic is reattributed from data to log bytes: every
/// flavour reports non-zero log bytes and records, and the split sums
/// to the same media total the device counted.
#[test]
fn software_log_traffic_is_reattributed() {
    for flavor in PtmFlavor::ALL {
        let r = insert_run(flavor, 100, 32);
        assert!(r.traffic.log_bytes > 0, "{flavor:?}: no log traffic");
        assert!(r.traffic.log_records > 0, "{flavor:?}: no log records");
    }
}

/// The software matrix is deterministic for any worker count — the
/// bit-identity property `slpmt ptm --json` relies on in CI.
#[test]
fn software_matrix_identical_across_worker_counts() {
    let cells = matrix(
        &SchemeKind::SOFTWARE,
        &[IndexKind::Hashtable, IndexKind::Heap],
    );
    let stream = ycsb_load(120, 32, SEED);
    let serial = run_matrix_with(
        &cells,
        1,
        &stream,
        32,
        slpmt::workloads::AnnotationSource::Manual,
        None,
    );
    let parallel = run_matrix_with(
        &cells,
        4,
        &stream,
        32,
        slpmt::workloads::AnnotationSource::Manual,
        None,
    );
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.logical_bytes, b.logical_bytes);
        assert_eq!(a.stats.fences, b.stats.fences);
        assert_eq!(a.stats.flushes, b.stats.flushes);
    }
}

/// ≥200-point sampled crash battery for UndoLog and RedoLog against
/// the streaming recovery oracle, under both YCSB-A and delete-heavy
/// traffic: 2 flavours × 2 workloads × 2 mixes × 26 points = 208
/// oracle-checked crash points through the software commit protocols.
#[test]
fn undo_and_redo_crash_battery_200_points() {
    let flavors = [PtmFlavor::UndoLog, PtmFlavor::RedoLog];
    let kinds = [IndexKind::Hashtable, IndexKind::Heap];
    let mut cases = Vec::new();
    for mix in [MixSpec::YCSB_A, MixSpec::DELETE_HEAVY] {
        cases.extend(sweep_cases_mixed(&flavors, &kinds, SEED, 8, 24, mix));
    }
    let report = run_sweep_sampled(&cases, 26);
    assert!(report.points >= 200, "only {} points", report.points);
    assert!(report.is_clean(), "{report}");
}

/// Exhaustive (every persist event) tiny sweep across all five
/// software flavours — the unsampled analogue of the battery above,
/// kept small enough to enumerate the whole crash domain.
#[test]
fn every_flavor_survives_exhaustive_tiny_sweep() {
    let cases = sweep_cases(&SchemeKind::SOFTWARE, &[IndexKind::Hashtable], 7, 8);
    let report = run_sweep(&cases);
    assert!(report.points > 0);
    assert!(report.is_clean(), "{report}");
}

/// Nightly soak: every software flavour × three workloads × three
/// adversarial mixes, sampled deep against the streaming oracle. Run
/// with `cargo test --release --test ptm_baselines -- --ignored`.
#[test]
#[ignore = "deep software crash battery; run nightly or on demand"]
fn nightly_software_crash_soak() {
    let kinds = [IndexKind::Hashtable, IndexKind::Rbtree, IndexKind::Heap];
    let mut cases = Vec::new();
    for mix in [MixSpec::YCSB_A, MixSpec::YCSB_F, MixSpec::DELETE_HEAVY] {
        cases.extend(sweep_cases_mixed(
            &SchemeKind::SOFTWARE,
            &kinds,
            1234,
            30,
            120,
            mix,
        ));
    }
    let report = run_sweep_sampled(&cases, 40);
    assert!(report.points >= 1000, "only {} points", report.points);
    assert!(report.is_clean(), "{report}");
}

/// Media-fault battery over the software logs: torn records, poisoned
/// lines and drain jitter must degrade within the documented rules
/// (CRC-caught tears, lost lines only under injected faults).
#[test]
fn software_fault_battery_degrades_within_rules() {
    let cases = fault_cases(
        &[
            SchemeKind::from(PtmFlavor::UndoLog),
            PtmFlavor::RedoLog.into(),
        ],
        &[IndexKind::Heap],
        11,
        12,
        &[],
    );
    let report = run_fault_sweep(&cases, 3);
    assert!(report.points > 0);
    assert!(report.is_clean(), "{report}");
}
