//! Multi-core interleaving sweeps (satellite of the deterministic
//! multi-core engine).
//!
//! Each case runs `cores` seeded trace programs under a deterministic
//! schedule and checks the final coherent view *and* the drained PM
//! image word-for-word against a serialized-order `BTreeMap` reference
//! (see `slpmt::core::multi::check_serialized_oracle`). Failures print
//! the reproducible `(scheme, cores, seed, schedule)` tuple; re-run one
//! with `slpmt mc --scheme S --cores N --seed P --sched rr:K`.
//!
//! The un-ignored tests are the PR gate; the `#[ignore]`d test is the
//! nightly exhaustive matrix (all schemes × 2–4 cores × more seeds ×
//! both scheduler policies).

use slpmt::bench::runner::par_map;
use slpmt::core::multi::{check_serialized_oracle, gen_programs, run_programs};
use slpmt::core::{
    MachineConfig, MultiMachine, ProgramSpec, Schedule, Scheme, Signature, StoreKind,
};
use slpmt::pmem::PmAddr;

/// Same Figure-4 coverage rationale as the crash-sweep gate: undo
/// baseline, the single-feature variants, full SLPMT, line
/// granularity, and both redo designs.
const GATE_SCHEMES: [Scheme; 7] = [
    Scheme::Fg,
    Scheme::FgLg,
    Scheme::FgLz,
    Scheme::Slpmt,
    Scheme::SlpmtCl,
    Scheme::FgRedo,
    Scheme::SlpmtRedo,
];

/// Runs one `(scheme, cores, program seed, schedule)` case and returns
/// the reproducible failure tuple if the oracle rejects it.
fn check_case(scheme: Scheme, cores: usize, seed: u64, sched: Schedule) -> Option<String> {
    check_case_skewed(scheme, cores, seed, sched, 0)
}

/// [`check_case`] with zipfian shared-word skew (θ in thousandths,
/// `0` = the historical uniform draw).
fn check_case_skewed(
    scheme: Scheme,
    cores: usize,
    seed: u64,
    sched: Schedule,
    skew: u16,
) -> Option<String> {
    let mut spec = ProgramSpec::small(cores, seed);
    spec.shared_skew_milli = skew;
    let programs = gen_programs(&spec);
    let (mm, outcome) = run_programs(MachineConfig::for_scheme(scheme), &programs, sched);
    check_serialized_oracle(&mm, &outcome).err().map(|e| {
        format!("scheme={scheme} cores={cores} seed={seed} sched={sched} skew={skew}: {e}")
    })
}

#[test]
fn gate_interleaving_sweep() {
    let mut cases = Vec::new();
    for scheme in GATE_SCHEMES {
        for cores in [2, 3] {
            for seed in 0..4 {
                cases.push((scheme, cores, seed, Schedule::round_robin(seed)));
                cases.push((scheme, cores, seed, Schedule::weighted(seed * 31 + 7)));
            }
        }
    }
    let failures: Vec<String> = par_map(&cases, |&(scheme, cores, seed, sched)| {
        check_case(scheme, cores, seed, sched)
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn gate_skewed_interleaving_sweep() {
    // Zipfian shared-word picks (θ = 0.99): conflicts pile onto one or
    // two hot lines, so the ownership hand-off / abort machinery sees
    // back-to-back contention the uniform gate rarely produces.
    let mut cases = Vec::new();
    for scheme in GATE_SCHEMES {
        for seed in 0..3 {
            cases.push((scheme, 2, seed, Schedule::round_robin(seed)));
            cases.push((scheme, 3, seed, Schedule::weighted(seed * 31 + 7)));
        }
    }
    let failures: Vec<String> = par_map(&cases, |&(scheme, cores, seed, sched)| {
        check_case_skewed(scheme, cores, seed, sched, 990)
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn four_cores_exhaust_the_txn_id_register() {
    // Four cores = one 2-bit transaction context each; lazy commits
    // plus open transactions must still never deadlock ID allocation.
    let failures: Vec<String> = (0..3)
        .filter_map(|seed| check_case(Scheme::Slpmt, 4, seed, Schedule::weighted(seed ^ 0x9e37)))
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// ISSUE acceptance: the same `(seed, schedule)` pair reproduces a
/// byte-identical final PM image and identical stat counters across
/// two independent runs.
#[test]
fn same_seed_and_schedule_is_bit_reproducible() {
    for scheme in [Scheme::Slpmt, Scheme::FgRedo] {
        for sched in [Schedule::round_robin(11), Schedule::weighted(11)] {
            let programs = gen_programs(&ProgramSpec::small(3, 5));
            let run = || run_programs(MachineConfig::for_scheme(scheme), &programs, sched);
            let (_, a) = run();
            let (_, b) = run();
            assert_eq!(
                a.image_digest, b.image_digest,
                "{scheme} {sched}: image diverged"
            );
            assert_eq!(a.stats, b.stats, "{scheme} {sched}: stats diverged");
            assert_eq!(a.now, b.now, "{scheme} {sched}: cycle count diverged");
            assert_eq!(a.events, b.events, "{scheme} {sched}: event log diverged");
        }
    }
}

#[test]
fn schedules_with_different_seeds_interleave_differently() {
    let programs = gen_programs(&ProgramSpec::small(3, 5));
    let outcomes: Vec<_> = (0..4)
        .map(|s| {
            run_programs(
                MachineConfig::for_scheme(Scheme::Slpmt),
                &programs,
                Schedule::weighted(s),
            )
            .1
        })
        .collect();
    // At least one pair of seeds must produce a different event order
    // (otherwise the sweep explores nothing).
    assert!(
        outcomes.windows(2).any(|w| w[0].events != w[1].events),
        "four weighted seeds all produced identical interleavings"
    );
}

/// ISSUE acceptance: a cross-core conflicting access hits the
/// signature path and forces persistence of the deferred line, in
/// Figure-4 order (the dependent lazy line persists before the
/// conflicting update becomes durable).
#[test]
fn cross_core_write_forces_dependent_lazy_line() {
    let mut mm = MultiMachine::new(MachineConfig::for_scheme(Scheme::Slpmt), 2);
    let a = PmAddr::new(0x5000); // lazily-persistent update
    let b = PmAddr::new(0x6000); // its read dependency
    mm.tx_begin(0);
    assert_eq!(mm.load_u64(0, b), 0);
    mm.store_u64(0, a, 7, StoreKind::lazy_log_free());
    mm.tx_commit(0);
    // Committed but deferred: the update is visible coherently, not
    // durably.
    assert_eq!(mm.peek_u64(a), 7);
    assert_eq!(mm.machine().device().image().read_u64(a), 0);
    assert_eq!(mm.machine().stats().lazy_lines_deferred, 1);

    // Core 1 overwrites the dependency. Persisting b while a's
    // transaction read b could leak an inconsistent (a=0, b=9) state
    // to PM, so the signature hit must force a durable first.
    mm.tx_begin(1);
    mm.store_u64(1, b, 9, StoreKind::Store);
    mm.tx_commit(1);
    assert_eq!(
        mm.machine().device().image().read_u64(a),
        7,
        "deferred line not forced"
    );
    assert_eq!(mm.machine().device().image().read_u64(b), 9);
    let stats = mm.machine().stats();
    assert!(stats.signature_hits >= 1, "no signature hit recorded");
    assert!(stats.lazy_lines_forced >= 1, "no forced lazy line recorded");
}

/// ISSUE acceptance: signatures are conservative — an address the
/// transaction never touched can alias into its 2048-bit read-set
/// signature and force persistence all the same (false positive, never
/// a false negative).
#[test]
fn signature_false_positive_forces_unrelated_line() {
    let mut mm = MultiMachine::new(MachineConfig::for_scheme(Scheme::Slpmt), 2);
    let a = PmAddr::new(0x5000);
    let read_base = 0x2_0000u64;
    let n_reads = 200u64;
    // Core 0 reads enough lines to fill a few hundred signature bits,
    // then commits one lazy update. Mirror the inserts locally so we
    // can brute-force an aliasing address.
    let mut sig = Signature::new();
    mm.tx_begin(0);
    for i in 0..n_reads {
        let r = PmAddr::new(read_base + i * 64);
        mm.load_u64(0, r);
        sig.insert(r);
    }
    mm.store_u64(0, a, 7, StoreKind::lazy_log_free());
    mm.tx_commit(0);
    assert_eq!(
        mm.machine().device().image().read_u64(a),
        0,
        "still deferred"
    );

    // An address far outside everything the test touched that still
    // tests positive: with ~400 of 2048 bits set and two hash probes,
    // a few percent of candidates alias, so the search is short.
    let alias = (0..1_000_000u64)
        .map(|i| PmAddr::new(0x100_0000 + i * 64))
        .find(|&c| sig.maybe_contains(c))
        .expect("no aliasing line within the candidate range");

    mm.tx_begin(1);
    mm.store_u64(1, alias, 99, StoreKind::Store);
    mm.tx_commit(1);
    assert_eq!(
        mm.machine().device().image().read_u64(a),
        7,
        "false-positive signature hit must still force the deferred line"
    );
    assert!(mm.machine().stats().signature_hits >= 1);
}

/// Nightly exhaustive matrix: every scheme × 2–4 cores × 8 program
/// seeds × both scheduler policies, larger traces. Run with
/// `cargo test --release --test interleaving -- --ignored`.
#[test]
#[ignore = "exhaustive matrix; run nightly or on demand"]
fn full_interleaving_matrix() {
    use slpmt::workloads::crashsweep::SWEEP_SCHEMES;
    let mut cases = Vec::new();
    for &scheme in SWEEP_SCHEMES.iter() {
        for cores in 2..=4 {
            for seed in 0..8 {
                for skew in [0u16, 990] {
                    cases.push((scheme, cores, seed, Schedule::round_robin(seed), skew));
                    cases.push((
                        scheme,
                        cores,
                        seed,
                        Schedule::weighted(seed * 131 + 17),
                        skew,
                    ));
                }
            }
        }
    }
    let failures: Vec<String> = par_map(&cases, |&(scheme, cores, seed, sched, skew)| {
        let mut spec = ProgramSpec::small(cores, seed);
        spec.txns_per_core = 12;
        spec.stores_per_txn = 6;
        spec.shared_skew_milli = skew;
        let programs = gen_programs(&spec);
        let (mm, outcome) = run_programs(MachineConfig::for_scheme(scheme), &programs, sched);
        check_serialized_oracle(&mm, &outcome).err().map(|e| {
            format!("scheme={scheme} cores={cores} seed={seed} sched={sched} skew={skew}: {e}")
        })
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
