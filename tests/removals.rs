//! Removal support: the Pattern 1 *free* case ("if a transaction
//! intends to free a memory region ... any update in that transaction
//! on the memory region needs no persistence", §IV-B).
//!
//! Model-based interleaved insert/remove streams against a `BTreeMap`
//! oracle, plus crash-recovery across removals and the
//! memory-reclamation accounting (freed nodes really return to the
//! heap). Seeded loops replace `proptest` (unavailable offline).

use slpmt::annotate::AnnotationTable;
use slpmt::core::Scheme;
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::{ycsb_load, AnnotationSource, PmContext};
use slpmt_prng::SimRng;
use std::collections::BTreeMap;

const KINDS: [IndexKind; 8] = IndexKind::ALL;

#[test]
fn interleaved_inserts_and_removes_match_oracle() {
    for case in 0..28u64 {
        let mut rng = SimRng::seed_from_u64(0x2E40 ^ case);
        let kind = KINDS[rng.gen_usize(0..KINDS.len())];
        let n = rng.gen_usize(10..90);
        let seed = rng.gen_range(0..10_000);
        let remove_pattern = rng.gen_range(1..7);
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 32, AnnotationSource::Manual);
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let ops = ycsb_load(n, 32, seed);
        for (i, op) in ops.iter().enumerate() {
            idx.insert(&mut ctx, op.key, &op.value);
            oracle.insert(op.key, op.value.clone());
            // Periodically remove an earlier key, and update another.
            if (i as u64).is_multiple_of(remove_pattern) && i > 0 {
                let victim = ops[i / 2].key;
                let expect = oracle.remove(&victim).is_some();
                let got = idx.remove(&mut ctx, victim);
                assert_eq!(got, expect, "case {case}: {kind} remove({victim})");
                let target = ops[i / 3].key;
                let fresh = slpmt::workloads::ycsb::value_for(target ^ i as u64, 32);
                let expect = oracle.contains_key(&target);
                if expect {
                    oracle.insert(target, fresh.clone());
                }
                let got = idx.update(&mut ctx, target, &fresh);
                assert_eq!(got, expect, "case {case}: {kind} update({target})");
            }
        }
        assert_eq!(idx.len(&ctx), oracle.len(), "case {case}: {kind} size");
        for (k, v) in &oracle {
            let got = idx.value_of(&ctx, *k);
            assert_eq!(
                got.as_deref(),
                Some(v.as_slice()),
                "case {case}: {kind} key {k}"
            );
        }
        for op in &ops {
            if !oracle.contains_key(&op.key) {
                assert!(
                    !idx.contains(&ctx, op.key),
                    "case {case}: {kind} ghost {}",
                    op.key
                );
            }
        }
        if let Err(e) = idx.check_invariants(&ctx) {
            panic!("case {case}: {kind}: {e}");
        }
    }
}

#[test]
fn crash_after_removes_recovers() {
    for case in 0..28u64 {
        let mut rng = SimRng::seed_from_u64(0xC2A4 ^ case);
        let kind = KINDS[rng.gen_usize(0..KINDS.len())];
        let n = rng.gen_usize(20..60);
        let removes = rng.gen_usize(1..15);
        let seed = rng.gen_range(0..1000);
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 32, AnnotationSource::Manual);
        let ops = ycsb_load(n, 32, seed);
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            idx.insert(&mut ctx, op.key, &op.value);
            oracle.insert(op.key, op.value.clone());
        }
        for op in ops.iter().take(removes) {
            idx.remove(&mut ctx, op.key);
            oracle.remove(&op.key);
        }
        ctx.crash_and_recover();
        idx.recover(&mut ctx);
        ctx.gc(&idx.reachable(&ctx));
        if let Err(e) = idx.check_invariants(&ctx) {
            panic!("case {case}: {kind}: {e}");
        }
        assert_eq!(idx.len(&ctx), oracle.len(), "case {case}: {kind}");
        for (k, v) in &oracle {
            let got = idx.value_of(&ctx, *k);
            assert_eq!(
                got.as_deref(),
                Some(v.as_slice()),
                "case {case}: {kind} key {k}"
            );
        }
        for op in ops.iter().take(removes) {
            assert!(
                !idx.contains(&ctx, op.key),
                "case {case}: {kind} resurrected {}",
                op.key
            );
        }
    }
}

#[test]
fn removal_reclaims_memory() {
    for kind in KINDS {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 64, AnnotationSource::Manual);
        let ops = ycsb_load(40, 64, 9);
        let empty_bytes = ctx.heap().live_bytes();
        for op in &ops {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        let full_bytes = ctx.heap().live_bytes();
        assert!(full_bytes > empty_bytes, "{kind}: inserts allocate");
        for op in &ops {
            assert!(idx.remove(&mut ctx, op.key), "{kind}: remove {}", op.key);
        }
        assert_eq!(idx.len(&ctx), 0, "{kind}: emptied");
        idx.check_invariants(&ctx)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let end_bytes = ctx.heap().live_bytes();
        // Most memory returns; resize blocks/arrays (hashtable) and
        // grown arrays (heap) legitimately persist until GC.
        assert!(
            end_bytes < full_bytes,
            "{kind}: removals must free memory ({end_bytes} vs {full_bytes})"
        );
        // After GC of the now-empty structure, stragglers are reclaimed.
        ctx.gc(&idx.reachable(&ctx));
        assert!(
            ctx.heap().live_bytes() <= full_bytes / 2,
            "{kind}: GC reclaims the rest"
        );
    }
}

#[test]
fn remove_of_absent_key_is_a_clean_noop() {
    for kind in KINDS {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 32, AnnotationSource::Manual);
        assert!(!idx.remove(&mut ctx, 42), "{kind}: remove from empty");
        for op in ycsb_load(20, 32, 1) {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        assert!(!idx.remove(&mut ctx, 0xDEAD_BEEF), "{kind}: absent key");
        assert_eq!(idx.len(&ctx), 20);
        idx.check_invariants(&ctx)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn removals_work_under_every_scheme() {
    for scheme in [Scheme::Fg, Scheme::Atom, Scheme::Ede, Scheme::SlpmtRedo] {
        let mut ctx = PmContext::new(scheme, AnnotationTable::new());
        let mut idx = IndexKind::Rbtree.build(&mut ctx, 32, AnnotationSource::Manual);
        let ops = ycsb_load(60, 32, 4);
        for op in &ops {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        for op in ops.iter().step_by(2) {
            assert!(idx.remove(&mut ctx, op.key), "{scheme}: remove");
        }
        assert_eq!(idx.len(&ctx), 30, "{scheme}");
        idx.check_invariants(&ctx)
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}
