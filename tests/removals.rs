//! Removal support: the Pattern 1 *free* case ("if a transaction
//! intends to free a memory region ... any update in that transaction
//! on the memory region needs no persistence", §IV-B).
//!
//! Model-based interleaved insert/remove streams against a `BTreeMap`
//! oracle, plus crash-recovery across removals and the
//! memory-reclamation accounting (freed nodes really return to the
//! heap).

use proptest::prelude::*;
use slpmt::annotate::AnnotationTable;
use slpmt::core::Scheme;
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::{ycsb_load, AnnotationSource, PmContext};
use std::collections::BTreeMap;

const KINDS: [IndexKind; 8] = IndexKind::ALL;

proptest! {
    #![proptest_config(ProptestConfig { cases: 28, ..ProptestConfig::default() })]

    #[test]
    fn interleaved_inserts_and_removes_match_oracle(
        kind_idx in 0usize..8,
        n in 10usize..90,
        seed in 0u64..10_000,
        remove_pattern in 1u64..7,
    ) {
        let kind = KINDS[kind_idx];
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 32, AnnotationSource::Manual);
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let ops = ycsb_load(n, 32, seed);
        for (i, op) in ops.iter().enumerate() {
            idx.insert(&mut ctx, op.key, &op.value);
            oracle.insert(op.key, op.value.clone());
            // Periodically remove an earlier key, and update another.
            if (i as u64).is_multiple_of(remove_pattern) && i > 0 {
                let victim = ops[i / 2].key;
                let expect = oracle.remove(&victim).is_some();
                let got = idx.remove(&mut ctx, victim);
                prop_assert_eq!(got, expect, "{} remove({})", kind, victim);
                let target = ops[i / 3].key;
                let fresh = slpmt::workloads::ycsb::value_for(target ^ i as u64, 32);
                let expect = oracle.contains_key(&target);
                if expect {
                    oracle.insert(target, fresh.clone());
                }
                let got = idx.update(&mut ctx, target, &fresh);
                prop_assert_eq!(got, expect, "{} update({})", kind, target);
            }
        }
        prop_assert_eq!(idx.len(&ctx), oracle.len(), "{} size", kind);
        for (k, v) in &oracle {
            let got = idx.value_of(&ctx, *k);
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()), "{} key {}", kind, k);
        }
        for op in &ops {
            if !oracle.contains_key(&op.key) {
                prop_assert!(!idx.contains(&ctx, op.key), "{} ghost {}", kind, op.key);
            }
        }
        idx.check_invariants(&ctx)
            .map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
    }

    #[test]
    fn crash_after_removes_recovers(
        kind_idx in 0usize..8,
        n in 20usize..60,
        removes in 1usize..15,
        seed in 0u64..1000,
    ) {
        let kind = KINDS[kind_idx];
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 32, AnnotationSource::Manual);
        let ops = ycsb_load(n, 32, seed);
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            idx.insert(&mut ctx, op.key, &op.value);
            oracle.insert(op.key, op.value.clone());
        }
        for op in ops.iter().take(removes) {
            idx.remove(&mut ctx, op.key);
            oracle.remove(&op.key);
        }
        ctx.crash_and_recover();
        idx.recover(&mut ctx);
        ctx.gc(&idx.reachable(&ctx));
        idx.check_invariants(&ctx)
            .map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
        prop_assert_eq!(idx.len(&ctx), oracle.len());
        for (k, v) in &oracle {
            let got = idx.value_of(&ctx, *k);
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()), "{} key {}", kind, k);
        }
        for op in ops.iter().take(removes) {
            prop_assert!(!idx.contains(&ctx, op.key), "{} resurrected {}", kind, op.key);
        }
    }
}

#[test]
fn removal_reclaims_memory() {
    for kind in KINDS {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 64, AnnotationSource::Manual);
        let ops = ycsb_load(40, 64, 9);
        let empty_bytes = ctx.heap().live_bytes();
        for op in &ops {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        let full_bytes = ctx.heap().live_bytes();
        assert!(full_bytes > empty_bytes, "{kind}: inserts allocate");
        for op in &ops {
            assert!(idx.remove(&mut ctx, op.key), "{kind}: remove {}", op.key);
        }
        assert_eq!(idx.len(&ctx), 0, "{kind}: emptied");
        idx.check_invariants(&ctx).unwrap_or_else(|e| panic!("{kind}: {e}"));
        let end_bytes = ctx.heap().live_bytes();
        // Most memory returns; resize blocks/arrays (hashtable) and
        // grown arrays (heap) legitimately persist until GC.
        assert!(
            end_bytes < full_bytes,
            "{kind}: removals must free memory ({end_bytes} vs {full_bytes})"
        );
        // After GC of the now-empty structure, stragglers are reclaimed.
        ctx.gc(&idx.reachable(&ctx));
        assert!(ctx.heap().live_bytes() <= full_bytes / 2, "{kind}: GC reclaims the rest");
    }
}

#[test]
fn remove_of_absent_key_is_a_clean_noop() {
    for kind in KINDS {
        let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
        let mut idx = kind.build(&mut ctx, 32, AnnotationSource::Manual);
        assert!(!idx.remove(&mut ctx, 42), "{kind}: remove from empty");
        for op in ycsb_load(20, 32, 1) {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        assert!(!idx.remove(&mut ctx, 0xDEAD_BEEF), "{kind}: absent key");
        assert_eq!(idx.len(&ctx), 20);
        idx.check_invariants(&ctx).unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn removals_work_under_every_scheme() {
    for scheme in [Scheme::Fg, Scheme::Atom, Scheme::Ede, Scheme::SlpmtRedo] {
        let mut ctx = PmContext::new(scheme, AnnotationTable::new());
        let mut idx = IndexKind::Rbtree.build(&mut ctx, 32, AnnotationSource::Manual);
        let ops = ycsb_load(60, 32, 4);
        for op in &ops {
            idx.insert(&mut ctx, op.key, &op.value);
        }
        for op in ops.iter().step_by(2) {
            assert!(idx.remove(&mut ctx, op.key), "{scheme}: remove");
        }
        assert_eq!(idx.len(&ctx), 30, "{scheme}");
        idx.check_invariants(&ctx).unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}
