//! Protocol-conformance battery for the KV service facade (issue 8
//! satellite): golden request→response byte round-trips for every
//! verb including the error paths, plus a seeded malformed-input fuzz
//! loop asserting the parser never panics and always resynchronises.
//!
//! Every expectation here is an exact byte string — the wire format is
//! part of the determinism contract (`slpmt serve --json` diffs are
//! byte-level), so any codec drift must fail loudly.

use slpmt::core::Scheme;
use slpmt::kv::codec::{reply, Codec, Parse, MAX_LINE};
use slpmt::kv::service::dispatch;
use slpmt::kv::session::Session;
use slpmt::kv::store::{fingerprint, KvStore};
use slpmt::workloads::runner::IndexKind;
use slpmt_prng::SimRng;

const MAX_VALUE: usize = 32;

fn store(kind: IndexKind) -> KvStore {
    let mut s = KvStore::open(Scheme::Slpmt, kind, MAX_VALUE);
    s.prefault(64);
    s
}

/// Feeds `input` through a session exactly like the serve loop does:
/// well-formed requests dispatch against the store, malformed ones
/// answer with their error line. Returns the response bytes.
fn serve_bytes(s: &mut KvStore, sess: &mut Session, input: &[u8]) -> Vec<u8> {
    let codec = Codec::new(MAX_VALUE);
    sess.feed(input);
    while let Some(step) = sess.next_request(&codec) {
        match step {
            Ok(req) => {
                let mut out = std::mem::take(&mut sess.wbuf);
                dispatch(s, &req, &mut out);
                sess.wbuf = out;
            }
            Err(line) => Codec::write_line(&mut sess.wbuf, &line),
        }
    }
    sess.take_responses()
}

fn one_shot(s: &mut KvStore, input: &[u8]) -> Vec<u8> {
    let mut sess = Session::new(0);
    serve_bytes(s, &mut sess, input)
}

// -------------------------------------------------------------------
// Golden round trips, one per verb.

#[test]
fn set_then_get_round_trip() {
    let mut s = store(IndexKind::KvBtree);
    assert_eq!(one_shot(&mut s, b"set 7 0 0 5\r\nhello\r\n"), b"STORED\r\n");
    assert_eq!(
        one_shot(&mut s, b"get 7\r\n"),
        b"VALUE 7 0 5\r\nhello\r\nEND\r\n"
    );
    // Missing key: END alone, no VALUE block.
    assert_eq!(one_shot(&mut s, b"get 8\r\n"), b"END\r\n");
    // Multi-key get returns blocks in request order.
    assert_eq!(one_shot(&mut s, b"set 8 0 0 2\r\nhi\r\n"), b"STORED\r\n");
    assert_eq!(
        one_shot(&mut s, b"get 8 7\r\n"),
        b"VALUE 8 0 2\r\nhi\r\nVALUE 7 0 5\r\nhello\r\nEND\r\n"
    );
}

#[test]
fn gets_reports_the_cas_token() {
    let mut s = store(IndexKind::KvBtree);
    assert_eq!(one_shot(&mut s, b"set 3 0 0 4\r\nabcd\r\n"), b"STORED\r\n");
    let token = fingerprint(b"abcd");
    let expect = format!("VALUE 3 0 4 {token}\r\nabcd\r\nEND\r\n");
    assert_eq!(one_shot(&mut s, b"gets 3\r\n"), expect.as_bytes());
}

#[test]
fn cas_discipline_on_the_wire() {
    let mut s = store(IndexKind::KvBtree);
    assert_eq!(one_shot(&mut s, b"set 5 0 0 3\r\nold\r\n"), b"STORED\r\n");
    let token = fingerprint(b"old");
    // Fresh token: stored.
    let good = format!("cas 5 0 0 3 {token}\r\nnew\r\n");
    assert_eq!(one_shot(&mut s, good.as_bytes()), b"STORED\r\n");
    // Replaying the stale token: EXISTS, value unchanged.
    assert_eq!(one_shot(&mut s, good.as_bytes()), b"EXISTS\r\n");
    assert_eq!(
        one_shot(&mut s, b"get 5\r\n"),
        b"VALUE 5 0 3\r\nnew\r\nEND\r\n"
    );
    // CAS against an absent key: NOT_FOUND.
    assert_eq!(
        one_shot(&mut s, b"cas 99 0 0 2 17\r\nxx\r\n"),
        b"NOT_FOUND\r\n"
    );
}

#[test]
fn delete_round_trip() {
    let mut s = store(IndexKind::KvBtree);
    assert_eq!(one_shot(&mut s, b"set 4 0 0 1\r\nz\r\n"), b"STORED\r\n");
    assert_eq!(one_shot(&mut s, b"delete 4\r\n"), b"DELETED\r\n");
    assert_eq!(one_shot(&mut s, b"delete 4\r\n"), b"NOT_FOUND\r\n");
    assert_eq!(one_shot(&mut s, b"get 4\r\n"), b"END\r\n");
}

#[test]
fn scan_round_trip_ordered_and_unsupported() {
    let mut s = store(IndexKind::KvBtree);
    for (k, v) in [(2u64, b"aa"), (4, b"bb"), (9, b"cc")] {
        let line = format!("set {k} 0 0 2\r\n");
        let mut wire = line.into_bytes();
        wire.extend_from_slice(v);
        wire.extend_from_slice(b"\r\n");
        assert_eq!(one_shot(&mut s, &wire), b"STORED\r\n");
    }
    assert_eq!(
        one_shot(&mut s, b"scan 2 8\r\n"),
        b"VALUE 2 0 2\r\naa\r\nVALUE 4 0 2\r\nbb\r\nEND\r\n"
    );
    // Unordered backend: the verb parses but the store refuses.
    let mut h = store(IndexKind::Hashtable);
    assert_eq!(
        one_shot(&mut h, b"scan 0 9\r\n"),
        b"SERVER_ERROR scan unsupported\r\n"
    );
}

// -------------------------------------------------------------------
// Error paths: exact error lines, and the stream keeps serving.

#[test]
fn error_lines_are_pinned() {
    let mut s = store(IndexKind::KvBtree);
    // Unknown verb.
    assert_eq!(one_shot(&mut s, b"flush_all\r\n"), b"ERROR\r\n");
    // Oversized key token (21 digits).
    let long = format!("get {}\r\n", "9".repeat(21));
    assert_eq!(
        one_shot(&mut s, long.as_bytes()),
        b"CLIENT_ERROR bad key\r\n"
    );
    // Non-numeric CAS token.
    assert_eq!(
        one_shot(&mut s, b"cas 1 0 0 2 zz\r\n"),
        b"CLIENT_ERROR bad command line format\r\n"
    );
    // Oversized object, rejected on the header alone.
    assert_eq!(
        one_shot(&mut s, b"set 1 0 0 9000\r\n"),
        b"CLIENT_ERROR object too large for cache\r\n"
    );
    // Bad data-chunk terminator.
    assert_eq!(
        one_shot(&mut s, b"set 1 0 0 2\r\nhiXX\r\n"),
        b"CLIENT_ERROR bad data chunk\r\n"
    );
    // Inverted scan range.
    assert_eq!(
        one_shot(&mut s, b"scan 9 2\r\n"),
        b"CLIENT_ERROR bad range\r\n"
    );
    // Empty command line.
    assert_eq!(one_shot(&mut s, b"\r\n"), b"ERROR\r\n");
}

#[test]
fn malformed_line_then_wellformed_resynchronises() {
    let mut s = store(IndexKind::KvBtree);
    let out = one_shot(
        &mut s,
        b"set 1 0 0 3\r\nabc\r\nnot a command\r\nget 1\r\nset 2 0 0 2\r\nhiXXget 1\r\n",
    );
    // STORED, ERROR, the get served, the bad chunk reported, and the
    // trailing get (consumed by chunk resync) never reaches dispatch —
    // exactly what the consumed-count contract says.
    assert_eq!(
        out,
        b"STORED\r\nERROR\r\nVALUE 1 0 3\r\nabc\r\nEND\r\nCLIENT_ERROR bad data chunk\r\n"
            .as_slice()
    );
}

#[test]
fn oversized_unterminated_garbage_is_dropped_wholesale() {
    let mut s = store(IndexKind::KvBtree);
    let mut sess = Session::new(0);
    // No newline in sight and the buffer is past any legal line: the
    // parser discards it all rather than buffering without bound.
    let wire = vec![b'q'; MAX_LINE + 7];
    assert_eq!(serve_bytes(&mut s, &mut sess, &wire), b"ERROR\r\n");
    assert_eq!(sess.pending(), 0, "garbage must not accumulate");
    // The next command parses from a clean buffer.
    assert_eq!(serve_bytes(&mut s, &mut sess, b"get 1\r\n"), b"END\r\n");
}

// -------------------------------------------------------------------
// Seeded fuzz loop: random byte soup never panics the parser, and a
// sentinel request after each burst still gets served (the stream
// resynchronises at the next line boundary).

#[test]
fn fuzz_soup_never_panics_and_resynchronises() {
    let mut rng = SimRng::seed_from_u64(0xF422_0008);
    let mut s = store(IndexKind::KvBtree);
    assert_eq!(one_shot(&mut s, b"set 777 0 0 3\r\nyes\r\n"), b"STORED\r\n");
    let mut sess = Session::new(0);
    for _round in 0..300 {
        let len = (rng.next_u64() % 48) as usize;
        let mut soup = Vec::with_capacity(len);
        for _ in 0..len {
            // Bias toward protocol-adjacent bytes so token and header
            // paths actually run, with raw binary mixed in.
            let b = match rng.next_u64() % 8 {
                0 => b'\n',
                1 => b'\r',
                2 => b' ',
                3 => b'0' + (rng.next_u64() % 10) as u8,
                4 => b"getscandelcasx"[(rng.next_u64() % 14) as usize],
                _ => (rng.next_u64() % 256) as u8,
            };
            soup.push(b);
        }
        // Feeding and draining hostile bytes must not panic.
        let _ = serve_bytes(&mut s, &mut sess, &soup);
        // Force a line boundary, then the sentinel must be served.
        let out = serve_bytes(&mut s, &mut sess, b"\r\nget 777\r\n");
        assert!(
            out.ends_with(b"END\r\n"),
            "sentinel get lost after soup {soup:?}: {out:?}"
        );
    }
    // The sentinel key survived every round with its exact value.
    assert_eq!(
        one_shot(&mut s, b"get 777\r\n"),
        b"VALUE 777 0 3\r\nyes\r\nEND\r\n"
    );
}

#[test]
fn fuzz_byte_by_byte_delivery_matches_whole_buffer() {
    // The same wire fed one byte at a time must produce identical
    // responses — the codec's More/consumed accounting is exact.
    let mut rng = SimRng::seed_from_u64(0xF422_0009);
    let mut wire = Vec::new();
    for i in 0..40u64 {
        match rng.next_u64() % 4 {
            0 => Codec::encode_set(&mut wire, i % 8, b"payload!"),
            1 => Codec::encode_get(&mut wire, &[i % 8], false),
            2 => Codec::encode_delete(&mut wire, i % 8),
            _ => Codec::encode_scan(&mut wire, 0, 7),
        }
    }
    let mut whole = store(IndexKind::KvBtree);
    let mut sess_w = Session::new(0);
    let expect = serve_bytes(&mut whole, &mut sess_w, &wire);

    let mut drip = store(IndexKind::KvBtree);
    let mut sess_d = Session::new(0);
    let mut got = Vec::new();
    for b in &wire {
        got.extend_from_slice(&serve_bytes(
            &mut drip,
            &mut sess_d,
            std::slice::from_ref(b),
        ));
    }
    assert_eq!(got, expect);
    assert_eq!(sess_w.parsed(), sess_d.parsed());
    assert_eq!(sess_w.bad(), sess_d.bad());
}

#[test]
fn busy_reply_constant_is_wired() {
    // The shed path's response line is part of the wire contract.
    assert_eq!(reply::SERVER_ERROR_BUSY, "SERVER_ERROR busy");
    let c = Codec::new(8);
    assert!(matches!(c.parse(b"get 1\r\n").1, Parse::Req(_)));
}
