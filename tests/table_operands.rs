//! Table I operand semantics end to end: annotation → `storeT`
//! lowering → per-scheme bit effects → machine behaviour, including
//! the unhonoured-lazy degrade path (a `lazy=1,log-free=1` store on
//! hardware without the lazy feature must degrade to a *full* store,
//! not to eager log-free — persisting an unlogged store in place
//! before the commit marker would survive a rollback unrepaired).

use slpmt::annotate::{Annotation, AnnotationTable, SiteId};
use slpmt::core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt::pmem::PmAddr;
use slpmt::workloads::PmContext;

/// The annotation each Table I row lowers to, via the workload
/// context's table lookup (the path every benchmark store takes).
fn lowered(a: Annotation) -> StoreKind {
    let mut table = AnnotationTable::new();
    table.set(SiteId(0), a);
    let ctx = PmContext::new(Scheme::Slpmt, table);
    ctx.kind_of(SiteId(0))
}

#[test]
fn annotations_lower_to_table_i_rows() {
    assert_eq!(lowered(Annotation::Plain), StoreKind::Store);
    assert_eq!(lowered(Annotation::LogFree), StoreKind::log_free());
    assert_eq!(lowered(Annotation::Lazy), StoreKind::lazy_logged());
    assert_eq!(lowered(Annotation::LazyLogFree), StoreKind::lazy_log_free());
    // Unannotated sites fall back to the plain store.
    let ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
    assert_eq!(ctx.kind_of(SiteId(99)), StoreKind::Store);
}

/// Table I proper: with both features enabled, the four operand
/// combinations produce the four persist/log bit patterns.
#[test]
fn effects_with_full_hardware() {
    let cases = [
        (StoreKind::Store, true, true),
        (StoreKind::log_free(), true, false),
        (StoreKind::lazy_logged(), false, true),
        (StoreKind::lazy_log_free(), false, false),
    ];
    for (kind, persist, log) in cases {
        let e = kind.effects(true, true);
        assert_eq!(e.set_persist, persist, "{kind}: persist bit");
        assert_eq!(e.set_log, log, "{kind}: log bit");
    }
}

/// The degrade matrix: disabling a feature degrades its operand to the
/// plain-store behaviour, and — the PR 2 fix — `lazy=1,log-free=1`
/// with lazy disabled degrades log-free too.
#[test]
fn effects_degrade_without_features() {
    // (log_free_enabled, lazy_enabled) = (true, false): FG+LG.
    let e = StoreKind::lazy_log_free().effects(true, false);
    assert!(e.set_persist, "unhonoured lazy degrades to eager");
    assert!(
        e.set_log,
        "unhonoured lazy must drag log-free down with it (full store)"
    );
    // Pure log-free survives without the lazy feature...
    let e = StoreKind::log_free().effects(true, false);
    assert!(e.set_persist && !e.set_log);
    // ...but not without the log-free feature: FG+LZ.
    let e = StoreKind::log_free().effects(false, true);
    assert!(e.set_persist && e.set_log);
    // lazy_logged without lazy is a plain store.
    let e = StoreKind::lazy_logged().effects(false, false);
    assert!(e.set_persist && e.set_log);
    // lazy_log_free with only the lazy feature: deferral is honoured,
    // the missing log-free feature still logs.
    let e = StoreKind::lazy_log_free().effects(false, true);
    assert!(!e.set_persist && e.set_log);
}

/// Machine-level check of the degrade: on FG+LG hardware a
/// `lazy_log_free` store behaves exactly like a plain store — logged,
/// durable at commit, rolled back on abort.
#[test]
fn degraded_lazy_log_free_is_recoverable_on_fglg() {
    let a = PmAddr::new(0x3000);
    // Commit path: durable at commit, exactly like a plain store.
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgLg));
    m.tx_begin();
    m.store_u64(a, 7, StoreKind::lazy_log_free());
    m.tx_commit();
    assert_eq!(m.device().image().read_u64(a), 7, "degraded store is eager");
    assert_eq!(m.stats().lazy_lines_deferred, 0);
    assert!(m.stats().log_records_created >= 1, "degraded store logs");

    // Abort path: the log record repairs the line.
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgLg));
    m.tx_begin();
    m.store_u64(a, 1, StoreKind::Store);
    m.tx_commit();
    m.tx_begin();
    m.store_u64(a, 9, StoreKind::lazy_log_free());
    m.tx_abort();
    assert_eq!(m.peek_u64(a), 1, "abort must roll the degraded store back");

    // Crash path: an uncommitted degraded store never survives.
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgLg));
    m.tx_begin();
    m.store_u64(a, 1, StoreKind::Store);
    m.tx_commit();
    m.tx_begin();
    m.store_u64(a, 9, StoreKind::lazy_log_free());
    m.crash();
    m.recover();
    assert_eq!(
        m.device().image().read_u64(a),
        1,
        "recovery must undo the degraded uncommitted store"
    );
}

/// The same store on full SLPMT hardware is honoured: deferred, record
/// discarded — behaviourally distinct from the degraded form.
#[test]
fn honoured_lazy_log_free_defers_on_slpmt() {
    let a = PmAddr::new(0x3000);
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
    m.tx_begin();
    m.store_u64(a, 7, StoreKind::lazy_log_free());
    m.tx_commit();
    assert_eq!(m.device().image().read_u64(a), 0, "honoured lazy defers");
    assert_eq!(m.stats().lazy_lines_deferred, 1);
    m.drain_lazy();
    assert_eq!(m.device().image().read_u64(a), 7);
}
