//! Crash and media-fault sweeps under the named YCSB mixes — the
//! adversarial-traffic battery for the Pattern-1 free path.
//!
//! The delete-heavy mixes (≥ 30% removes plus the inserts that refill
//! the keyspace) keep lines cycling through free → reallocate → free,
//! which is exactly where deferred-free bookkeeping bugs live; the
//! zipfian variants concentrate that churn on a migrating hot set so
//! the *same* lines are recycled across phases. Every point is checked
//! by the streaming recovery oracle (`slpmt::workloads::crashsweep::
//! StreamingOracle`) — one model advanced monotonically through the
//! sampled crash points, never rebuilt per point.
//!
//! Failures print reproducible `(scheme, workload, seed, k, mix)`
//! tuples; replay one with `slpmt crashsweep --scheme S --workload W
//! --seed N --at K` after switching the case to the same mix, or
//! through `slpmt ycsb --mix M --scheme S --workload W --sweep`.

use slpmt::bench::crashsweep::{run_sweep_sampled, sweep_cases_mixed};
use slpmt::bench::faultsweep::{fault_cases_mixed, run_fault_sweep};
use slpmt::core::Scheme;
use slpmt::workloads::crashsweep::{
    check_point_streaming, sweep_points, trace_ops, StreamingOracle, SweepCase, SWEEP_SCHEMES,
};
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::ycsb::MixSpec;

const SEED: u64 = 42;

/// The four in-place kernels of the paper's Figure 8 matrix.
const KERNELS: [IndexKind; 4] = [
    IndexKind::Hashtable,
    IndexKind::Rbtree,
    IndexKind::Heap,
    IndexKind::Avl,
];

/// The four PMKV tree backends (Figure 14).
const KV_TREES: [IndexKind; 4] = [
    IndexKind::KvBtree,
    IndexKind::KvCtree,
    IndexKind::KvRtree,
    IndexKind::KvSkiplist,
];

#[test]
fn gate_delete_heavy_kernels_all_schemes() {
    // All ten schemes × the four kernels under uniform delete-heavy
    // traffic: 40 cells × 6 sampled points ≥ 200 oracle-checked
    // crash points hammering the deferred-free path.
    let cases = sweep_cases_mixed(
        &SWEEP_SCHEMES,
        &KERNELS,
        SEED,
        10,
        30,
        MixSpec::DELETE_HEAVY,
    );
    let report = run_sweep_sampled(&cases, 6);
    assert!(report.points >= 200, "only {} points", report.points);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn gate_delete_heavy_kv_trees_all_schemes() {
    // Same battery over the PMKV tree backends, whose node splits /
    // merges allocate and free internal lines of their own.
    let cases = sweep_cases_mixed(
        &SWEEP_SCHEMES,
        &KV_TREES,
        SEED,
        10,
        30,
        MixSpec::DELETE_HEAVY,
    );
    let report = run_sweep_sampled(&cases, 6);
    assert!(report.points >= 200, "only {} points", report.points);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn gate_zipfian_churn_concentrates_recycling() {
    // Zipfian delete-heavy churn: the hot set migrates every 64 ops,
    // so the same lines are freed, reallocated and re-freed. A smaller
    // scheme subset (each Figure 4 commit sequence represented) at
    // more points per cell.
    let schemes = [
        Scheme::Fg,
        Scheme::FgLz,
        Scheme::Slpmt,
        Scheme::SlpmtCl,
        Scheme::FgRedo,
        Scheme::SlpmtRedo,
    ];
    let kinds = [IndexKind::Hashtable, IndexKind::Rbtree];
    let cases = sweep_cases_mixed(&schemes, &kinds, SEED, 16, 40, MixSpec::DELETE_HEAVY_ZIPF);
    let report = run_sweep_sampled(&cases, 8);
    assert!(report.points >= 90, "only {} points", report.points);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn gate_scan_and_rmw_mixes_survive_crashes() {
    // YCSB E (range scans) and F (read-modify-write) on ordered
    // backends: scans are membership-neutral but stress recovery of
    // the link structure; RMW doubles the update pressure per key.
    let mut cases = sweep_cases_mixed(
        &[Scheme::Slpmt, Scheme::SlpmtRedo],
        &[IndexKind::KvBtree, IndexKind::KvSkiplist],
        SEED,
        20,
        40,
        MixSpec::YCSB_E,
    );
    cases.extend(sweep_cases_mixed(
        &[Scheme::Slpmt, Scheme::Fg],
        &[IndexKind::Rbtree, IndexKind::Avl],
        SEED,
        20,
        40,
        MixSpec::YCSB_F,
    ));
    let report = run_sweep_sampled(&cases, 6);
    assert!(report.points >= 40, "only {} points", report.points);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn gate_delete_heavy_media_faults() {
    // The media-fault battery (torn boundary event, poisoned lines,
    // flipped log bits, drain jitter) under delete-heavy traffic:
    // recovery must degrade by the rules even while the free path is
    // churning.
    let bases = sweep_cases_mixed(
        &[Scheme::Fg, Scheme::Slpmt, Scheme::SlpmtRedo],
        &[IndexKind::Hashtable, IndexKind::Heap],
        SEED,
        8,
        20,
        MixSpec::DELETE_HEAVY,
    );
    let cases = fault_cases_mixed(&bases, &[]);
    let report = run_fault_sweep(&cases, 2);
    assert!(report.points > 0);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn oracle_work_stays_linear_across_a_sweep() {
    // One oracle serving every sampled point of a case accumulates at
    // most one model mutation per trace operation — the O(n) bound
    // that replaced the per-point rebuild (which cost O(points · n)).
    let case = SweepCase::with_mix(
        Scheme::Slpmt,
        IndexKind::Hashtable,
        SEED,
        50,
        400,
        MixSpec::DELETE_HEAVY_ZIPF,
    );
    let ops = trace_ops(&case);
    let points = sweep_points(&case, 32);
    assert!(points.len() >= 16);
    let mut oracle = StreamingOracle::new(&ops);
    for &k in &points {
        check_point_streaming(&case, &mut oracle, k).unwrap();
    }
    assert!(
        oracle.work() <= ops.len() as u64,
        "oracle did {} mutations over a {}-op trace",
        oracle.work(),
        ops.len()
    );
}

/// Nightly: a million delete-heavy operations swept at sampled crash
/// points, proving the streaming oracle's cost is linear in the trace
/// (the retired `oracle_after` rebuilt an owned model per point —
/// O(points · n) — and cloned every payload). Run with
/// `cargo test --release --test ycsb_sweeps -- --ignored`.
#[test]
#[ignore = "million-op trace; run nightly or on demand"]
fn nightly_million_op_delete_heavy_sweep() {
    let case = SweepCase::with_mix(
        Scheme::Slpmt,
        IndexKind::Hashtable,
        SEED,
        1000,
        1_000_000,
        MixSpec::DELETE_HEAVY_ZIPF,
    );
    let ops = trace_ops(&case);
    assert_eq!(ops.len(), 1000 + 1_000_000);
    let points = sweep_points(&case, 4);
    let mut oracle = StreamingOracle::new(&ops);
    for &k in &points {
        check_point_streaming(&case, &mut oracle, k).unwrap();
    }
    assert!(
        oracle.work() <= ops.len() as u64,
        "oracle did {} mutations over a {}-op trace",
        oracle.work(),
        ops.len()
    );
}

/// Nightly: the full named-mix × scheme matrix on the kernels, wider
/// than the PR gate. Run with
/// `cargo test --release --test ycsb_sweeps -- --ignored`.
#[test]
#[ignore = "wide matrix; run nightly or on demand"]
fn nightly_named_mix_matrix() {
    for (name, mix) in MixSpec::NAMED {
        let cases = sweep_cases_mixed(&SWEEP_SCHEMES, &KERNELS, SEED, 30, 120, *mix);
        let report = run_sweep_sampled(&cases, 8);
        println!("mix {name}: {report}");
        assert!(report.is_clean(), "mix {name}: {report}");
    }
}
