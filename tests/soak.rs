//! Long-running soak test: a randomised storm of inserts, updates,
//! removals, scans, crashes and recoveries across every index and a
//! rotating set of schemes, checked against a `BTreeMap` oracle the
//! whole way. The default run is sized for CI; `--ignored` runs the
//! heavy version.

use slpmt::annotate::AnnotationTable;
use slpmt::core::Scheme;
use slpmt::workloads::runner::IndexKind;
use slpmt::workloads::ycsb::value_for;
use slpmt::workloads::{AnnotationSource, PmContext};
use slpmt_prng::SimRng;
use std::collections::BTreeMap;

fn soak(kind: IndexKind, scheme: Scheme, rounds: usize, seed: u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut ctx = PmContext::new(scheme, AnnotationTable::new());
    let mut idx = kind.build(&mut ctx, 32, AnnotationSource::Manual);
    let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut next_key = 1u64;
    for round in 0..rounds {
        let ops = rng.gen_usize(5..40);
        for _ in 0..ops {
            match rng.gen_range(0..100) {
                0..=54 => {
                    // Insert a fresh key.
                    next_key = next_key.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = next_key | 1; // never zero
                    if oracle.contains_key(&key) {
                        continue;
                    }
                    let val = value_for(key, 32);
                    idx.insert(&mut ctx, key, &val);
                    oracle.insert(key, val);
                }
                55..=74 => {
                    // Update a random live key.
                    if let Some(&key) = oracle.keys().nth(rng.gen_usize(0..oracle.len().max(1))) {
                        let val = value_for(key ^ round as u64, 32);
                        assert!(idx.update(&mut ctx, key, &val), "{kind}/{scheme}: update");
                        oracle.insert(key, val);
                    }
                }
                75..=89 => {
                    // Remove a random live key.
                    if let Some(&key) = oracle.keys().nth(rng.gen_usize(0..oracle.len().max(1))) {
                        assert!(idx.remove(&mut ctx, key), "{kind}/{scheme}: remove");
                        oracle.remove(&key);
                    }
                }
                _ => {
                    // Point lookups, live and dead.
                    if let Some(&key) = oracle.keys().next() {
                        let got = idx.get(&mut ctx, key);
                        assert_eq!(got.as_deref(), oracle.get(&key).map(|v| v.as_slice()));
                    }
                    assert!(idx.get(&mut ctx, 0xDEAD_0000_0000_0000).is_none());
                }
            }
        }
        // Periodic crash + recovery.
        if rng.gen_bool(0.4) {
            ctx.crash_and_recover();
            idx.recover(&mut ctx);
            ctx.gc(&idx.reachable(&ctx));
        }
        idx.check_invariants(&ctx)
            .unwrap_or_else(|e| panic!("{kind}/{scheme} round {round}: {e}"));
        assert_eq!(idx.len(&ctx), oracle.len(), "{kind}/{scheme} round {round}");
    }
    for (k, v) in &oracle {
        assert_eq!(
            idx.value_of(&ctx, *k).as_deref(),
            Some(v.as_slice()),
            "{kind}/{scheme}: final check of {k}"
        );
    }
}

#[test]
fn soak_every_index_briefly() {
    for (i, kind) in IndexKind::ALL.into_iter().enumerate() {
        let scheme = [Scheme::Slpmt, Scheme::Fg, Scheme::Atom][i % 3];
        soak(kind, scheme, 8, 0xC0FFEE + i as u64);
    }
}

#[test]
#[ignore = "heavy soak; run explicitly with --ignored"]
fn soak_heavy() {
    for (i, kind) in IndexKind::ALL.into_iter().enumerate() {
        for (j, scheme) in [Scheme::Slpmt, Scheme::Fg, Scheme::Ede, Scheme::SlpmtCl]
            .into_iter()
            .enumerate()
        {
            soak(kind, scheme, 60, 0xABCD + (i * 7 + j) as u64);
        }
    }
}
