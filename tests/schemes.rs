//! Cross-crate integration: every evaluated scheme runs every
//! benchmark correctly, and the relative orderings the paper reports
//! hold on this simulator.

use slpmt::core::Scheme;
use slpmt::workloads::runner::{run_inserts, IndexKind, RunResult};
use slpmt::workloads::{ycsb_load, AnnotationSource};

const ALL_KINDS: [IndexKind; 8] = IndexKind::ALL;

fn run(scheme: Scheme, kind: IndexKind, src: AnnotationSource) -> RunResult {
    let ops = ycsb_load(120, 64, 11);
    run_inserts(scheme, kind, &ops, 64, src, true) // verify=true checks invariants + membership
}

#[test]
fn every_scheme_runs_every_index_correctly() {
    for kind in ALL_KINDS {
        for scheme in Scheme::ALL {
            let r = run(scheme, kind, AnnotationSource::Manual);
            assert!(r.cycles > 0, "{kind}/{scheme} must consume time");
            assert!(
                r.traffic.media_bytes() > 0,
                "{kind}/{scheme} must persist data"
            );
        }
    }
}

#[test]
fn compiler_annotations_run_every_index_correctly() {
    for kind in ALL_KINDS {
        let r = run(Scheme::Slpmt, kind, AnnotationSource::Compiler);
        assert!(r.cycles > 0);
    }
}

#[test]
fn slpmt_is_never_slower_than_baseline() {
    for kind in ALL_KINDS {
        let base = run(Scheme::Fg, kind, AnnotationSource::Manual);
        let slpmt = run(Scheme::Slpmt, kind, AnnotationSource::Manual);
        assert!(
            slpmt.cycles <= base.cycles,
            "{kind}: SLPMT {} > FG {}",
            slpmt.cycles,
            base.cycles
        );
        assert!(
            slpmt.traffic.media_bytes() <= base.traffic.media_bytes(),
            "{kind}: selective logging must not add traffic"
        );
    }
}

#[test]
fn feature_breakdown_is_consistent() {
    // FG+LG and FG+LZ individually sit between FG and SLPMT in log
    // records created.
    for kind in [IndexKind::Hashtable, IndexKind::Rbtree] {
        let fg = run(Scheme::Fg, kind, AnnotationSource::Manual);
        let lg = run(Scheme::FgLg, kind, AnnotationSource::Manual);
        let slpmt = run(Scheme::Slpmt, kind, AnnotationSource::Manual);
        assert!(lg.stats.log_records_created < fg.stats.log_records_created);
        assert!(slpmt.stats.log_records_created <= lg.stats.log_records_created);
    }
}

#[test]
fn comparison_schemes_pay_more_traffic() {
    for kind in [IndexKind::Rbtree, IndexKind::Heap] {
        let fg = run(Scheme::Fg, kind, AnnotationSource::Manual);
        let atom = run(Scheme::Atom, kind, AnnotationSource::Manual);
        let ede = run(Scheme::Ede, kind, AnnotationSource::Manual);
        assert!(
            atom.traffic.media_bytes() > fg.traffic.media_bytes(),
            "{kind}: line-granularity logging costs more media traffic"
        );
        assert!(
            ede.traffic.log_bytes > fg.traffic.log_bytes,
            "{kind}: bufferless logging loses record coalescing"
        );
    }
}

#[test]
fn annotations_do_not_change_results() {
    // Same final contents under every annotation source — annotations
    // affect performance, never semantics.
    let ops = ycsb_load(100, 32, 5);
    for kind in ALL_KINDS {
        for src in [
            AnnotationSource::None,
            AnnotationSource::Manual,
            AnnotationSource::Compiler,
        ] {
            // run_inserts(verify=true) already asserts membership of
            // every inserted key and structural invariants.
            let _ = run_inserts(Scheme::Slpmt, kind, &ops, 32, src, true);
        }
    }
}

#[test]
fn determinism_same_seed_same_cycles() {
    let a = run(Scheme::Slpmt, IndexKind::KvBtree, AnnotationSource::Manual);
    let b = run(Scheme::Slpmt, IndexKind::KvBtree, AnnotationSource::Manual);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.traffic, b.traffic);
}
