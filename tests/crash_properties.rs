//! Property-based crash-consistency tests.
//!
//! The machine-level property partitions the address space into three
//! durability classes (always-plain, always-log-free, always-lazy) and
//! checks, for random transaction streams crashed at a random point:
//!
//! * **plain** words are exactly their last committed value after
//!   recovery (undo rolls the crashed transaction back);
//! * **log-free** words hold their last committed value or a value the
//!   crashed transaction wrote (the leak Pattern-1 recovery reclaims);
//! * **lazy** words hold *some* committed value (deferral may lose the
//!   newest, never invents one);
//! * with no crash and a full drain, everything matches the model.
//!
//! The structure-level property inserts a random prefix into a random
//! index, crashes, recovers, and requires every committed key back
//! with its exact value plus intact invariants.

use proptest::prelude::*;
use slpmt::core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt::pmem::PmAddr;
use std::collections::{BTreeMap, BTreeSet};

const WORDS: u64 = 24; // words per class

fn addr(class: usize, word: u64) -> PmAddr {
    // Distinct lines per word so classes never share a cache line.
    PmAddr::new(0x10000 + (class as u64 * WORDS + word) * 64)
}

fn kind_of(class: usize) -> StoreKind {
    match class {
        0 => StoreKind::Store,
        1 => StoreKind::log_free(),
        _ => StoreKind::lazy_log_free(),
    }
}

#[derive(Debug, Clone)]
struct Txn {
    writes: Vec<(usize, u64, u64)>, // (class, word, value)
}

fn txn_strategy() -> impl Strategy<Value = Txn> {
    prop::collection::vec((0usize..3, 0u64..WORDS, 1u64..u64::MAX), 1..8)
        .prop_map(|writes| Txn { writes })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn machine_crash_durability_classes(
        txns in prop::collection::vec(txn_strategy(), 1..12),
        crash_after in 0usize..12,
        partial in txn_strategy(),
    ) {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        let crash_after = crash_after.min(txns.len());
        // committed[class][word] = last committed value
        let mut committed: BTreeMap<(usize, u64), u64> = BTreeMap::new();
        // every committed value ever written per lazy word
        let mut history: BTreeMap<(usize, u64), BTreeSet<u64>> = BTreeMap::new();
        for t in &txns[..crash_after] {
            m.tx_begin();
            for &(c, w, v) in &t.writes {
                m.store_u64(addr(c, w), v, kind_of(c));
            }
            m.tx_commit();
            for &(c, w, v) in &t.writes {
                committed.insert((c, w), v);
                history.entry((c, w)).or_default().insert(v);
            }
        }
        // Logical state matches the model before the crash.
        for (&(c, w), &v) in &committed {
            prop_assert_eq!(m.peek_u64(addr(c, w)), v);
        }
        // A partially-executed transaction at crash time.
        m.tx_begin();
        let mut partial_writes: BTreeMap<(usize, u64), BTreeSet<u64>> = BTreeMap::new();
        for &(c, w, v) in &partial.writes {
            m.store_u64(addr(c, w), v, kind_of(c));
            partial_writes.entry((c, w)).or_default().insert(v);
        }
        m.crash();
        m.recover();
        for c in 0..3usize {
            for w in 0..WORDS {
                let img = m.device().image().read_u64(addr(c, w));
                let last = committed.get(&(c, w)).copied().unwrap_or(0);
                match c {
                    0 => prop_assert_eq!(
                        img, last,
                        "plain word {} must be its last committed value", w
                    ),
                    1 => {
                        let leaked = partial_writes
                            .get(&(c, w))
                            .is_some_and(|s| s.contains(&img));
                        prop_assert!(
                            img == last || leaked,
                            "log-free word {w}: image {img} is neither committed {last} nor a crashed-txn write"
                        );
                    }
                    _ => {
                        let ok = img == 0
                            || history.get(&(c, w)).is_some_and(|s| s.contains(&img));
                        prop_assert!(
                            ok,
                            "lazy word {w}: image {img} was never a committed value"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn machine_drain_makes_model_exact(
        txns in prop::collection::vec(txn_strategy(), 1..10),
    ) {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        let mut model: BTreeMap<(usize, u64), u64> = BTreeMap::new();
        for t in &txns {
            m.tx_begin();
            for &(c, w, v) in &t.writes {
                m.store_u64(addr(c, w), v, kind_of(c));
            }
            m.tx_commit();
            for &(c, w, v) in &t.writes {
                model.insert((c, w), v);
            }
        }
        m.drain_lazy();
        for (&(c, w), &v) in &model {
            prop_assert_eq!(
                m.device().image().read_u64(addr(c, w)),
                v,
                "class {} word {} after full drain",
                c,
                w
            );
        }
    }
}

mod structures {
    use super::*;
    use slpmt::annotate::AnnotationTable;
    use slpmt::workloads::runner::IndexKind;
    use slpmt::workloads::{ycsb_load, AnnotationSource, PmContext};

    const KINDS: [IndexKind; 8] = IndexKind::ALL;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

        #[test]
        fn committed_inserts_survive_random_crash_points(
            kind_idx in 0usize..8,
            total in 20usize..70,
            crash_at in 0usize..70,
            seed in 0u64..1000,
            manual in any::<bool>(),
        ) {
            let kind = KINDS[kind_idx];
            let crash_at = crash_at.min(total);
            let src = if manual { AnnotationSource::Manual } else { AnnotationSource::Compiler };
            let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
            let mut idx = kind.build(&mut ctx, 32, src);
            let ops = ycsb_load(total, 32, seed);
            for op in &ops[..crash_at] {
                idx.insert(&mut ctx, op.key, &op.value);
            }
            ctx.crash_and_recover();
            idx.recover(&mut ctx);
            let reachable = idx.reachable(&ctx);
            ctx.gc(&reachable);
            idx.check_invariants(&ctx)
                .map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
            prop_assert_eq!(idx.len(&ctx), crash_at);
            for op in &ops[..crash_at] {
                let got = idx.value_of(&ctx, op.key);
                prop_assert_eq!(
                    got.as_deref(),
                    Some(op.value.as_slice()),
                    "{} lost committed key {}", kind, op.key
                );
            }
            // The structure stays usable after recovery.
            for op in &ops[crash_at..] {
                idx.insert(&mut ctx, op.key, &op.value);
            }
            idx.check_invariants(&ctx)
                .map_err(|e| TestCaseError::fail(format!("{kind} post-resume: {e}")))?;
            prop_assert_eq!(idx.len(&ctx), total);
        }
    }
}
