//! Randomized crash-consistency tests (seeded loops replace
//! `proptest`, which is unavailable offline).
//!
//! The machine-level property partitions the address space into three
//! durability classes (always-plain, always-log-free, always-lazy) and
//! checks, for random transaction streams crashed at a random point:
//!
//! * **plain** words are exactly their last committed value after
//!   recovery (undo rolls the crashed transaction back);
//! * **log-free** words hold their last committed value or a value the
//!   crashed transaction wrote (the leak Pattern-1 recovery reclaims);
//! * **lazy** words hold *some* committed value (deferral may lose the
//!   newest, never invents one);
//! * with no crash and a full drain, everything matches the model.
//!
//! The structure-level property inserts a random prefix into a random
//! index, crashes, recovers, and requires every committed key back
//! with its exact value plus intact invariants.

use slpmt::core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt::pmem::PmAddr;
use slpmt_prng::SimRng;
use std::collections::{BTreeMap, BTreeSet};

const WORDS: u64 = 24; // words per class

fn addr(class: usize, word: u64) -> PmAddr {
    // Distinct lines per word so classes never share a cache line.
    PmAddr::new(0x10000 + (class as u64 * WORDS + word) * 64)
}

fn kind_of(class: usize) -> StoreKind {
    match class {
        0 => StoreKind::Store,
        1 => StoreKind::log_free(),
        _ => StoreKind::lazy_log_free(),
    }
}

#[derive(Debug, Clone)]
struct Txn {
    writes: Vec<(usize, u64, u64)>, // (class, word, value)
}

fn random_txn(rng: &mut SimRng) -> Txn {
    let writes = (0..rng.gen_usize(1..8))
        .map(|_| {
            (
                rng.gen_usize(0..3),
                rng.gen_range(0..WORDS),
                rng.gen_range(1..u64::MAX),
            )
        })
        .collect();
    Txn { writes }
}

#[test]
fn machine_crash_durability_classes() {
    for case in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(0xC4A5 ^ case);
        let txns: Vec<Txn> = (0..rng.gen_usize(1..12))
            .map(|_| random_txn(&mut rng))
            .collect();
        let crash_after = rng.gen_usize(0..12).min(txns.len());
        let partial = random_txn(&mut rng);
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        // committed[class][word] = last committed value
        let mut committed: BTreeMap<(usize, u64), u64> = BTreeMap::new();
        // every committed value ever written per lazy word
        let mut history: BTreeMap<(usize, u64), BTreeSet<u64>> = BTreeMap::new();
        for t in &txns[..crash_after] {
            m.tx_begin();
            for &(c, w, v) in &t.writes {
                m.store_u64(addr(c, w), v, kind_of(c));
            }
            m.tx_commit();
            for &(c, w, v) in &t.writes {
                committed.insert((c, w), v);
                history.entry((c, w)).or_default().insert(v);
            }
        }
        // Logical state matches the model before the crash.
        for (&(c, w), &v) in &committed {
            assert_eq!(m.peek_u64(addr(c, w)), v, "case {case}");
        }
        // A partially-executed transaction at crash time.
        m.tx_begin();
        let mut partial_writes: BTreeMap<(usize, u64), BTreeSet<u64>> = BTreeMap::new();
        for &(c, w, v) in &partial.writes {
            m.store_u64(addr(c, w), v, kind_of(c));
            partial_writes.entry((c, w)).or_default().insert(v);
        }
        m.crash();
        m.recover();
        for c in 0..3usize {
            for w in 0..WORDS {
                let img = m.device().image().read_u64(addr(c, w));
                let last = committed.get(&(c, w)).copied().unwrap_or(0);
                match c {
                    0 => assert_eq!(
                        img, last,
                        "case {case}: plain word {w} must be its last committed value"
                    ),
                    1 => {
                        let leaked = partial_writes
                            .get(&(c, w))
                            .is_some_and(|s| s.contains(&img));
                        assert!(
                            img == last || leaked,
                            "case {case}: log-free word {w}: image {img} is neither committed {last} nor a crashed-txn write"
                        );
                    }
                    _ => {
                        let ok = img == 0 || history.get(&(c, w)).is_some_and(|s| s.contains(&img));
                        assert!(
                            ok,
                            "case {case}: lazy word {w}: image {img} was never a committed value"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn machine_drain_makes_model_exact() {
    for case in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(0xD4A1 ^ case);
        let txns: Vec<Txn> = (0..rng.gen_usize(1..10))
            .map(|_| random_txn(&mut rng))
            .collect();
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        let mut model: BTreeMap<(usize, u64), u64> = BTreeMap::new();
        for t in &txns {
            m.tx_begin();
            for &(c, w, v) in &t.writes {
                m.store_u64(addr(c, w), v, kind_of(c));
            }
            m.tx_commit();
            for &(c, w, v) in &t.writes {
                model.insert((c, w), v);
            }
        }
        m.drain_lazy();
        for (&(c, w), &v) in &model {
            assert_eq!(
                m.device().image().read_u64(addr(c, w)),
                v,
                "case {case}: class {c} word {w} after full drain"
            );
        }
    }
}

mod structures {
    use super::SimRng;
    use slpmt::annotate::AnnotationTable;
    use slpmt::core::Scheme;
    use slpmt::workloads::runner::IndexKind;
    use slpmt::workloads::{ycsb_load, AnnotationSource, PmContext};

    const KINDS: [IndexKind; 8] = IndexKind::ALL;

    #[test]
    fn committed_inserts_survive_random_crash_points() {
        for case in 0..20u64 {
            let mut rng = SimRng::seed_from_u64(0x5C4A ^ case);
            let kind = KINDS[rng.gen_usize(0..KINDS.len())];
            let total = rng.gen_usize(20..70);
            let crash_at = rng.gen_usize(0..70).min(total);
            let seed = rng.gen_range(0..1000);
            let src = if rng.gen_bool(0.5) {
                AnnotationSource::Manual
            } else {
                AnnotationSource::Compiler
            };
            let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
            let mut idx = kind.build(&mut ctx, 32, src);
            let ops = ycsb_load(total, 32, seed);
            for op in &ops[..crash_at] {
                idx.insert(&mut ctx, op.key, &op.value);
            }
            ctx.crash_and_recover();
            idx.recover(&mut ctx);
            let reachable = idx.reachable(&ctx);
            ctx.gc(&reachable);
            if let Err(e) = idx.check_invariants(&ctx) {
                panic!("case {case}: {kind}: {e}");
            }
            assert_eq!(idx.len(&ctx), crash_at, "case {case}: {kind}");
            for op in &ops[..crash_at] {
                let got = idx.value_of(&ctx, op.key);
                assert_eq!(
                    got.as_deref(),
                    Some(op.value.as_slice()),
                    "case {case}: {kind} lost committed key {}",
                    op.key
                );
            }
            // The structure stays usable after recovery.
            for op in &ops[crash_at..] {
                idx.insert(&mut ctx, op.key, &op.value);
            }
            if let Err(e) = idx.check_invariants(&ctx) {
                panic!("case {case}: {kind} post-resume: {e}");
            }
            assert_eq!(idx.len(&ctx), total, "case {case}: {kind}");
        }
    }
}
