//! Drive the §IV compiler analyses directly: describe a transaction
//! in the SSA IR, run Pattern 1 / Pattern 2, and inspect the `storeT`
//! rewrites.
//!
//! ```sh
//! cargo run --example compiler_pass
//! ```

use slpmt::annotate::{analyze, Operand, ParamKind, TxnIrBuilder};

fn main() {
    // The list-insert body of the paper's Figure 7, plus a removal and
    // a data-movement pattern.
    let mut b = TxnIrBuilder::new("example-txn");
    let pos = b.param(ParamKind::PersistentPtr);
    let other = b.param(ParamKind::PersistentPtr);
    let v = b.param(ParamKind::Value);

    // Pattern 1: a fresh node.
    let x = b.alloc();
    let s_prev = b.store(x, 0, Operand::Value(pos)); // x->prev  = pos
    let s_val = b.store(x, 1, Operand::Value(v)); //    x->value = v
    let s_link = b.store(pos, 0, Operand::Value(x)); // pos->next = x  (publishes!)

    // Pattern 1, free case: poison a node the txn deallocates.
    let victim = b.load(pos, 2);
    let s_poison = b.store(victim, 0, Operand::Const(0));
    b.free(victim);

    // Pattern 2: move a recoverable value between existing nodes.
    let k = b.load(other, 1);
    let s_move = b.store(pos, 3, Operand::Value(k));

    // Deep semantics the compiler cannot see through.
    let c = b.compute_opaque(vec![Operand::Value(k)]);
    let s_opaque = b.store(pos, 4, Operand::Value(c));

    let ir = b.build();
    let (table, stats) = analyze(&ir);

    println!(
        "transaction `{}`: {} instructions analysed\n",
        ir.name, stats.insts
    );
    for (site, desc) in [
        (s_prev, "x->prev  = pos           (fresh node)"),
        (s_val, "x->value = v             (fresh node)"),
        (s_link, "pos->next = x            (publishes fresh address)"),
        (s_poison, "victim->f0 = 0           (region freed in txn)"),
        (s_move, "pos->f3 = other->f1      (data movement)"),
        (s_opaque, "pos->f4 = opaque(k)      (deep semantics)"),
    ] {
        println!("{desc}  →  {}", table.get(site));
    }
    println!(
        "\npattern 1: {} log-free + {} lazy-log-free; pattern 2: {} lazy; {} plain",
        stats.pattern1_log_free, stats.pattern1_lazy_log_free, stats.pattern2_lazy, stats.plain
    );
}
