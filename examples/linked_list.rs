//! The paper's Figure 1: inserting a node into a durable
//! doubly-linked list — the motivating example for selective logging.
//!
//! Inserting node B between A and C takes four writes. With plain
//! hardware transactions all four are logged. But the bi-directional
//! linkage is redundant: if only the *first* write is logged, the
//! recovery code of Figure 1(d) can restore consistency from the
//! surviving direction. With SLPMT the three remaining writes use
//! `storeT`, and the two writes into the freshly allocated node are
//! additionally log-free (Pattern 1).
//!
//! ```sh
//! cargo run --example linked_list
//! ```

use slpmt::core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt::pmem::{PmAddr, PmHeap};

/// node layout: [0]=value [1]=next [2]=prev
fn fld(n: PmAddr, i: u64) -> PmAddr {
    n.add(i * 8)
}

struct List {
    head: PmAddr, // sentinel node
}

impl List {
    fn new(m: &mut Machine, heap: &mut PmHeap) -> Self {
        let head = heap.alloc(24).unwrap();
        m.setup_write(head, &[0u8; 24]);
        List { head }
    }

    /// Figure 1(b): insert `value` after `pos`, logging only the first
    /// write (the redundant reverse links are recoverable).
    fn insert_after(&self, m: &mut Machine, heap: &mut PmHeap, pos: PmAddr, value: u64) -> PmAddr {
        let b = heap.alloc(24).unwrap();
        m.tx_begin();
        let c = m.load_u64(fld(pos, 1));
        // Writes into the fresh node: log-free (Pattern 1).
        m.store_u64(fld(b, 0), value, StoreKind::log_free());
        m.store_u64(fld(b, 1), c, StoreKind::log_free());
        m.store_u64(fld(b, 2), pos.raw(), StoreKind::log_free());
        // The forward link is the one logged write.
        m.store_u64(fld(pos, 1), b.raw(), StoreKind::Store);
        // The backward link is recoverable from the forward chain:
        // selective logging skips its log record.
        if c != 0 {
            m.store_u64(fld(PmAddr::new(c), 2), b.raw(), StoreKind::log_free());
        }
        m.tx_commit();
        b
    }

    /// Figure 1(d): post-crash, rebuild every `prev` pointer from the
    /// durable forward chain.
    fn recover(&self, m: &mut Machine) {
        let mut prev = self.head;
        let mut cur = m.peek_u64(fld(self.head, 1));
        while cur != 0 {
            let node = PmAddr::new(cur);
            m.setup_write(fld(node, 2), &prev.raw().to_le_bytes());
            prev = node;
            cur = m.peek_u64(fld(node, 1));
        }
    }

    fn values(&self, m: &Machine) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = m.peek_u64(fld(self.head, 1));
        while cur != 0 {
            out.push(m.peek_u64(fld(PmAddr::new(cur), 0)));
            cur = m.peek_u64(fld(PmAddr::new(cur), 1));
        }
        out
    }

    fn check_links(&self, m: &Machine) {
        let mut prev = self.head;
        let mut cur = m.peek_u64(fld(self.head, 1));
        while cur != 0 {
            let node = PmAddr::new(cur);
            assert_eq!(m.peek_u64(fld(node, 2)), prev.raw(), "prev link consistent");
            prev = node;
            cur = m.peek_u64(fld(node, 1));
        }
    }
}

fn main() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
    let mut heap = PmHeap::new(PmAddr::new(0x1000), 1 << 20);
    let list = List::new(&mut m, &mut heap);

    // Build 1 → 2 → 3 with one durable transaction per insert.
    let mut pos = list.head;
    for v in 1..=3 {
        pos = list.insert_after(&mut m, &mut heap, pos, v);
    }
    assert_eq!(list.values(&m), vec![1, 2, 3]);
    println!("list built: {:?}", list.values(&m));
    println!(
        "log records for 3 inserts: {} (one per insert — only the forward link)",
        m.stats().log_records_created
    );

    // Crash and recover: the forward chain is durable (the logged
    // write); prev pointers are rebuilt per Figure 1(d).
    m.crash();
    m.recover();
    list.recover(&mut m);
    list.check_links(&m);
    assert_eq!(list.values(&m), vec![1, 2, 3]);
    println!(
        "after crash + Figure 1(d) recovery: {:?} — links consistent",
        list.values(&m)
    );
}
