//! The §V-A optimisation: eliminating random persistent writes from
//! in-place update transactions by *combining* selective logging with
//! lazy persistency.
//!
//! Every transactional store updates its datum with a lazily
//! persistent **but logged** `storeT`, and appends the new value to a
//! sequential array with an eager **log-free** `storeT`. At commit the
//! hardware persists only the sequential array; the randomly scattered
//! data lines stay cached.
//!
//! * Crash *during* the transaction → the undo records (persisted on
//!   any overflow) revoke the updates.
//! * Crash *after* commit → the sequential array is a redo log: the
//!   recovery replays it to rebuild any lazily-lost line — with no
//!   address indirection, unlike conventional redo logging.
//!
//! ```sh
//! cargo run --example inplace_update
//! ```

use slpmt::core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt::pmem::PmAddr;

const N: u64 = 128;
const DATA: u64 = 0x1_0000;
const ARRAY: u64 = 0x8_0000;

fn scattered(i: u64) -> PmAddr {
    // A pseudo-random permutation of N cache lines.
    PmAddr::new(DATA + (i.wrapping_mul(37) % N) * 64)
}

fn run_conventional() -> (u64, u64) {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
    m.tx_begin();
    for i in 0..N {
        m.store_u64(scattered(i), i + 1, StoreKind::Store);
    }
    m.tx_commit();
    (m.now(), m.device().traffic().media_bytes())
}

fn run_optimized() -> (u64, u64, Machine) {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
    m.tx_begin();
    for i in 0..N {
        // The in-place update: logged (revocable) but lazily persisted.
        m.store_u64(scattered(i), i + 1, StoreKind::lazy_logged());
        // The sequential record: (address, new value), log-free eager.
        m.store_u64(
            PmAddr::new(ARRAY + i * 16),
            scattered(i).raw(),
            StoreKind::log_free(),
        );
        m.store_u64(
            PmAddr::new(ARRAY + i * 16 + 8),
            i + 1,
            StoreKind::log_free(),
        );
    }
    m.tx_commit();
    (m.now(), m.device().traffic().media_bytes(), m)
}

/// Post-crash redo: replay the sequential array (no address
/// indirection — each record carries its target).
fn redo_from_array(m: &mut Machine) {
    for i in 0..N {
        let addr = m.peek_u64(PmAddr::new(ARRAY + i * 16));
        let value = m.peek_u64(PmAddr::new(ARRAY + i * 16 + 8));
        if addr != 0 {
            m.setup_write(PmAddr::new(addr), &value.to_le_bytes());
        }
    }
}

fn main() {
    let (t_conv, b_conv) = run_conventional();
    let (t_opt, b_opt, mut m) = run_optimized();
    println!("{N} random in-place updates in one durable transaction:");
    println!("  conventional undo:  {t_conv:>8} cycles, {b_conv:>7} media bytes");
    println!("  §V-A optimisation:  {t_opt:>8} cycles, {b_opt:>7} media bytes");
    println!(
        "  improvement:        {:.2}x faster commit, {:.0}% less commit traffic",
        t_conv as f64 / t_opt as f64,
        (1.0 - b_opt as f64 / b_conv as f64) * 100.0
    );

    // Crash after commit: the lazy data lines are lost, the sequential
    // array is durable. Replay it.
    m.crash();
    m.recover();
    redo_from_array(&mut m);
    for i in 0..N {
        assert_eq!(m.peek_u64(scattered(i)), i + 1, "redo restored update {i}");
    }
    println!("crash after commit: sequential redo array restored all {N} updates");
}
