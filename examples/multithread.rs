//! §V-C multi-threading: two logical threads share the core, their
//! transactions' metadata coexists via the 2-bit transaction IDs, and
//! a conflict with a switched-out transaction aborts it.
//!
//! The scenario is a pair of durable "account" transfers: thread 1 is
//! preempted mid-transfer; thread 2 completes an independent transfer;
//! thread 1 resumes and commits. A second round provokes a conflict,
//! showing the requester-wins resolution.
//!
//! ```sh
//! cargo run --example multithread
//! ```

use slpmt::core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt::pmem::PmAddr;

const ACCT_A: PmAddr = PmAddr::new(0x1_0000);
const ACCT_B: PmAddr = PmAddr::new(0x2_0000);
const ACCT_C: PmAddr = PmAddr::new(0x3_0000);
const ACCT_D: PmAddr = PmAddr::new(0x4_0000);

fn balances(m: &Machine) -> (u64, u64, u64, u64) {
    (
        m.peek_u64(ACCT_A),
        m.peek_u64(ACCT_B),
        m.peek_u64(ACCT_C),
        m.peek_u64(ACCT_D),
    )
}

fn main() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
    for (acct, v) in [
        (ACCT_A, 100u64),
        (ACCT_B, 100),
        (ACCT_C, 100),
        (ACCT_D, 100),
    ] {
        m.setup_write(acct, &v.to_le_bytes());
    }

    // --- Round 1: disjoint transfers interleave cleanly -------------
    // Thread 1: move 30 from A to B — preempted after the withdrawal.
    m.tx_begin();
    m.store_u64(ACCT_A, 70, StoreKind::Store);
    let t1 = m.suspend_txn();
    println!("thread 1 suspended mid-transfer (A debited in its txn only)");

    // Thread 2: move 50 from C to D, start to finish.
    m.tx_begin();
    m.store_u64(ACCT_C, 50, StoreKind::Store);
    m.store_u64(ACCT_D, 150, StoreKind::Store);
    m.tx_commit();
    println!("thread 2 committed C→D while thread 1 slept");

    // Thread 1 resumes and finishes its transfer.
    m.resume_txn(t1);
    m.store_u64(ACCT_B, 130, StoreKind::Store);
    m.tx_commit();
    println!("thread 1 resumed and committed A→B");
    assert_eq!(balances(&m), (70, 130, 50, 150));

    // --- Round 2: a conflict aborts the switched-out thread ---------
    m.tx_begin();
    m.store_u64(ACCT_A, 0, StoreKind::Store); // thread 1 drains A...
    let _t1 = m.suspend_txn();
    m.tx_begin();
    // ...but thread 2 touches A first: requester wins, thread 1's
    // in-flight transfer is revoked.
    let a = m.load_u64(ACCT_A);
    assert_eq!(a, 70, "thread 1's uncommitted debit was rolled back");
    m.store_u64(ACCT_A, a + 5, StoreKind::Store);
    m.tx_commit();
    println!(
        "conflict: thread 1 aborted ({} suspended aborts), thread 2 saw A = {a}",
        m.stats().suspended_aborts
    );
    assert_eq!(m.peek_u64(ACCT_A), 75);

    // Crash: every committed transfer survives.
    m.crash();
    m.recover();
    assert_eq!(m.device().image().read_u64(ACCT_C), 50);
    assert_eq!(m.device().image().read_u64(ACCT_D), 150);
    println!("after crash + recovery, committed transfers intact");
}
