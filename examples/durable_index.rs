//! Run the paper's YCSB-load workload on a durable index and compare
//! hardware schemes.
//!
//! ```sh
//! cargo run --release --example durable_index
//! ```

use slpmt::core::Scheme;
use slpmt::workloads::runner::{run_inserts, IndexKind};
use slpmt::workloads::{ycsb_load, AnnotationSource};

fn main() {
    let ops = ycsb_load(500, 256, 7);
    let kind = IndexKind::KvCtree;

    println!("{kind}: {} inserts of 256-byte values\n", ops.len());
    let base = run_inserts(Scheme::Fg, kind, &ops, 256, AnnotationSource::Manual, true);
    println!(
        "{:<8} {:>12} cycles {:>10} media B  (baseline)",
        base.scheme.to_string(),
        base.cycles,
        base.traffic.media_bytes()
    );
    for scheme in [Scheme::Slpmt, Scheme::Atom, Scheme::Ede] {
        let r = run_inserts(scheme, kind, &ops, 256, AnnotationSource::Manual, true);
        println!(
            "{:<8} {:>12} cycles {:>10} media B  ({:.2}x, traffic {:+.1}%)",
            r.scheme.to_string(),
            r.cycles,
            r.traffic.media_bytes(),
            r.speedup_vs(&base),
            -r.traffic_reduction_vs(&base) * 100.0
        );
    }
    println!("\nevery run verified: invariants held and all keys present");
}
