//! Quickstart: run durable transactions on the simulated SLPMT core.
//!
//! Shows the `storeT` instruction family (Table I of the paper), what
//! is durable when, and the costs the simulator reports.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use slpmt::core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt::pmem::PmAddr;

fn main() {
    // A machine simulating the full SLPMT design (fine-grain logging,
    // log-free stores, lazy persistency) with Table III timing.
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));

    let record = PmAddr::new(0x1_0000); // an existing persistent record
    let fresh = PmAddr::new(0x2_0000); // a freshly allocated region

    // --- A durable transaction ------------------------------------
    m.tx_begin();

    // A conventional store: the hardware logs the pre-image at word
    // granularity and persists the line at commit.
    m.store_u64(record, 42, StoreKind::Store);

    // Stores into freshly allocated memory need no log (Pattern 1):
    // if the transaction is interrupted, the allocation simply leaks
    // and post-crash garbage collection reclaims it.
    m.store_u64(fresh, 1, StoreKind::log_free());
    m.store_u64(fresh.add(8), 2, StoreKind::log_free());

    // A lazily-persistent store: the value is re-derivable from other
    // durable data, so the hardware may keep it in the cache past
    // commit and persist it later (conflict, recycling, or overflow).
    m.store_u64(record.add(64), 7, StoreKind::lazy_log_free());

    m.tx_commit();
    // ---------------------------------------------------------------

    // Logged and log-free data are durable at commit:
    assert_eq!(m.device().image().read_u64(record), 42);
    assert_eq!(m.device().image().read_u64(fresh), 1);
    // The lazy line is still volatile (but logically visible):
    assert_eq!(m.device().image().read_u64(record.add(64)), 0);
    assert_eq!(m.peek_u64(record.add(64)), 7);

    // Force every deferred line durable (the paper's empty-transaction
    // idiom, §III-C4):
    m.drain_lazy();
    assert_eq!(m.device().image().read_u64(record.add(64)), 7);

    // A crash wipes caches; the durable image survives:
    m.crash();
    let report = m.recover();
    println!("recovery: {report:?}");
    assert_eq!(m.peek_u64(record), 42);

    println!("simulated time: {} cycles", m.now());
    println!("write traffic:  {}", m.device().traffic());
    println!("stats:\n{}", m.stats());
    println!("\nquickstart OK — see examples/durable_index.rs next");
}
