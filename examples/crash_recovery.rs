//! Crash a durable hash table mid-stream and recover it.
//!
//! Demonstrates the full recovery pipeline of §IV: undo-log replay for
//! logged data, garbage collection of leaked Pattern-1 allocations,
//! and structure-specific rebuilding of lazily-persistent data (here:
//! the rehash re-execution and the size recount).
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use slpmt::annotate::AnnotationTable;
use slpmt::core::Scheme;
use slpmt::workloads::hashtable::Hashtable;
use slpmt::workloads::runner::DurableIndex;
use slpmt::workloads::{ycsb_load, AnnotationSource, PmContext};

fn main() {
    let mut ctx = PmContext::new(Scheme::Slpmt, AnnotationTable::new());
    let mut table = Hashtable::new(&mut ctx, 64, AnnotationSource::Manual);
    let ops = ycsb_load(80, 64, 3);

    // Insert enough to trigger a couple of resizes (load factor 3 on
    // 8 initial buckets).
    for op in &ops[..60] {
        table.insert(&mut ctx, op.key, &op.value);
    }
    println!(
        "before crash: {} keys, heap {} allocations",
        table.len(&ctx),
        ctx.heap().live_count()
    );

    // Power failure: caches, log buffer, signatures, transaction IDs
    // are lost; the persistent image and durable log survive.
    let report = ctx.crash_and_recover();
    println!("undo replay: {report:?}");

    // Structure recovery: re-execute the rehash for any lazily-lost
    // moved data, recount the size.
    table.recover(&mut ctx);
    // Inspect before reclaiming — the PMDK-style leak inspector the
    // paper's recovery story references.
    let report = slpmt::workloads::inspect(&ctx, &table.reachable(&ctx));
    println!("inspector: {report}");
    // Garbage-collect allocations no longer reachable (nodes leaked by
    // any interrupted transaction).
    let reclaimed = ctx.gc(&table.reachable(&ctx));
    println!("GC reclaimed {reclaimed} leaked allocations");
    assert_eq!(reclaimed, report.leaks.len());

    table
        .check_invariants(&ctx)
        .expect("invariants hold after recovery");
    assert_eq!(table.len(&ctx), 60);
    for op in &ops[..60] {
        assert_eq!(
            table.value_of(&ctx, op.key).as_deref(),
            Some(op.value.as_slice()),
            "committed key {} must survive the crash",
            op.key
        );
    }
    println!("all 60 committed keys survived");

    // The table keeps working after recovery.
    for op in &ops[60..] {
        table.insert(&mut ctx, op.key, &op.value);
    }
    table
        .check_invariants(&ctx)
        .expect("invariants hold after resumed inserts");
    println!("resumed inserts OK — {} keys total", table.len(&ctx));
}
